"""JSON-lines protocol over stdin/stdout: the ``fetch-detect serve`` front-end.

One request per input line, one JSON event per output line.  The shape is
deliberately transport-agnostic — a pipe today, a socket acceptor feeding
the same :class:`ServeSession` tomorrow — and streaming: a ``submit`` is
acknowledged as soon as its entries are *admitted*, and its per-entry
results then arrive as the service completes them, interleaved with
responses to later requests.  Admission itself follows the service's
backpressure policy: under the default ``block`` policy a batch larger
than the remaining queue capacity delays the acknowledgement (and the
request loop) until workers free capacity — backpressure deliberately
propagates to the submitting client.  Run the service with
``--backpressure reject`` for a front-end that never blocks: an
overflowing batch then answers with an ``error`` event instead.

Requests::

    {"op": "submit", "paths": [...], "detectors": ["fetch", "ghidra"]}
    {"op": "status", "job": 1}
    {"op": "wait", "job": 1}
    {"op": "stats"}
    {"op": "shutdown"}

Events (every response carries an ``event`` key)::

    {"event": "accepted", "job": 1, "entries": 3, "units": 6}
    {"event": "result", "job": 1, "name": "a.elf", "detector": "fetch",
     "cached": false, "count": 42, "function_starts": [...], "seconds": 0.12}
    {"event": "job-done", "job": 1, "ok": 6, "errors": 0}
    {"event": "status", "job": 1, "state": "running", "done": 2, "total": 6}
    {"event": "stats", ...service counters, "store": hit/miss deltas}
    {"event": "error", "error": "..."}          # bad request, never fatal
    {"event": "bye"}                            # response to shutdown

Malformed input (bad JSON, unknown ``op``, unknown job id) produces an
``error`` event and the session keeps serving; only ``shutdown`` or end of
input ends it, after draining every in-flight job.
"""

from __future__ import annotations

import json
import threading
from typing import Any, IO

from repro.service.service import (
    DetectionService,
    EntryResult,
    JobHandle,
    ServiceSaturated,
)


class ServeSession:
    """One stdin/stdout (or socket-stream) session speaking the protocol.

    Responses from concurrently-draining jobs and from the request loop
    share one output stream; a write lock keeps every JSON line intact.
    """

    def __init__(
        self,
        service: DetectionService,
        input_stream: IO[str],
        output_stream: IO[str],
    ):
        self.service = service
        self._input = input_stream
        self._output = output_stream
        self._write_lock = threading.Lock()
        self._drainers: list[threading.Thread] = []

    # -- output ---------------------------------------------------------
    def _emit(self, event: dict[str, Any]) -> None:
        line = json.dumps(event, sort_keys=True)
        with self._write_lock:
            self._output.write(line + "\n")
            self._output.flush()

    @staticmethod
    def _result_event(job: JobHandle, result: EntryResult) -> dict[str, Any]:
        event: dict[str, Any] = {
            "event": "result",
            "job": job.job_id,
            "name": result.name,
            "detector": result.detector,
            "cached": result.cached,
            "count": len(result.function_starts),
            "function_starts": list(result.function_starts),
            "seconds": round(result.seconds, 6),
        }
        if result.error is not None:
            event["error"] = result.error
        if result.metrics is not None:
            event["metrics"] = {
                "false_positives": result.metrics.fp_count,
                "false_negatives": result.metrics.fn_count,
                "functions": result.metrics.true_count,
            }
        return event

    # -- request handling ------------------------------------------------
    def _drain(self, job: JobHandle) -> None:
        ok = errors = 0
        for result in job.results():
            if result.ok:
                ok += 1
            else:
                errors += 1
            self._emit(self._result_event(job, result))
        self._emit({"event": "job-done", "job": job.job_id, "ok": ok, "errors": errors})

    def _handle(self, request: dict[str, Any]) -> bool:
        """Serve one request; returns ``False`` when the session should end."""
        op = request.get("op")
        if op == "shutdown":
            return False
        if op == "submit":
            paths = request.get("paths")
            if (
                not isinstance(paths, list)
                or not paths
                or not all(isinstance(path, str) for path in paths)
            ):
                self._emit(
                    {
                        "event": "error",
                        "error": "submit needs a non-empty 'paths' list of strings",
                    }
                )
                return True
            detectors = request.get("detectors")
            if detectors is not None and (
                not isinstance(detectors, list)
                or not all(isinstance(name, str) for name in detectors)
            ):
                self._emit(
                    {"event": "error", "error": "'detectors' must be a list of names"}
                )
                return True
            try:
                job = self.service.submit(paths, detectors=detectors)
            except (ServiceSaturated, KeyError) as error:
                self._emit({"event": "error", "error": str(error)})
                return True
            self._emit(
                {
                    "event": "accepted",
                    "job": job.job_id,
                    "entries": len(paths),
                    "units": job.total,
                }
            )
            drainer = threading.Thread(target=self._drain, args=(job,), daemon=True)
            drainer.start()
            # session state stays bounded across a long-lived session:
            # finished drainers are pruned on every new submit
            self._drainers = [t for t in self._drainers if t.is_alive()]
            self._drainers.append(drainer)
            return True
        if op in ("status", "wait"):
            try:
                job = self.service.job(int(request.get("job", -1)))
            except (KeyError, TypeError, ValueError):
                self._emit({"event": "error", "error": f"unknown job {request.get('job')!r}"})
                return True
            if op == "wait":
                job.wait()
            done, total = job.progress()
            self._emit(
                {
                    "event": "status",
                    "job": job.job_id,
                    "state": job.state.value,
                    "done": done,
                    "total": total,
                }
            )
            return True
        if op == "stats":
            self._emit({"event": "stats", **self.service.stats()})
            return True
        self._emit({"event": "error", "error": f"unknown op {op!r}"})
        return True

    # -- main loop -------------------------------------------------------
    def run(self) -> int:
        """Serve requests until shutdown or end of input; returns exit code."""
        for line in self._input:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except ValueError as error:
                self._emit({"event": "error", "error": f"bad request line: {error}"})
                continue
            if not isinstance(request, dict):
                self._emit({"event": "error", "error": "request must be a JSON object"})
                continue
            if not self._handle(request):
                break
        for drainer in self._drainers:
            drainer.join()
        self._emit({"event": "bye"})
        return 0
