"""Deterministic fault-injection plane.

A :class:`FaultPlan` is a seed plus a list of :class:`FaultSpec` entries,
parsed from a compact spec string (the ``REPRO_FAULTS`` environment
variable and the ``--faults`` CLI flag)::

    seed=42;detect:raise:rate=0.3,max=10;worker:kill:rate=0.1;store.lock:delay:seconds=0.01

Grammar: ``[seed=N;]site:kind[:param=value[,param=value...]][;...]`` with
kinds ``raise`` (raise an exception), ``delay`` (sleep ``seconds``),
``torn`` (signal a torn store write to the call site) and ``kill`` (raise
:class:`WorkerKilled`, which a thread worker lets kill the thread and a
process-pool child converts into ``SIGKILL`` of itself).  ``rate`` is the
injection probability per call (default 1.0) and ``max`` caps the total
injections of that fault (default unlimited; ``max`` is what lets a
retried operation eventually succeed).

**Sites** are the named injection points threaded through the stack:

========================  ====================================================
``detect``                :meth:`repro.service.DetectionService._detect_unit`,
                          around one detector invocation (key: digest:detector)
``worker``                :class:`repro.eval.executor.ShardedWorkerPool` drain
                          loop, before a task starts (key: shard index) —
                          ``kill`` here models a dying worker thread
``pool.child``            the process-pool task wrapper
                          (:func:`repro.eval.runner._process_invoke`) — ``kill``
                          SIGKILLs the child, breaking the pool
``store.write``           :func:`repro.store.backend.atomic_write_bytes` —
                          ``torn`` leaves a truncated temp file behind, as a
                          crash mid-write would (key: destination file name)
``store.lock``            :meth:`repro.store.locking.FileLock.acquire`
                          (key: lock file name)
========================  ====================================================

**Determinism.**  Every decision is a pure hash of ``(seed, site, key,
occurrence, fault-index)`` — not wall clock, not a shared RNG stream — so
a given key sees the same fault schedule regardless of thread
interleaving, and the whole run is reproducible from its seed.
Per-``(site, key)`` occurrence counters advance on each call, so a retry
of a faulted operation re-rolls rather than re-failing forever.

**Hot path.**  With no plan installed (the default), :func:`fire` is a
module-global load and a ``None`` check — nothing else.  Sites live in
the service/executor/store layers, never inside the decode pipeline, so
the cold-latency gate is unaffected either way.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

_KINDS = ("raise", "delay", "torn", "kill")


class FaultInjected(RuntimeError):
    """An injected failure (the default payload of a ``raise`` fault).

    Classified retryable by the default :class:`~repro.resilience.policy.
    RetryPolicy`, mirroring the transient errors it stands in for."""


class TornWrite(FaultInjected):
    """Signals a ``torn`` fault to :func:`repro.store.backend.atomic_write_bytes`,
    which turns it into a truncated on-disk temp file plus a raised error —
    exactly what a crash between ``write`` and ``rename`` leaves behind."""


class WorkerKilled(BaseException):
    """A hard worker kill.

    Deliberately a ``BaseException``: task-level ``except Exception``
    handlers must *not* absorb it — it either unwinds a worker thread
    (whose supervisor restarts it and requeues the in-flight task) or is
    converted into ``SIGKILL`` by a process-pool child."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault: where it fires, what it does, how often, how many times."""

    site: str
    kind: str
    rate: float = 1.0
    max_injections: int = 0  # 0 = unlimited
    seconds: float = 0.001  # delay duration

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (expected one of {_KINDS})")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")

    def render(self) -> str:
        params = []
        if self.rate != 1.0:
            params.append(f"rate={self.rate:g}")
        if self.max_injections:
            params.append(f"max={self.max_injections}")
        if self.kind == "delay" and self.seconds != 0.001:
            params.append(f"seconds={self.seconds:g}")
        suffix = f":{','.join(params)}" if params else ""
        return f"{self.site}:{self.kind}{suffix}"


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the faults it schedules; parses/renders the spec string."""

    seed: int
    faults: tuple[FaultSpec, ...]

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        seed = 0
        faults: list[FaultSpec] = []
        for clause in filter(None, (part.strip() for part in spec.split(";"))):
            if clause.startswith("seed="):
                seed = int(clause[5:])
                continue
            pieces = clause.split(":")
            if len(pieces) not in (2, 3):
                raise ValueError(
                    f"bad fault clause {clause!r} (expected site:kind[:param=value,...])"
                )
            site, kind = pieces[0], pieces[1]
            params: dict[str, float | int] = {}
            if len(pieces) == 3 and pieces[2]:
                for pair in pieces[2].split(","):
                    name, _, value = pair.partition("=")
                    if name == "rate":
                        params["rate"] = float(value)
                    elif name == "max":
                        params["max_injections"] = int(value)
                    elif name == "seconds":
                        params["seconds"] = float(value)
                    else:
                        raise ValueError(f"unknown fault parameter {name!r} in {clause!r}")
            faults.append(FaultSpec(site=site, kind=kind, **params))
        if not faults:
            raise ValueError(f"fault spec {spec!r} declares no faults")
        return cls(seed=seed, faults=tuple(faults))

    def render(self) -> str:
        return ";".join([f"seed={self.seed}", *(fault.render() for fault in self.faults)])


def _unit_interval(seed: int, site: str, key: str, occurrence: int, index: int) -> float:
    """A deterministic pseudo-random draw in ``[0, 1)`` for one decision."""
    token = f"{seed}|{site}|{key}|{occurrence}|{index}".encode()
    return int.from_bytes(hashlib.sha256(token).digest()[:8], "big") / 2.0**64


class FaultInjector:
    """Executes a :class:`FaultPlan` at the named sites.

    Thread-safe; all mutable state (occurrence counters, injection caps,
    the :attr:`injections` observability counters) is lock-guarded.  The
    decisions themselves are pure hashes, so two runs of the same workload
    under the same plan inject the same faults.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        #: ``(site, kind) -> times injected`` — the chaos benchmark uses
        #: this to prove the configured faults actually fired
        self.injections: dict[tuple[str, str], int] = {}
        self._by_site: dict[str, list[tuple[int, FaultSpec]]] = {}
        for index, fault in enumerate(plan.faults):
            self._by_site.setdefault(fault.site, []).append((index, fault))
        self._budget = {
            index: fault.max_injections for index, fault in enumerate(plan.faults)
        }
        self._occurrences: dict[tuple[str, str], int] = {}
        self._lock = threading.Lock()

    def fire(
        self, site: str, key: str = "", raises: type[BaseException] | None = None
    ) -> None:
        """Evaluate every fault registered at ``site`` for this call.

        ``key`` identifies the unit of work (digest, shard, file name) so
        its fault schedule is stable under concurrency; ``raises`` lets a
        call site ask for a domain-typed exception (e.g. ``LockTimeout``)
        instead of the generic :class:`FaultInjected`.
        """
        faults_here = self._by_site.get(site)
        if not faults_here:
            return
        with self._lock:
            occurrence = self._occurrences.get((site, key), 0)
            self._occurrences[(site, key)] = occurrence + 1
        for index, fault in faults_here:
            if _unit_interval(self.plan.seed, site, key, occurrence, index) >= fault.rate:
                continue
            with self._lock:
                budget = self._budget[index]
                if fault.max_injections and budget <= 0:
                    continue
                if fault.max_injections:
                    self._budget[index] = budget - 1
                counter = (site, fault.kind)
                self.injections[counter] = self.injections.get(counter, 0) + 1
            self._act(fault, site, key, raises)

    def _act(
        self, fault: FaultSpec, site: str, key: str, raises: type[BaseException] | None
    ) -> None:
        message = f"injected {fault.kind} at {site}" + (f" [{key}]" if key else "")
        if fault.kind == "delay":
            time.sleep(fault.seconds)
            return
        if fault.kind == "kill":
            raise WorkerKilled(message)
        if fault.kind == "torn":
            raise TornWrite(message)
        raise (raises or FaultInjected)(message)

    def injection_counts(self) -> dict[str, int]:
        """``"site:kind" -> count`` snapshot for benchmark records."""
        with self._lock:
            return {f"{site}:{kind}": n for (site, kind), n in sorted(self.injections.items())}


# ----------------------------------------------------------------------
# The process-wide active injector
# ----------------------------------------------------------------------

def _from_environment() -> FaultInjector | None:
    spec = os.environ.get("REPRO_FAULTS", "").strip()
    return FaultInjector(FaultPlan.parse(spec)) if spec else None


#: the active injector; ``None`` (the default) makes every site a no-op.
#: Initialised from ``REPRO_FAULTS`` at import, so forked process-pool
#: children and subprocesses inherit the plan automatically.
_ACTIVE: FaultInjector | None = _from_environment()


def fire(site: str, key: str = "", raises: type[BaseException] | None = None) -> None:
    """Fire ``site`` on the active injector — a no-op when none is installed."""
    injector = _ACTIVE
    if injector is not None:
        injector.fire(site, key, raises=raises)


def active() -> FaultInjector | None:
    """The currently-installed injector, if any."""
    return _ACTIVE


def install(plan: FaultPlan | FaultInjector | str) -> FaultInjector:
    """Install a fault plan process-wide; returns the injector."""
    global _ACTIVE
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    injector = plan if isinstance(plan, FaultInjector) else FaultInjector(plan)
    _ACTIVE = injector
    return injector


def uninstall() -> None:
    """Remove the active fault plan (sites become no-ops again)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def injected(plan: FaultPlan | FaultInjector | str) -> Iterator[FaultInjector]:
    """Scoped installation: install ``plan``, restore the previous one after."""
    global _ACTIVE
    previous = _ACTIVE
    injector = install(plan)
    try:
        yield injector
    finally:
        _ACTIVE = previous
