"""Static stack-height analysis (the angr / DYNINST style analyses).

The paper's Algorithm 1 deliberately reads stack heights from call-frame
information rather than from a static analysis, because the static analyses
shipped by existing tools are both incomplete (they give up on constructs
they cannot model) and occasionally inaccurate (they propagate a wrong height
through joins).  Table IV quantifies that gap.  This module provides a
configurable forward data-flow analysis whose two flavours reproduce those
imperfections:

* ``"dyninst"`` — conservative: conflicting heights at a join become unknown,
  frame-pointer-based epilogues (``leave``) are not modelled.
* ``"angr"`` — keeps the first height seen at a join (which can be wrong when
  paths disagree) and additionally gives up on functions containing indirect
  jumps.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.result import DisassembledFunction
from repro.x86.semantics import stack_delta

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.context import AnalysisContext


class StackHeightAnalysis:
    """Forward stack-pointer-delta analysis over a detected function."""

    def __init__(self, flavor: str = "dyninst", *, context: "AnalysisContext | None" = None):
        if flavor not in ("dyninst", "angr", "exact"):
            raise ValueError(f"unknown stack-height flavor: {flavor}")
        self.flavor = flavor
        self.context = context

    def analyze(self, function: DisassembledFunction) -> dict[int, int | None]:
        """Compute the stack height *before* each instruction of ``function``.

        Heights are bytes pushed since function entry; ``None`` means the
        analysis could not determine the height at that location.  With a
        context the result is memoized by flavor and exact instruction set.
        """
        if self.context is not None:
            return self.context.stack_heights(self.flavor, function)
        if not function.instructions:
            return {}
        if self.flavor == "angr" and any(
            insn.is_indirect_branch and insn.is_unconditional_jump
            for insn in function.instructions.values()
        ):
            # angr-style: the presence of an unresolved indirect jump makes
            # the whole function's stack tracking unreliable.
            return {address: None for address in function.instructions}

        heights: dict[int, int | None] = {}
        worklist: list[tuple[int, int | None]] = [(function.start, 0)]
        iterations = 0
        limit = len(function.instructions) * 8 + 64

        while worklist and iterations < limit:
            iterations += 1
            address, height = worklist.pop()
            insn = function.instructions.get(address)
            if insn is None:
                continue
            if address in heights:
                known = heights[address]
                if known == height:
                    continue
                if self.flavor == "angr":
                    # Keep the first value: cheaper, occasionally wrong.
                    continue
                if known is None:
                    continue
                heights[address] = None
                height = None
            else:
                heights[address] = height

            successors = self._successors(function, insn)
            next_height = self._transfer(insn, height)
            for successor in successors:
                worklist.append((successor, next_height))

        for address in function.instructions:
            heights.setdefault(address, None)
        return heights

    # ------------------------------------------------------------------
    def _transfer(self, insn, height: int | None) -> int | None:
        if height is None:
            return None
        delta = stack_delta(insn)
        if delta is None:
            if self.flavor == "exact" and insn.mnemonic == "leave":
                # leave = mov rsp, rbp; pop rbp — only resolvable when the
                # frame pointer offset is known, which this simple analysis
                # does not track; the exact flavor assumes a standard frame.
                return 0
            return None
        return height - delta

    @staticmethod
    def _successors(function: DisassembledFunction, insn) -> list[int]:
        successors: list[int] = []
        if insn.is_ret or insn.mnemonic in ("ud2", "hlt"):
            return successors
        if insn.is_unconditional_jump:
            target = insn.branch_target
            if target is not None and target in function.instructions:
                successors.append(target)
            return successors
        if insn.is_conditional_jump:
            target = insn.branch_target
            if target is not None and target in function.instructions:
                successors.append(target)
        if insn.end in function.instructions:
            successors.append(insn.end)
        return successors
