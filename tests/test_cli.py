"""Tests for the fetch-detect command line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def elf_path(tmp_path, rich_binary):
    path = tmp_path / "input.elf"
    path.write_bytes(rich_binary.elf_bytes)
    return str(path)


def test_parser_defaults():
    args = build_parser().parse_args(["binary.elf"])
    assert args.binary == "binary.elf"
    assert not args.no_recursion and not args.no_tailcall


def test_cli_prints_detected_starts(elf_path, rich_binary, capsys):
    assert main([elf_path]) == 0
    output = capsys.readouterr().out
    lines = [line for line in output.splitlines() if line and not line.startswith("#")]
    detected = {int(line.split()[0], 16) for line in lines}
    truth = rich_binary.ground_truth.function_starts
    assert len(detected & truth) / len(truth) > 0.97


def test_cli_reports_merged_parts(elf_path, capsys):
    assert main([elf_path]) == 0
    output = capsys.readouterr().out
    assert "merged" in output


def test_cli_fde_only_mode(elf_path, rich_binary, capsys):
    assert main([elf_path, "--no-recursion"]) == 0
    output = capsys.readouterr().out
    lines = [line for line in output.splitlines() if line and not line.startswith("#")]
    assert len(lines) == len(rich_binary.image.fdes) - (
        1 if any(f.bad_fde_offset for f in rich_binary.ground_truth.functions) else 0
    ) or len(lines) <= len(rich_binary.image.fdes)


def test_cli_stage_attribution(elf_path, capsys):
    assert main([elf_path, "--stages"]) == 0
    output = capsys.readouterr().out
    assert "\tfde" in output


def test_cli_symbol_comparison(elf_path, capsys):
    assert main([elf_path, "--compare-symbols"]) == 0
    output = capsys.readouterr().out
    assert "symbols:" in output


def test_cli_missing_file_returns_error(capsys):
    assert main(["/nonexistent/path.elf"]) == 1
    assert "error" in capsys.readouterr().err


def test_cli_rejects_non_elf_input(tmp_path, capsys):
    path = tmp_path / "not_elf.bin"
    path.write_bytes(b"definitely not an ELF file")
    assert main([str(path)]) == 1


def test_cli_warns_without_eh_frame(tmp_path, capsys):
    from repro.elf import ElfFile, Section, write_elf
    from repro.elf import constants as C

    text = Section(
        name=".text", data=b"\xc3" + b"\x90" * 15, address=0x401000,
        flags=C.SHF_ALLOC | C.SHF_EXECINSTR,
    )
    path = tmp_path / "noeh.elf"
    path.write_bytes(write_elf(ElfFile(sections=[text], entry_point=0x401000)))
    assert main([str(path)]) == 0
    assert "no .eh_frame" in capsys.readouterr().err


def test_cli_multiple_binaries_thread_pool(elf_path, capsys):
    assert main([elf_path, elf_path, "--jobs", "2"]) == 0
    output = capsys.readouterr().out
    assert output.count("function starts detected") == 2


def test_cli_json_output_matches_text(elf_path, capsys):
    import json as json_module

    assert main([elf_path]) == 0
    text = capsys.readouterr().out
    text_starts = [
        int(line.split()[0], 16)
        for line in text.splitlines()
        if line and not line.startswith("#")
    ]

    assert main([elf_path, "--json"]) == 0
    document = json_module.loads(capsys.readouterr().out)
    record = document["binaries"][0]
    assert record["function_starts"] == text_starts
    assert record["count"] == len(text_starts)
    assert record["detector"] == "fetch"
    assert "fde" in record["stages"]
    assert set(record["timings_seconds"]) == {"load", "detect"}
    assert record["cached"] is False


def test_cli_detector_flag_runs_any_registered_tool(elf_path, capsys):
    assert main([elf_path, "--detector", "ida"]) == 0
    assert "function starts detected" in capsys.readouterr().out

    with pytest.raises(SystemExit):
        main([elf_path, "--detector", "objdump"])


def test_cli_list_detectors(capsys):
    assert main(["--list-detectors"]) == 0
    output = capsys.readouterr().out
    for name in ("fetch", "ghidra", "byteweight"):
        assert name in output


def test_cli_store_caches_detection(elf_path, tmp_path, capsys):
    import json as json_module

    store_dir = str(tmp_path / "store")
    assert main([elf_path]) == 0
    plain = capsys.readouterr().out

    assert main([elf_path, "--store", store_dir]) == 0
    cold = capsys.readouterr().out
    assert cold == plain, "store must not change the text output"

    assert main([elf_path, "--store", store_dir, "--json"]) == 0
    record = json_module.loads(capsys.readouterr().out)["binaries"][0]
    assert record["cached"] is True

    # cached runs render --stages identically to uncached ones
    assert main([elf_path, "--stages"]) == 0
    uncached_stages = capsys.readouterr().out
    assert main([elf_path, "--stages", "--store", store_dir]) == 0
    assert capsys.readouterr().out == uncached_stages


def test_cli_no_store_overrides_environment(elf_path, tmp_path, monkeypatch, capsys):
    import json as json_module

    store_dir = tmp_path / "envstore"
    monkeypatch.setenv("REPRO_STORE_DIR", str(store_dir))
    assert main([elf_path, "--no-store", "--json"]) == 0
    capsys.readouterr()
    assert not store_dir.exists()

    assert main([elf_path, "--json"]) == 0
    record = json_module.loads(capsys.readouterr().out)["binaries"][0]
    assert record["cached"] is False and store_dir.exists()


def test_cli_corpus_build_and_info(tmp_path, capsys):
    store_dir = str(tmp_path / "corpus-store")
    args = ["corpus", "build", "--kind", "scenario-matrix", "--scale", "0.1",
            "--programs", "1", "--store", store_dir]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "6 built" in first

    assert main(args) == 0
    second = capsys.readouterr().out
    assert "6 corpus manifest(s) reused" in second

    assert main(["corpus", "info", "--store", store_dir]) == 0
    info = capsys.readouterr().out
    assert "6 corpus manifest(s)" in info
    assert "scenario=vanilla" in info


def test_cli_store_stats_gc_migrate(tmp_path, capsys):
    import json as json_module

    store_dir = str(tmp_path / "maint-store")
    build = ["corpus", "build", "--kind", "scenario-matrix", "--scale", "0.1",
             "--programs", "1", "--store", store_dir]
    assert main(build) == 0
    capsys.readouterr()

    assert main(["store", "stats", "--store", store_dir, "--json"]) == 0
    stats = json_module.loads(capsys.readouterr().out)
    assert stats["layout"] == 2
    assert stats["index"]["entries"] > 0
    assert stats["index"]["namespaces"]["corpora"]["entries"] == 6

    assert main(["store", "gc", "--dry-run", "--max-age-days", "30",
                 "--store", store_dir, "--json"]) == 0
    preview = json_module.loads(capsys.readouterr().out)
    assert preview["dry_run"] is True
    assert preview["evicted"] == 0, "nothing is 30 days old yet"
    assert preview["examined"] > 0

    # evict everything evictable; manifests survive and corpora still list
    assert main(["store", "gc", "--max-bytes", "0", "--store", store_dir]) == 0
    assert "evicted" in capsys.readouterr().out
    assert main(["corpus", "info", "--store", store_dir]) == 0
    assert "6 corpus manifest(s)" in capsys.readouterr().out

    assert main(["store", "migrate", "--store", store_dir]) == 0
    assert "layout v2 -> v2" in capsys.readouterr().out


def test_cli_store_migrates_v1_layout(tmp_path, capsys):
    from repro.store import ArtifactStore, FilesystemBackend, LAYOUT_V1

    store_dir = tmp_path / "v1-store"
    legacy = ArtifactStore(backend=FilesystemBackend(store_dir, layout=LAYOUT_V1))
    legacy.put_blob(b"legacy blob")

    assert main(["store", "migrate", "--store", str(store_dir)]) == 0
    assert "layout v1 -> v2" in capsys.readouterr().out

    assert main(["store", "stats", "--store", str(store_dir)]) == 0
    assert "layout v2" in capsys.readouterr().out


def test_cli_binary_named_store_is_still_analysed(rich_binary, tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "store").write_bytes(rich_binary.elf_bytes)
    assert main(["store"]) == 0
    assert "function starts detected in store" in capsys.readouterr().out


def test_cli_bare_store_without_file_shows_subcommand_usage(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    with pytest.raises(SystemExit):
        main(["store"])
    assert "gc" in capsys.readouterr().err


def test_cli_binary_named_corpus_is_still_analysed(rich_binary, tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "corpus").write_bytes(rich_binary.elf_bytes)
    assert main(["corpus"]) == 0
    assert "function starts detected in corpus" in capsys.readouterr().out


def test_cli_bare_corpus_without_file_shows_subcommand_usage(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    with pytest.raises(SystemExit):
        main(["corpus"])
    assert "build" in capsys.readouterr().err
