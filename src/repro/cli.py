"""Command-line interface: ``fetch-detect``.

Analyses an x86-64 ELF binary with the FETCH pipeline and prints the detected
function starts, optionally comparing them against the binary's symbol table.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import FetchDetector, FetchOptions
from repro.elf.image import BinaryImage


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fetch-detect",
        description=(
            "Detect function starts in an x86-64 System-V ELF binary using "
            "exception-handling information (FETCH, DSN 2021)."
        ),
    )
    parser.add_argument("binary", help="path to the ELF binary to analyse")
    parser.add_argument(
        "--no-recursion",
        action="store_true",
        help="only report FDE PC-Begin addresses (the paper's Q1 baseline)",
    )
    parser.add_argument(
        "--no-xref",
        action="store_true",
        help="skip function-pointer collection and validation",
    )
    parser.add_argument(
        "--no-tailcall",
        action="store_true",
        help="skip Algorithm 1 (tail-call detection and part merging)",
    )
    parser.add_argument(
        "--use-symbols",
        action="store_true",
        help="also seed detection from function symbols when present",
    )
    parser.add_argument(
        "--compare-symbols",
        action="store_true",
        help="report agreement between detected starts and function symbols",
    )
    parser.add_argument(
        "--stages",
        action="store_true",
        help="show which pipeline stage contributed each detection",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        image = BinaryImage.from_file(args.binary)
    except (OSError, ValueError) as error:
        print(f"error: cannot load {args.binary}: {error}", file=sys.stderr)
        return 1

    if not image.has_eh_frame:
        print(
            "warning: binary has no .eh_frame section; FDE-based detection "
            "will find nothing",
            file=sys.stderr,
        )

    options = FetchOptions(
        use_symbols=args.use_symbols,
        use_recursion=not args.no_recursion,
        use_pointer_validation=not args.no_xref,
        use_tail_call_analysis=not args.no_tailcall,
    )
    result = FetchDetector(options).detect(image)

    starts = sorted(result.function_starts)
    print(f"# {len(starts)} function starts detected in {args.binary}")
    stage_of: dict[int, str] = {}
    if args.stages:
        for stage, added in result.added_by_stage.items():
            for address in added:
                stage_of.setdefault(address, stage)
    for address in starts:
        if args.stages:
            print(f"{address:#x}\t{stage_of.get(address, '?')}")
        else:
            print(f"{address:#x}")

    if result.merged_parts:
        print(f"# merged {len(result.merged_parts)} non-contiguous part(s):")
        for part, parent in sorted(result.merged_parts.items()):
            print(f"#   {part:#x} -> part of function {parent:#x}")

    if args.compare_symbols and image.has_symbols:
        symbol_starts = {s.address for s in image.function_symbols}
        detected = set(starts)
        print(f"# symbols: {len(symbol_starts)}, detected: {len(detected)}")
        print(f"#   symbols not detected : {len(symbol_starts - detected)}")
        print(f"#   detected not in symbols: {len(detected - symbol_starts)}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
