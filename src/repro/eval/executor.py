"""Shared thread/process fan-out used by the CLI and the corpus evaluator.

One helper owns the backend choice that used to be duplicated between
``repro.cli`` and :class:`repro.eval.runner.CorpusEvaluator`: a process pool
when real CPU parallelism is requested (``workers``), a thread pool when
only I/O-and-GIL-bound concurrency is wanted (``jobs``), and a plain serial
loop otherwise.  Results always come back in input order.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, TypeVar

_Item = TypeVar("_Item")


def parallel_map(
    fn: Callable[[_Item], Any],
    items: Iterable[_Item],
    *,
    jobs: int = 1,
    workers: int = 0,
    pool: Executor | None = None,
) -> list[Any]:
    """Ordered ``map(fn, items)`` over the selected backend.

    ``workers > 1`` (with more than one item) selects the process backend:
    ``fn`` and the items must be picklable.  A persistent ``pool`` may be
    supplied to amortise worker start-up across calls — it is *not* shut
    down here; without one a pool is created and torn down per call.
    Otherwise ``jobs > 1`` fans out over a thread pool, and anything else
    runs serially.
    """
    items = list(items)
    if workers > 1 and len(items) > 1:
        if pool is not None:
            return list(pool.map(fn, items))
        with ProcessPoolExecutor(max_workers=workers) as process_pool:
            return list(process_pool.map(fn, items))
    if jobs > 1 and len(items) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as thread_pool:
            return list(thread_pool.map(fn, items))
    return [fn(item) for item in items]
