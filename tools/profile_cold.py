#!/usr/bin/env python3
"""Profile one cold detection run under cProfile.

Standalone twin of ``fetch-detect profile``: loads an ELF binary, runs a
single cold detection (image construction, eh_frame parse and the full
pipeline all inside the profiled region) and prints the top-N functions.

Usage::

    PYTHONPATH=src python tools/profile_cold.py BINARY [--top N]
        [--sort cumulative|tottime|calls] [--detector NAME] [--json]

This is the driver used to pick — and afterwards verify — the cold-path
optimisation targets: run it before and after a change and compare where
the cumulative time goes.  ``--json`` emits the same top-N ranking as a
machine-readable record (ncalls / tottime / cumtime per function) for
storing and diffing profile snapshots across commits.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Allow running from a checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.eval.profiling import (  # noqa: E402
    SORT_ORDERS,
    profile_cold_detection,
    profile_cold_detection_record,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("binary", help="path to the ELF binary to profile")
    parser.add_argument("--detector", default="fetch", metavar="NAME")
    parser.add_argument("--top", type=int, default=25, metavar="N")
    parser.add_argument("--sort", choices=SORT_ORDERS, default="cumulative")
    parser.add_argument("--json", action="store_true",
                        help="emit the hotspots as a JSON record")
    args = parser.parse_args(argv)

    try:
        data = Path(args.binary).read_bytes()
    except OSError as error:
        print(f"error: cannot load {args.binary}: {error}", file=sys.stderr)
        return 1
    try:
        if args.json:
            record = profile_cold_detection_record(
                data,
                name=args.binary,
                detector=args.detector,
                top=args.top,
                sort=args.sort,
            )
            print(json.dumps(record, indent=2))
            return 0
        report = profile_cold_detection(
            data,
            name=args.binary,
            detector=args.detector,
            top=args.top,
            sort=args.sort,
        )
    except (KeyError, ValueError) as error:
        print(f"error: cannot profile {args.binary}: {error}", file=sys.stderr)
        return 1
    print(report, end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
