"""Register model for the x86-64 general purpose register file.

Only the 64-bit general purpose registers are modelled explicitly; 32-bit
forms are represented by the same :class:`Register` object with a different
operand size recorded on the instruction operand.  DWARF register numbers
follow the System-V x86-64 ABI mapping (``rax``=0 .. ``r15``=15, ``rip``=16),
which is the numbering used by call-frame information.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Register:
    """A general purpose register.

    Attributes:
        number: hardware encoding number (0-15), also used in ModRM/SIB.
        name: canonical 64-bit name (``"rax"``, ``"r8"`` ...).
        dwarf_number: the DWARF/CFI register number from the System-V ABI.
    """

    number: int
    name: str
    dwarf_number: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    @property
    def needs_rex(self) -> bool:
        """Whether this register requires a REX extension bit (r8-r15)."""
        return self.number >= 8

    @property
    def low_bits(self) -> int:
        """The low three bits used in ModRM/SIB fields."""
        return self.number & 0b111

    def name32(self) -> str:
        """The 32-bit name of this register (``eax``, ``r8d``, ...)."""
        if self.number >= 8:
            return f"{self.name}d"
        return "e" + self.name[1:]


# System-V DWARF numbers: rax=0 rdx=1 rcx=2 rbx=3 rsi=4 rdi=5 rbp=6 rsp=7
# r8..r15 = 8..15, rip (return address column) = 16.
_DWARF_NUMBERS = {
    "rax": 0,
    "rdx": 1,
    "rcx": 2,
    "rbx": 3,
    "rsi": 4,
    "rdi": 5,
    "rbp": 6,
    "rsp": 7,
    "r8": 8,
    "r9": 9,
    "r10": 10,
    "r11": 11,
    "r12": 12,
    "r13": 13,
    "r14": 14,
    "r15": 15,
}

_NAMES_IN_ENCODING_ORDER = (
    "rax",
    "rcx",
    "rdx",
    "rbx",
    "rsp",
    "rbp",
    "rsi",
    "rdi",
    "r8",
    "r9",
    "r10",
    "r11",
    "r12",
    "r13",
    "r14",
    "r15",
)

GPR64: tuple[Register, ...] = tuple(
    Register(number=i, name=name, dwarf_number=_DWARF_NUMBERS[name])
    for i, name in enumerate(_NAMES_IN_ENCODING_ORDER)
)

RAX, RCX, RDX, RBX, RSP, RBP, RSI, RDI, R8, R9, R10, R11, R12, R13, R14, R15 = GPR64

RIP_DWARF_NUMBER = 16

#: Integer-argument registers in System-V order.
ARGUMENT_REGISTERS: tuple[Register, ...] = (RDI, RSI, RDX, RCX, R8, R9)

#: Registers a callee must preserve under the System-V ABI.
CALLEE_SAVED_REGISTERS: tuple[Register, ...] = (RBX, RBP, R12, R13, R14, R15)

#: Caller-saved (scratch) registers, excluding the stack pointer.
CALLER_SAVED_REGISTERS: tuple[Register, ...] = (RAX, RCX, RDX, RSI, RDI, R8, R9, R10, R11)

_BY_NAME = {reg.name: reg for reg in GPR64}
_BY_NAME.update({reg.name32(): reg for reg in GPR64})
_BY_NUMBER = {reg.number: reg for reg in GPR64}
_BY_DWARF = {reg.dwarf_number: reg for reg in GPR64}


def register_by_name(name: str) -> Register:
    """Look up a register by its 64-bit or 32-bit name."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError as exc:
        raise KeyError(f"unknown register name: {name!r}") from exc


def register_by_number(number: int) -> Register:
    """Look up a register by its hardware encoding number (0-15)."""
    try:
        return _BY_NUMBER[number]
    except KeyError as exc:
        raise KeyError(f"register number out of range: {number}") from exc


def register_by_dwarf_number(number: int) -> Register:
    """Look up a register by its DWARF/CFI register number."""
    try:
        return _BY_DWARF[number]
    except KeyError as exc:
        raise KeyError(f"unknown DWARF register number: {number}") from exc
