"""x86-64 instruction decoder.

The decoder understands the instruction subset produced by
:class:`repro.x86.assembler.Assembler` plus the most common encodings found in
compiler output, and fails loudly (:class:`DecodeError`) on anything else.
That failure mode is load-bearing: the function-pointer validation of the
FETCH pipeline (§IV-E of the paper) treats "invalid opcode" as evidence that a
candidate pointer is not a function start.

Decoding is table-driven: a flat 256-entry dispatch table (plus a second one
for the ``0F`` two-byte map) is built once at import, and each entry is a
closure that reads its operands directly off the buffer with
``int.from_bytes`` — no cursor object, no per-byte method calls.  The batch
entry point :func:`decode_block` decodes a run of sequential instructions in
one call and fills the shared per-address cache in bulk; it is what the
analysis layers use on the cold path.
"""

from __future__ import annotations

from collections.abc import Iterator, MutableMapping

from repro.x86.instruction import (
    _F_CALL,
    _F_INDIRECT,
    _F_NOP,
    _F_PADDING,
    _F_TERMINATOR,
    _F_UNCOND_JUMP,
    _MNEMONIC_FLAGS,
    CONDITION_CODES,
    Instruction,
)
from repro.x86.operands import Imm, Mem
from repro.x86.registers import GPR64, Register

_MAX_INSTRUCTION_LENGTH = 15

#: Cache type accepted by the decode entry points: address -> decoded
#: instruction, or ``None`` for a remembered decode failure.
DecodeCacheMap = MutableMapping[int, "Instruction | None"]


class _DecodeStats:
    """Process-wide decode-work counter (see :data:`DECODE_STATS`)."""

    __slots__ = ("raw_decodes",)

    def __init__(self) -> None:
        self.raw_decodes = 0


#: Counts every raw (non-memoized) instruction decode performed in this
#: process.  Deterministic, unlike wall-clock time, which makes it the
#: benchmark-grade measure of how much decode work a cache actually saved.
#: The increment is unsynchronized, so readings taken around multi-threaded
#: (``jobs > 1``) regions are approximate; the process-pool backend of
#: :class:`repro.eval.runner.CorpusEvaluator` aggregates each worker's count
#: back into the parent, so process-backend readings are exact.
DECODE_STATS = _DecodeStats()

_GROUP1_MNEMONICS = {0: "add", 1: "or", 2: "adc", 3: "sbb", 4: "and", 5: "sub", 6: "xor", 7: "cmp"}
_SHIFT_MNEMONICS = {0: "rol", 1: "ror", 2: "rcl", 3: "rcr", 4: "shl", 5: "shr", 7: "sar"}

#: Registers indexed by their 4-bit encoding number (REX extension folded in).
_REG = GPR64

_from_bytes = int.from_bytes


class DecodeError(ValueError):
    """Raised when bytes cannot be decoded as a supported instruction."""

    def __init__(self, message: str, address: int = 0):
        super().__init__(f"{message} at {address:#x}")
        self.address = address


def _parse_modrm(
    code, pos: int, address: int, rex: int
) -> tuple[int, Register | Mem, int]:
    """Parse a ModRM byte (and SIB/displacement) starting at ``code[pos]``.

    Returns ``(reg_field, rm_operand, next_pos)``.
    """
    n = len(code)
    if pos >= n:
        raise DecodeError("truncated instruction", address)
    modrm = code[pos]
    pos += 1
    mod = modrm >> 6
    reg = ((modrm >> 3) & 0b111) | ((rex & 0b100) << 1)
    rm = modrm & 0b111

    if mod == 0b11:
        return reg, _REG[rm | ((rex & 1) << 3)], pos

    # Mem objects are built through ``__new__`` + direct slot stores: every
    # field combination produced here is valid by construction (the scale is
    # always ``1 << bits`` and the RIP form never carries base/index), so the
    # constructor's validation would only re-check invariants of this parser.
    if rm == 0b101 and mod == 0b00:
        end = pos + 4
        if end > n:
            raise DecodeError("truncated instruction", address)
        mem = Mem.__new__(Mem)
        mem.base = None
        mem.index = None
        mem.scale = 1
        mem.disp = _from_bytes(code[pos:end], "little", signed=True)
        mem.rip_relative = True
        mem.size = 8
        return reg, mem, end

    index: Register | None = None
    scale = 1

    if rm == 0b100:
        if pos >= n:
            raise DecodeError("truncated instruction", address)
        sib = code[pos]
        pos += 1
        scale = 1 << (sib >> 6)
        index_bits = ((sib >> 3) & 0b111) | ((rex & 0b10) << 2)
        if index_bits != 0b100:
            index = _REG[index_bits]
        if (sib & 0b111) == 0b101 and mod == 0b00:
            end = pos + 4
            if end > n:
                raise DecodeError("truncated instruction", address)
            mem = Mem.__new__(Mem)
            mem.base = None
            mem.index = index
            mem.scale = scale
            mem.disp = _from_bytes(code[pos:end], "little", signed=True)
            mem.rip_relative = False
            mem.size = 8
            return reg, mem, end
        base = _REG[(sib & 0b111) | ((rex & 1) << 3)]
    else:
        base = _REG[rm | ((rex & 1) << 3)]

    if mod == 0b00:
        disp = 0
    elif mod == 0b01:
        if pos >= n:
            raise DecodeError("truncated instruction", address)
        disp = code[pos]
        if disp >= 128:
            disp -= 256
        pos += 1
    else:
        end = pos + 4
        if end > n:
            raise DecodeError("truncated instruction", address)
        disp = _from_bytes(code[pos:end], "little", signed=True)
        pos = end
    mem = Mem.__new__(Mem)
    mem.base = base
    mem.index = index
    mem.scale = scale
    mem.disp = disp
    mem.rip_relative = False
    mem.size = 8
    return reg, mem, pos


def _read_i8(code, pos: int, address: int) -> tuple[int, int]:
    if pos >= len(code):
        raise DecodeError("truncated instruction", address)
    value = code[pos]
    return (value - 256 if value >= 128 else value), pos + 1


def _read_i32(code, pos: int, address: int) -> tuple[int, int]:
    end = pos + 4
    if end > len(code):
        raise DecodeError("truncated instruction", address)
    return _from_bytes(code[pos:end], "little", signed=True), end


# ---------------------------------------------------------------------------
# Dispatch tables.  Each handler is called as
#     handler(code, pos, start, address, rex, prefix_66, prefix_f3)
# with ``pos`` just past the opcode byte and ``start`` at the first prefix
# byte; it returns the finished Instruction (whose data spans start..end).
#
# Handlers build Instructions through ``__new__`` + direct slot stores rather
# than the constructor: each handler statically knows its mnemonic's
# classification flags and which operand slot (if any) can hold a memory
# operand, so the constructor's per-instruction flag lookup and operand scan
# would only recompute constants.  Every slot ``Instruction.__init__``
# assigns is assigned here.  The decode entry points guarantee ``code`` is
# ``bytes``, so ``code[start:pos]`` is already the final ``data`` value.
# ---------------------------------------------------------------------------
_DISPATCH: list = [None] * 256
_DISPATCH_0F: list = [None] * 256

_INSN_NEW = Instruction.__new__
_IMM_NEW = Imm.__new__


def _m_simple(mnemonic):
    flags = _MNEMONIC_FLAGS.get(mnemonic, 0)

    def handler(code, pos, start, address, rex, p66, pf3):
        insn = _INSN_NEW(Instruction)
        insn.mnemonic = mnemonic
        insn.operands = ()
        insn.address = address
        insn.data = code[start:pos]
        insn.operand_size = 8
        insn.comment = ""
        insn.end = address + (pos - start)
        insn._flags = flags
        insn.branch_target = None
        insn._memory_operand = None
        insn.rip_target = None
        insn._consts = None
        return insn

    return handler


def _m_push_pop_reg(mnemonic, low):
    def handler(code, pos, start, address, rex, p66, pf3):
        insn = _INSN_NEW(Instruction)
        insn.mnemonic = mnemonic
        insn.operands = (_REG[low | ((rex & 1) << 3)],)
        insn.address = address
        insn.data = code[start:pos]
        insn.operand_size = 8
        insn.comment = ""
        insn.end = address + (pos - start)
        insn._flags = 0
        insn.branch_target = None
        insn._memory_operand = None
        insn.rip_target = None
        insn._consts = None
        return insn

    return handler


def _m_push_imm(imm_size):
    def handler(code, pos, start, address, rex, p66, pf3):
        if imm_size == 1:
            value, pos = _read_i8(code, pos, address)
        else:
            value, pos = _read_i32(code, pos, address)
        imm = _IMM_NEW(Imm)
        imm.value = value
        imm.size = imm_size
        insn = _INSN_NEW(Instruction)
        insn.mnemonic = "push"
        insn.operands = (imm,)
        insn.address = address
        insn.data = code[start:pos]
        insn.operand_size = 8
        insn.comment = ""
        insn.end = address + (pos - start)
        insn._flags = 0
        insn.branch_target = None
        insn._memory_operand = None
        insn.rip_target = None
        insn._consts = value if imm_size == 4 else None
        return insn

    return handler


def _m_alu_store(mnemonic):
    """ALU ``r/m, r`` forms (operands ``(rm, reg)``)."""

    def handler(code, pos, start, address, rex, p66, pf3):
        # Register-form ModRM (mod == 0b11) is the dominant shape in compiler
        # output and needs none of the SIB/displacement parsing.
        if pos < len(code) and code[pos] >= 0xC0:
            modrm = code[pos]
            pos += 1
            insn = _INSN_NEW(Instruction)
            insn.mnemonic = mnemonic
            insn.operands = (
                _REG[(modrm & 0b111) | ((rex & 1) << 3)],
                _REG[((modrm >> 3) & 0b111) | ((rex & 0b100) << 1)],
            )
            insn.address = address
            insn.data = code[start:pos]
            insn.operand_size = 8 if rex & 8 else 4
            insn.comment = ""
            insn.end = address + (pos - start)
            insn._flags = 0
            insn.branch_target = None
            insn._memory_operand = None
            insn.rip_target = None
            insn._consts = None
            return insn
        reg_field, rm, pos = _parse_modrm(code, pos, address, rex)
        insn = _INSN_NEW(Instruction)
        insn.mnemonic = mnemonic
        insn.operands = (rm, _REG[reg_field])
        insn.address = address
        insn.data = code[start:pos]
        insn.operand_size = 8 if rex & 8 else 4
        insn.comment = ""
        end = address + (pos - start)
        insn.end = end
        insn._flags = 0
        insn.branch_target = None
        if rm.__class__ is Mem:
            insn._memory_operand = rm
            insn.rip_target = insn._consts = (
                end + rm.disp if rm.rip_relative else None
            )
        else:
            insn._memory_operand = None
            insn.rip_target = None
            insn._consts = None
        return insn

    return handler


def _m_alu_load(mnemonic):
    """ALU ``r, r/m`` forms (operands ``(reg, rm)``)."""

    def handler(code, pos, start, address, rex, p66, pf3):
        if pos < len(code) and code[pos] >= 0xC0:
            modrm = code[pos]
            pos += 1
            insn = _INSN_NEW(Instruction)
            insn.mnemonic = mnemonic
            insn.operands = (
                _REG[((modrm >> 3) & 0b111) | ((rex & 0b100) << 1)],
                _REG[(modrm & 0b111) | ((rex & 1) << 3)],
            )
            insn.address = address
            insn.data = code[start:pos]
            insn.operand_size = 8 if rex & 8 else 4
            insn.comment = ""
            insn.end = address + (pos - start)
            insn._flags = 0
            insn.branch_target = None
            insn._memory_operand = None
            insn.rip_target = None
            insn._consts = None
            return insn
        reg_field, rm, pos = _parse_modrm(code, pos, address, rex)
        insn = _INSN_NEW(Instruction)
        insn.mnemonic = mnemonic
        insn.operands = (_REG[reg_field], rm)
        insn.address = address
        insn.data = code[start:pos]
        insn.operand_size = 8 if rex & 8 else 4
        insn.comment = ""
        end = address + (pos - start)
        insn.end = end
        insn._flags = 0
        insn.branch_target = None
        if rm.__class__ is Mem:
            insn._memory_operand = rm
            insn.rip_target = insn._consts = (
                end + rm.disp if rm.rip_relative else None
            )
        else:
            insn._memory_operand = None
            insn.rip_target = None
            insn._consts = None
        return insn

    return handler


def _h_lea(code, pos, start, address, rex, p66, pf3):
    reg_field, rm, pos = _parse_modrm(code, pos, address, rex)
    if rm.__class__ is not Mem:
        raise DecodeError("lea with register operand", address)
    insn = _INSN_NEW(Instruction)
    insn.mnemonic = "lea"
    insn.operands = (_REG[reg_field], rm)
    insn.address = address
    insn.data = code[start:pos]
    insn.operand_size = 8 if rex & 8 else 4
    insn.comment = ""
    end = address + (pos - start)
    insn.end = end
    insn._flags = 0
    insn.branch_target = None
    insn._memory_operand = rm
    insn.rip_target = insn._consts = end + rm.disp if rm.rip_relative else None
    return insn


def _m_group1(imm_is_8bit):
    def handler(code, pos, start, address, rex, p66, pf3):
        if pos < len(code) and code[pos] >= 0xC0:
            modrm = code[pos]
            reg_field = (modrm >> 3) & 0b111
            rm = _REG[(modrm & 0b111) | ((rex & 1) << 3)]
            pos += 1
        else:
            reg_field, rm, pos = _parse_modrm(code, pos, address, rex)
        if imm_is_8bit:
            value, pos = _read_i8(code, pos, address)
            imm_size = 1
        else:
            value, pos = _read_i32(code, pos, address)
            imm_size = 4
        imm = _IMM_NEW(Imm)
        imm.value = value
        imm.size = imm_size
        insn = _INSN_NEW(Instruction)
        insn.mnemonic = _GROUP1_MNEMONICS[reg_field & 0b111]
        insn.operands = (rm, imm)
        insn.address = address
        insn.data = code[start:pos]
        insn.operand_size = 8 if rex & 8 else 4
        insn.comment = ""
        end = address + (pos - start)
        insn.end = end
        insn._flags = 0
        insn.branch_target = None
        if rm.__class__ is Mem:
            insn._memory_operand = rm
            rip = end + rm.disp if rm.rip_relative else None
            insn.rip_target = rip
            if imm_size == 4:
                insn._consts = value if rip is None else (value, rip)
            else:
                insn._consts = rip
        else:
            insn._memory_operand = None
            insn.rip_target = None
            insn._consts = value if imm_size == 4 else None
        return insn

    return handler


def _m_mov_imm(low):
    def handler(code, pos, start, address, rex, p66, pf3):
        reg = _REG[low | ((rex & 1) << 3)]
        if rex & 8:
            pos += 8
            if pos > len(code):
                raise DecodeError("truncated instruction", address)
            value = _from_bytes(code[pos - 8 : pos], "little", signed=True)
            osize = 8
        else:
            value, pos = _read_i32(code, pos, address)
            osize = 4
        imm = _IMM_NEW(Imm)
        imm.value = value
        imm.size = osize
        operands = (reg, imm)
        insn = _INSN_NEW(Instruction)
        insn.mnemonic = "mov"
        insn.operands = operands
        insn.address = address
        insn.data = code[start:pos]
        insn.operand_size = osize
        insn.comment = ""
        insn.end = address + (pos - start)
        insn._flags = 0
        insn.branch_target = None
        insn._memory_operand = None
        insn.rip_target = None
        insn._consts = value
        return insn

    return handler


def _m_mov_rm_imm(imm_size, error):
    def handler(code, pos, start, address, rex, p66, pf3):
        reg_field, rm, pos = _parse_modrm(code, pos, address, rex)
        if (reg_field & 0b111) != 0:
            raise DecodeError(error, address)
        if imm_size == 1:
            value, pos = _read_i8(code, pos, address)
            osize = 1
        else:
            value, pos = _read_i32(code, pos, address)
            osize = 8 if rex & 8 else 4
        imm = _IMM_NEW(Imm)
        imm.value = value
        imm.size = imm_size
        insn = _INSN_NEW(Instruction)
        insn.mnemonic = "mov"
        insn.operands = (rm, imm)
        insn.address = address
        insn.data = code[start:pos]
        insn.operand_size = osize
        insn.comment = ""
        end = address + (pos - start)
        insn.end = end
        insn._flags = 0
        insn.branch_target = None
        if rm.__class__ is Mem:
            insn._memory_operand = rm
            rip = end + rm.disp if rm.rip_relative else None
            insn.rip_target = rip
            if imm_size == 4:
                insn._consts = value if rip is None else (value, rip)
            else:
                insn._consts = rip
        else:
            insn._memory_operand = None
            insn.rip_target = None
            insn._consts = value if imm_size == 4 else None
        return insn

    return handler


def _h_shift(code, pos, start, address, rex, p66, pf3):
    reg_field, rm, pos = _parse_modrm(code, pos, address, rex)
    mnemonic = _SHIFT_MNEMONICS.get(reg_field & 0b111)
    if mnemonic is None:
        raise DecodeError("unsupported shift extension", address)
    value, pos = _read_i8(code, pos, address)
    imm = _IMM_NEW(Imm)
    imm.value = value
    imm.size = 1
    insn = _INSN_NEW(Instruction)
    insn.mnemonic = mnemonic
    insn.operands = (rm, imm)
    insn.address = address
    insn.data = code[start:pos]
    insn.operand_size = 8 if rex & 8 else 4
    insn.comment = ""
    end = address + (pos - start)
    insn.end = end
    insn._flags = 0
    insn.branch_target = None
    if rm.__class__ is Mem:
        insn._memory_operand = rm
        insn.rip_target = insn._consts = end + rm.disp if rm.rip_relative else None
    else:
        insn._memory_operand = None
        insn.rip_target = None
        insn._consts = None
    return insn


def _m_rel32(mnemonic):
    flags = _MNEMONIC_FLAGS.get(mnemonic, 0)

    def handler(code, pos, start, address, rex, p66, pf3):
        pos += 4
        if pos > len(code):
            raise DecodeError("truncated instruction", address)
        end = address + (pos - start)
        target = end + _from_bytes(code[pos - 4 : pos], "little", signed=True)
        imm = _IMM_NEW(Imm)
        imm.value = target
        imm.size = 8
        insn = _INSN_NEW(Instruction)
        insn.mnemonic = mnemonic
        insn.operands = (imm,)
        insn.address = address
        insn.data = code[start:pos]
        insn.operand_size = 8
        insn.comment = ""
        insn.end = end
        insn._flags = flags
        insn.branch_target = target
        insn._memory_operand = None
        insn.rip_target = None
        insn._consts = None
        return insn

    return handler


def _m_rel8(mnemonic):
    flags = _MNEMONIC_FLAGS.get(mnemonic, 0)

    def handler(code, pos, start, address, rex, p66, pf3):
        rel, pos = _read_i8(code, pos, address)
        end = address + (pos - start)
        target = end + rel
        imm = _IMM_NEW(Imm)
        imm.value = target
        imm.size = 8
        insn = _INSN_NEW(Instruction)
        insn.mnemonic = mnemonic
        insn.operands = (imm,)
        insn.address = address
        insn.data = code[start:pos]
        insn.operand_size = 8
        insn.comment = ""
        insn.end = end
        insn._flags = flags
        insn.branch_target = target
        insn._memory_operand = None
        insn.rip_target = None
        insn._consts = None
        return insn

    return handler


_RET_FLAGS = _MNEMONIC_FLAGS["ret"]


def _h_ret_imm(code, pos, start, address, rex, p66, pf3):
    pos += 2
    if pos > len(code):
        raise DecodeError("truncated instruction", address)
    imm = _IMM_NEW(Imm)
    imm.value = code[pos - 2] | (code[pos - 1] << 8)
    imm.size = 2
    insn = _INSN_NEW(Instruction)
    insn.mnemonic = "ret"
    insn.operands = (imm,)
    insn.address = address
    insn.data = code[start:pos]
    insn.operand_size = 8
    insn.comment = ""
    insn.end = address + (pos - start)
    insn._flags = _RET_FLAGS
    insn.branch_target = None
    insn._memory_operand = None
    insn.rip_target = None
    insn._consts = None
    return insn


#: ``FF /n`` forms: extension -> (mnemonic, uses operand size, flags).  The
#: ``call``/``jmp`` forms always take a register or memory operand, so their
#: flags carry ``_F_INDIRECT`` statically.
_FF_GROUP = {
    0: ("inc", True, 0),
    1: ("dec", True, 0),
    2: ("call", False, _F_CALL | _F_INDIRECT),
    4: ("jmp", False, _F_UNCOND_JUMP | _F_TERMINATOR | _F_INDIRECT),
    6: ("push", False, 0),
}


def _h_group_ff(code, pos, start, address, rex, p66, pf3):
    reg_field, rm, pos = _parse_modrm(code, pos, address, rex)
    entry = _FF_GROUP.get(reg_field & 0b111)
    if entry is None:
        raise DecodeError("unsupported FF extension", address)
    mnemonic, uses_osize, flags = entry
    insn = _INSN_NEW(Instruction)
    insn.mnemonic = mnemonic
    insn.operands = (rm,)
    insn.address = address
    insn.data = code[start:pos]
    insn.operand_size = (8 if rex & 8 else 4) if uses_osize else 8
    insn.comment = ""
    end = address + (pos - start)
    insn.end = end
    insn._flags = flags
    insn.branch_target = None
    if rm.__class__ is Mem:
        insn._memory_operand = rm
        insn.rip_target = insn._consts = end + rm.disp if rm.rip_relative else None
    else:
        insn._memory_operand = None
        insn.rip_target = None
        insn._consts = None
    return insn


def _h_two_byte(code, pos, start, address, rex, p66, pf3):
    if pos >= len(code):
        raise DecodeError("truncated instruction", address)
    opcode2 = code[pos]
    handler = _DISPATCH_0F[opcode2]
    if handler is None:
        raise DecodeError(f"unsupported opcode 0f {opcode2:#04x}", address)
    return handler(code, pos + 1, start, address, rex, p66, pf3)


def _h_endbr(code, pos, start, address, rex, p66, pf3):
    if not pf3:
        # Without the F3 prefix this is not an ENDBR encoding at all.
        raise DecodeError("unsupported opcode 0f 0x1e", address)
    if pos >= len(code):
        raise DecodeError("truncated instruction", address)
    modrm = code[pos]
    pos += 1
    if modrm == 0xFA:
        return Instruction("endbr64", (), address, bytes(code[start:pos]), 8)
    if modrm == 0xFB:
        return Instruction("endbr32", (), address, bytes(code[start:pos]), 8)
    raise DecodeError("unsupported F3 0F 1E form", address)


_NOP_FLAGS = _F_NOP | _F_PADDING


def _h_long_nop(code, pos, start, address, rex, p66, pf3):
    _reg_field, _rm, pos = _parse_modrm(code, pos, address, rex)
    insn = _INSN_NEW(Instruction)
    insn.mnemonic = "nop"
    insn.operands = ()
    insn.address = address
    insn.data = code[start:pos]
    insn.operand_size = 8
    insn.comment = ""
    insn.end = address + (pos - start)
    insn._flags = _NOP_FLAGS
    insn.branch_target = None
    insn._memory_operand = None
    insn.rip_target = None
    insn._consts = None
    return insn


def _build_dispatch() -> None:
    for op in range(0x50, 0x58):
        _DISPATCH[op] = _m_push_pop_reg("push", op - 0x50)
    for op in range(0x58, 0x60):
        _DISPATCH[op] = _m_push_pop_reg("pop", op - 0x58)
    _DISPATCH[0x68] = _m_push_imm(4)
    _DISPATCH[0x6A] = _m_push_imm(1)
    for op, name in {
        0x01: "add", 0x09: "or", 0x21: "and", 0x29: "sub",
        0x31: "xor", 0x39: "cmp", 0x85: "test", 0x89: "mov",
    }.items():
        _DISPATCH[op] = _m_alu_store(name)
    for op, name in {0x03: "add", 0x2B: "sub", 0x33: "xor", 0x3B: "cmp", 0x8B: "mov"}.items():
        _DISPATCH[op] = _m_alu_load(name)
    _DISPATCH[0x8D] = _h_lea
    _DISPATCH[0x63] = _m_alu_load("movsxd")
    _DISPATCH[0x81] = _m_group1(imm_is_8bit=False)
    _DISPATCH[0x83] = _m_group1(imm_is_8bit=True)
    for op in range(0xB8, 0xC0):
        _DISPATCH[op] = _m_mov_imm(op - 0xB8)
    _DISPATCH[0xC7] = _m_mov_rm_imm(4, "unsupported C7 extension")
    _DISPATCH[0xC6] = _m_mov_rm_imm(1, "unsupported C6 extension")
    _DISPATCH[0xC1] = _h_shift
    _DISPATCH[0xE8] = _m_rel32("call")
    _DISPATCH[0xE9] = _m_rel32("jmp")
    _DISPATCH[0xEB] = _m_rel8("jmp")
    for op in range(0x70, 0x80):
        _DISPATCH[op] = _m_rel8(CONDITION_CODES[op - 0x70])
    _DISPATCH[0xC3] = _m_simple("ret")
    _DISPATCH[0xC2] = _h_ret_imm
    _DISPATCH[0xFF] = _h_group_ff
    _DISPATCH[0x90] = _m_simple("nop")
    _DISPATCH[0xC9] = _m_simple("leave")
    _DISPATCH[0xCC] = _m_simple("int3")
    _DISPATCH[0xF4] = _m_simple("hlt")
    _DISPATCH[0x0F] = _h_two_byte

    _DISPATCH_0F[0x05] = _m_simple("syscall")
    _DISPATCH_0F[0x0B] = _m_simple("ud2")
    _DISPATCH_0F[0x1E] = _h_endbr
    _DISPATCH_0F[0x1F] = _h_long_nop
    for op in range(0x80, 0x90):
        _DISPATCH_0F[op] = _m_rel32(CONDITION_CODES[op - 0x80])
    _DISPATCH_0F[0xAF] = _m_alu_load("imul")
    _DISPATCH_0F[0xB6] = _m_alu_load("movzx")
    _DISPATCH_0F[0xB7] = _m_alu_load("movzx")
    _DISPATCH_0F[0xBE] = _m_alu_load("movsx")
    _DISPATCH_0F[0xBF] = _m_alu_load("movsx")


_build_dispatch()


def _decode_one(code, pos: int, address: int) -> Instruction:
    """Decode the instruction at ``code[pos]`` (``address`` = its VA)."""
    n = len(code)
    start = pos
    rex = 0
    prefix_66 = False
    prefix_f3 = False
    while True:
        if pos >= n:
            raise DecodeError("empty input", address)
        byte = code[pos]
        if byte == 0x66:
            prefix_66 = True
            pos += 1
        elif byte == 0xF2 or byte == 0xF3:
            prefix_f3 = byte == 0xF3
            pos += 1
        elif 0x40 <= byte <= 0x4F:
            rex = byte
            pos += 1
            if pos >= n:
                raise DecodeError("truncated instruction", address)
            break
        else:
            break
        if pos - start > 4:
            raise DecodeError("too many prefixes", address)

    opcode = code[pos]
    handler = _DISPATCH[opcode]
    if handler is None:
        raise DecodeError(f"unsupported opcode {opcode:#04x}", address)
    instruction = handler(code, pos + 1, start, address, rex, prefix_66, prefix_f3)
    if len(instruction.data) > _MAX_INSTRUCTION_LENGTH:
        raise DecodeError("instruction exceeds 15 bytes", address)
    return instruction


def _decode_instruction_uncached(code, offset: int, address: int) -> Instruction:
    DECODE_STATS.raw_decodes += 1
    return _decode_one(code, offset, address)


def decode_instruction(
    code,
    offset: int = 0,
    address: int = 0,
    cache: DecodeCacheMap | None = None,
) -> Instruction:
    """Decode a single instruction starting at ``code[offset]``.

    ``address`` is the virtual address of the instruction and is used to
    compute absolute targets of relative branches.

    ``cache`` memoizes decodes by virtual address: decoding the same address
    twice (from the same image, which every caller guarantees) returns the
    stored :class:`Instruction`, and a stored ``None`` replays the original
    :class:`DecodeError`.  A shared cache — typically owned by a
    :class:`repro.core.context.AnalysisContext` — is what lets many detectors
    run over one binary without re-decoding every byte.

    Raises:
        DecodeError: for unsupported opcodes or truncated input.
    """
    if code.__class__ is not bytes:
        code = bytes(code)
    if cache is not None:
        try:
            hit = cache[address]
        except KeyError:
            pass
        else:
            if hit is None:
                raise DecodeError("undecodable bytes (cached)", address)
            return hit
        try:
            insn = _decode_instruction_uncached(code, offset, address)
        except DecodeError:
            cache[address] = None
            raise
        cache[address] = insn
        return insn
    return _decode_instruction_uncached(code, offset, address)


_MISSING = object()


def decode_block(
    code,
    offset: int = 0,
    address: int = 0,
    count: int = 64,
    *,
    cache: DecodeCacheMap | None = None,
    stop_at_terminator: bool = False,
    stop_flags: int = 0,
) -> tuple[list[Instruction], bool]:
    """Decode up to ``count`` sequential instructions starting at
    ``code[offset]``.

    ``address`` is the virtual address of ``code[offset]``.  This is the batch
    entry point for cold-path cache filling: one call decodes a run of
    instructions and stores each into ``cache`` (failures are remembered as
    ``None``, exactly as :func:`decode_instruction` would), without the
    per-instruction call and cache-probe overhead of the single-instruction
    API.  ``code`` may be any buffer (``bytes`` or ``memoryview``).

    Decoding stops at the first undecodable address (fresh failure or cached
    one), at a previously-cached failure, at the end of the buffer, after
    ``count`` instructions, or after an instruction whose classification bits
    intersect ``stop_flags``.  ``stop_at_terminator`` is shorthand for
    ``stop_flags=_F_TERMINATOR`` (``ret``/``jmp``/``ud2``/``hlt``); the span
    cache passes ``_F_TERMINATOR | _F_CALL`` so spans end wherever the
    recursive traversal can break a fall-through run.

    Returns ``(instructions, stopped_on_error)``; the flag distinguishes a
    stop caused by an undecodable address from the other stop conditions so
    callers like :func:`decode_range` can act on the failure without a second
    decode attempt.
    """
    if code.__class__ is not bytes:
        # Handlers slice instruction bytes straight out of ``code``, so it
        # must be ``bytes`` (the conversion is free for the common case).
        code = bytes(code)
    if stop_at_terminator:
        stop_flags |= _F_TERMINATOR
    out: list[Instruction] = []
    n = len(code)
    base = address - offset
    pos = offset
    stats = DECODE_STATS
    dispatch = _DISPATCH
    dispatch_0f = _DISPATCH_0F
    get = cache.get if cache is not None else None
    while count > 0 and pos < n:
        va = base + pos
        if get is not None:
            hit = get(va, _MISSING)
            if hit is None:
                return out, True
        else:
            hit = _MISSING
        if hit is _MISSING:
            stats.raw_decodes += 1
            try:
                # Inline of :func:`_decode_one` (kept in sync with it): the
                # per-instruction call frame is measurable at this volume.
                ipos = pos
                rex = 0
                p66 = False
                pf3 = False
                while True:
                    if ipos >= n:
                        raise DecodeError("empty input", va)
                    byte = code[ipos]
                    if byte == 0x66:
                        p66 = True
                        ipos += 1
                    elif byte == 0xF2 or byte == 0xF3:
                        pf3 = byte == 0xF3
                        ipos += 1
                    elif 0x40 <= byte <= 0x4F:
                        rex = byte
                        ipos += 1
                        if ipos >= n:
                            raise DecodeError("truncated instruction", va)
                        break
                    else:
                        break
                    if ipos - pos > 4:
                        raise DecodeError("too many prefixes", va)
                opcode = code[ipos]
                if opcode == 0x0F:
                    ipos += 1
                    if ipos >= n:
                        raise DecodeError("truncated instruction", va)
                    opcode2 = code[ipos]
                    handler = dispatch_0f[opcode2]
                    if handler is None:
                        raise DecodeError(f"unsupported opcode 0f {opcode2:#04x}", va)
                else:
                    handler = dispatch[opcode]
                    if handler is None:
                        raise DecodeError(f"unsupported opcode {opcode:#04x}", va)
                insn = handler(code, ipos + 1, pos, va, rex, p66, pf3)
                if len(insn.data) > _MAX_INSTRUCTION_LENGTH:
                    raise DecodeError("instruction exceeds 15 bytes", va)
            except DecodeError:
                if cache is not None:
                    cache[va] = None
                return out, True
            if cache is not None:
                cache[va] = insn
        else:
            insn = hit
        out.append(insn)
        pos = insn.end - base
        count -= 1
        if stop_flags and insn._flags & stop_flags:
            break
    return out, False


def decode_range(
    code,
    address: int,
    start: int = 0,
    end: int | None = None,
    *,
    stop_on_error: bool = True,
    cache: DecodeCacheMap | None = None,
) -> Iterator[Instruction]:
    """Linearly decode instructions from ``code[start:end]``.

    ``address`` is the virtual address of ``code[0]``.  With
    ``stop_on_error=False`` an undecodable byte is emitted as a one-byte
    ``(bad)`` instruction and decoding continues at the next byte, which is
    the behaviour linear-sweep style baselines rely on.  ``cache`` memoizes
    per-address decodes exactly as in :func:`decode_instruction`; the
    synthetic ``(bad)`` placeholders are never cached.  Decoding proceeds in
    :func:`decode_block` batches.
    """
    if code.__class__ is not bytes:
        code = bytes(code)
    limit = len(code) if end is None else min(end, len(code))
    pos = start
    while pos < limit:
        block, errored = decode_block(code, pos, address + pos, 64, cache=cache)
        bad = False
        for insn in block:
            if pos >= limit:
                # Window exhausted mid-block; later block entries (and any
                # trailing decode failure) lie outside the requested range.
                break
            if insn.end - address > limit:
                # Instruction spills past the requested window.
                bad = True
                break
            yield insn
            pos = insn.end - address
        if not bad:
            bad = errored and pos < limit
        if bad:
            if stop_on_error:
                return
            yield Instruction("(bad)", (), address + pos, bytes(code[pos : pos + 1]))
            pos += 1
