"""Tests for the register model."""

import pytest

from repro.x86.registers import (
    ARGUMENT_REGISTERS,
    CALLEE_SAVED_REGISTERS,
    CALLER_SAVED_REGISTERS,
    GPR64,
    R8,
    R12,
    RAX,
    RBP,
    RDI,
    RSP,
    register_by_dwarf_number,
    register_by_name,
    register_by_number,
)


def test_sixteen_general_purpose_registers():
    assert len(GPR64) == 16
    assert len({reg.number for reg in GPR64}) == 16
    assert len({reg.name for reg in GPR64}) == 16


def test_encoding_numbers_follow_hardware_order():
    assert RAX.number == 0
    assert RSP.number == 4
    assert RBP.number == 5
    assert RDI.number == 7
    assert R8.number == 8


def test_dwarf_numbers_follow_sysv_mapping():
    # The DWARF numbering differs from the hardware encoding (rdx=1, rcx=2...).
    assert register_by_dwarf_number(7) is RSP
    assert register_by_dwarf_number(6) is RBP
    assert register_by_dwarf_number(5) is RDI
    assert register_by_dwarf_number(0) is RAX


def test_lookup_by_name_accepts_32bit_aliases():
    assert register_by_name("rax") is RAX
    assert register_by_name("eax") is RAX
    assert register_by_name("r8d") is R8
    assert register_by_name("RDI") is RDI


def test_lookup_by_name_rejects_unknown():
    with pytest.raises(KeyError):
        register_by_name("xmm0")


def test_lookup_by_number_rejects_out_of_range():
    with pytest.raises(KeyError):
        register_by_number(16)


def test_rex_requirement():
    assert not RAX.needs_rex
    assert not RDI.needs_rex
    assert R8.needs_rex
    assert R12.needs_rex
    assert R12.low_bits == R12.number - 8


def test_argument_registers_are_sysv_order():
    assert [r.name for r in ARGUMENT_REGISTERS] == ["rdi", "rsi", "rdx", "rcx", "r8", "r9"]


def test_callee_and_caller_saved_partition():
    callee = set(CALLEE_SAVED_REGISTERS)
    caller = set(CALLER_SAVED_REGISTERS)
    assert not callee & caller
    assert RSP not in callee | caller


def test_name32_forms():
    assert RAX.name32() == "eax"
    assert R8.name32() == "r8d"
