"""Program and function plans — the synthetic compiler's input IR.

A :class:`ProgramPlan` is the "source program": a list of
:class:`FunctionPlan` records describing each function's shape (frame style,
callees, tail calls, cold split, jump table, reachability) plus program-wide
options (stripping, data-in-text blobs).  The planner
(:mod:`repro.synth.workloads`) produces plans from a build profile and a
seed; the compiler (:mod:`repro.synth.compiler`) lowers them to ELF binaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.synth.profiles import BuildProfile


@dataclass
class FunctionPlan:
    """Shape of one function to generate."""

    name: str
    #: "normal" | "asm" | "noreturn" | "thunk" | "terminate" | "entry"
    kind: str = "normal"
    #: "rsp" (frame-pointer omitted) or "rbp" (frame pointer kept)
    frame: str = "rsp"
    arg_count: int = 2
    frame_size: int = 0
    saved_registers: int = 0
    #: names of functions called directly from the hot part
    callees: list[str] = field(default_factory=list)
    #: a callee invoked as the final, non-returning call (no fallthrough)
    noreturn_callee: str | None = None
    #: name of the function tail-called at the end (None for a normal return)
    tail_call_to: str | None = None
    #: number of jump-table cases (0 = no jump table)
    jump_table_cases: int = 0
    #: whether the function has a non-contiguous cold part
    cold_split: bool = False
    #: functions called from the cold part
    cold_callees: list[str] = field(default_factory=list)
    has_fde: bool = True
    has_symbol: bool = True
    #: symbol type emitted for this function: "func" or "notype" (the paper's
    #: assembly functions whose symbols have incomplete types)
    symbol_type: str = "func"
    #: how the function is reached: "call" | "indirect" | "tailcall" |
    #: "entry" | "unreachable"
    reachable_via: str = "call"
    #: address-taken style for indirect targets: "table" | "immediate" | None
    address_taken_via: str | None = None
    is_noreturn: bool = False
    #: deliberately read a non-argument register at entry (hand-written asm)
    violates_callconv: bool = False
    #: shift the FDE's PC begin by this many bytes (hand-written CFI error)
    bad_fde_offset: int = 0
    #: number of filler statements in the body
    body_statements: int = 6
    emits_endbr: bool = False
    alignment: int = 16
    #: data symbols holding function pointers this function calls through
    #: (lowered to ``call qword [rip + slot]``)
    indirect_call_slots: list[str] = field(default_factory=list)
    #: functions whose addresses this function materialises as 32-bit
    #: immediates (address-taken functions referenced from code constants)
    address_refs: list[str] = field(default_factory=list)
    #: bytes of NOP padding emitted at the function entry, before the
    #: prologue (``-fpatchable-function-entry`` style; covered by the FDE)
    entry_padding: int = 0
    #: extra symbol names folded onto this function's body (identical-code
    #: folding: several source functions sharing one implementation)
    icf_aliases: list[str] = field(default_factory=list)


@dataclass
class ProgramPlan:
    """A whole program to compile."""

    name: str
    profile: BuildProfile
    functions: list[FunctionPlan] = field(default_factory=list)
    #: raw blobs to embed between functions in .text (jump-table remnants,
    #: hand-coded machine code, string literals placed in the text segment)
    data_in_text: list[bytes] = field(default_factory=list)
    #: writable data slots holding function pointers: slot symbol -> target
    data_pointers: dict[str, str] = field(default_factory=dict)
    #: whether the symbol table is stripped from the output
    stripped: bool = False
    #: whether an .eh_frame section is emitted at all
    emit_eh_frame: bool = True
    #: base virtual address of the .text section
    text_address: int = 0x401000
    #: emit a position-independent executable (``ET_DYN``, low load address)
    pie: bool = False
    #: external function names given lazy-binding PLT stubs (PIE scenario);
    #: callers reference them as ``<name>@plt``
    plt_stubs: list[str] = field(default_factory=list)
    #: the binary scenario this plan models (see repro.synth.corpus.SCENARIOS)
    scenario: str = "vanilla"

    def function(self, name: str) -> FunctionPlan:
        for plan in self.functions:
            if plan.name == name:
                return plan
        raise KeyError(name)

    @property
    def function_names(self) -> list[str]:
        return [plan.name for plan in self.functions]
