"""x86-64 instruction decoder.

The decoder understands the instruction subset produced by
:class:`repro.x86.assembler.Assembler` plus the most common encodings found in
compiler output, and fails loudly (:class:`DecodeError`) on anything else.
That failure mode is load-bearing: the function-pointer validation of the
FETCH pipeline (§IV-E of the paper) treats "invalid opcode" as evidence that a
candidate pointer is not a function start.
"""

from __future__ import annotations

from collections.abc import Iterator, MutableMapping

from repro.x86.instruction import CONDITION_CODES, Instruction
from repro.x86.operands import Imm, Mem
from repro.x86.registers import Register, register_by_number

_MAX_INSTRUCTION_LENGTH = 15

#: Cache type accepted by :func:`decode_instruction` / :func:`decode_range`:
#: address -> decoded instruction, or ``None`` for a remembered decode failure.
DecodeCacheMap = MutableMapping[int, "Instruction | None"]


class _DecodeStats:
    """Process-wide decode-work counter (see :data:`DECODE_STATS`)."""

    __slots__ = ("raw_decodes",)

    def __init__(self) -> None:
        self.raw_decodes = 0


#: Counts every raw (non-memoized) instruction decode performed in this
#: process.  Deterministic, unlike wall-clock time, which makes it the
#: benchmark-grade measure of how much decode work a cache actually saved.
#: The increment is unsynchronized; readings taken around multi-threaded
#: (``jobs > 1``) regions are approximate — compare counts over serial
#: passes, as the benchmarks do.
DECODE_STATS = _DecodeStats()

_GROUP1_MNEMONICS = {0: "add", 1: "or", 2: "adc", 3: "sbb", 4: "and", 5: "sub", 6: "xor", 7: "cmp"}
_SHIFT_MNEMONICS = {0: "rol", 1: "ror", 2: "rcl", 3: "rcr", 4: "shl", 5: "shr", 7: "sar"}


class DecodeError(ValueError):
    """Raised when bytes cannot be decoded as a supported instruction."""

    def __init__(self, message: str, address: int = 0):
        super().__init__(f"{message} at {address:#x}")
        self.address = address


class _Cursor:
    """A byte cursor over the code buffer with bounds checking."""

    def __init__(self, code: bytes, offset: int, address: int):
        self.code = code
        self.start = offset
        self.pos = offset
        self.address = address

    def u8(self) -> int:
        if self.pos >= len(self.code):
            raise DecodeError("truncated instruction", self.address)
        value = self.code[self.pos]
        self.pos += 1
        return value

    def peek(self) -> int | None:
        if self.pos >= len(self.code):
            return None
        return self.code[self.pos]

    def i8(self) -> int:
        value = self.u8()
        return value - 256 if value >= 128 else value

    def u16(self) -> int:
        return self.u8() | (self.u8() << 8)

    def i32(self) -> int:
        value = self.u8() | (self.u8() << 8) | (self.u8() << 16) | (self.u8() << 24)
        return value - (1 << 32) if value >= (1 << 31) else value

    def i64(self) -> int:
        low = self.i32() & 0xFFFFFFFF
        high = self.i32()
        return (high << 32) | low

    def consumed(self) -> int:
        return self.pos - self.start

    def data(self) -> bytes:
        return self.code[self.start : self.pos]


def _parse_modrm(cur: _Cursor, rex_r: int, rex_x: int, rex_b: int) -> tuple[int, Register | Mem]:
    """Parse a ModRM byte (and SIB/displacement) into (reg_field, rm_operand)."""
    modrm = cur.u8()
    mod = modrm >> 6
    reg = ((modrm >> 3) & 0b111) | (rex_r << 3)
    rm = modrm & 0b111

    if mod == 0b11:
        return reg, register_by_number(rm | (rex_b << 3))

    if rm == 0b101 and mod == 0b00:
        disp = cur.i32()
        return reg, Mem(rip_relative=True, disp=disp)

    base: Register | None
    index: Register | None = None
    scale = 1

    if rm == 0b100:
        sib = cur.u8()
        scale = 1 << (sib >> 6)
        index_bits = ((sib >> 3) & 0b111) | (rex_x << 3)
        base_bits = (sib & 0b111) | (rex_b << 3)
        index = None if index_bits == 0b100 else register_by_number(index_bits)
        if (sib & 0b111) == 0b101 and mod == 0b00:
            base = None
            disp = cur.i32()
            return reg, Mem(base=base, index=index, scale=scale, disp=disp)
        base = register_by_number(base_bits)
    else:
        base = register_by_number(rm | (rex_b << 3))

    if mod == 0b00:
        disp = 0
    elif mod == 0b01:
        disp = cur.i8()
    else:
        disp = cur.i32()
    return reg, Mem(base=base, index=index, scale=scale, disp=disp)


def decode_instruction(
    code: bytes,
    offset: int = 0,
    address: int = 0,
    cache: DecodeCacheMap | None = None,
) -> Instruction:
    """Decode a single instruction starting at ``code[offset]``.

    ``address`` is the virtual address of the instruction and is used to
    compute absolute targets of relative branches.

    ``cache`` memoizes decodes by virtual address: decoding the same address
    twice (from the same image, which every caller guarantees) returns the
    stored :class:`Instruction`, and a stored ``None`` replays the original
    :class:`DecodeError`.  A shared cache — typically owned by a
    :class:`repro.core.context.AnalysisContext` — is what lets many detectors
    run over one binary without re-decoding every byte.

    Raises:
        DecodeError: for unsupported opcodes or truncated input.
    """
    if cache is not None:
        try:
            hit = cache[address]
        except KeyError:
            pass
        else:
            if hit is None:
                raise DecodeError("undecodable bytes (cached)", address)
            return hit
        try:
            insn = _decode_instruction_uncached(code, offset, address)
        except DecodeError:
            cache[address] = None
            raise
        cache[address] = insn
        return insn
    return _decode_instruction_uncached(code, offset, address)


def _decode_instruction_uncached(code: bytes, offset: int, address: int) -> Instruction:
    DECODE_STATS.raw_decodes += 1
    cur = _Cursor(code, offset, address)

    prefix_66 = False
    prefix_f3 = False
    rex = 0
    while True:
        byte = cur.peek()
        if byte is None:
            raise DecodeError("empty input", address)
        if byte == 0x66:
            prefix_66 = True
            cur.u8()
        elif byte in (0xF2, 0xF3):
            prefix_f3 = byte == 0xF3
            cur.u8()
        elif 0x40 <= byte <= 0x4F:
            rex = cur.u8()
            break
        else:
            break
        if cur.consumed() > 4:
            raise DecodeError("too many prefixes", address)

    rex_w = (rex >> 3) & 1
    rex_r = (rex >> 2) & 1
    rex_x = (rex >> 1) & 1
    rex_b = rex & 1
    osize = 8 if rex_w else 4

    opcode = cur.u8()
    instruction = _decode_opcode(
        cur, opcode, rex_w, rex_r, rex_x, rex_b, osize, prefix_f3, prefix_66, address
    )
    if cur.consumed() > _MAX_INSTRUCTION_LENGTH:
        raise DecodeError("instruction exceeds 15 bytes", address)
    return instruction


def _make(cur: _Cursor, mnemonic: str, operands: tuple = (), operand_size: int = 8) -> Instruction:
    return Instruction(
        mnemonic=mnemonic,
        operands=operands,
        address=cur.address,
        data=cur.data(),
        operand_size=operand_size,
    )


def _decode_opcode(
    cur: _Cursor,
    opcode: int,
    rex_w: int,
    rex_r: int,
    rex_x: int,
    rex_b: int,
    osize: int,
    prefix_f3: bool,
    prefix_66: bool,
    address: int,
) -> Instruction:
    parse = lambda: _parse_modrm(cur, rex_r, rex_x, rex_b)  # noqa: E731

    # -- stack push/pop ------------------------------------------------
    if 0x50 <= opcode <= 0x57:
        reg = register_by_number((opcode - 0x50) | (rex_b << 3))
        return _make(cur, "push", (reg,))
    if 0x58 <= opcode <= 0x5F:
        reg = register_by_number((opcode - 0x58) | (rex_b << 3))
        return _make(cur, "pop", (reg,))
    if opcode == 0x68:
        return _make(cur, "push", (Imm(cur.i32(), 4),))
    if opcode == 0x6A:
        return _make(cur, "push", (Imm(cur.i8(), 1),))

    # -- ALU r/m, r and r, r/m ------------------------------------------
    alu_store = {0x01: "add", 0x09: "or", 0x21: "and", 0x29: "sub", 0x31: "xor", 0x39: "cmp", 0x85: "test", 0x89: "mov"}
    if opcode in alu_store:
        reg_field, rm = parse()
        src = register_by_number(reg_field)
        return _make(cur, alu_store[opcode], (rm, src), osize)
    alu_load = {0x03: "add", 0x2B: "sub", 0x33: "xor", 0x3B: "cmp", 0x8B: "mov"}
    if opcode in alu_load:
        reg_field, rm = parse()
        dst = register_by_number(reg_field)
        return _make(cur, alu_load[opcode], (dst, rm), osize)

    if opcode == 0x8D:
        reg_field, rm = parse()
        if isinstance(rm, Register):
            raise DecodeError("lea with register operand", address)
        return _make(cur, "lea", (register_by_number(reg_field), rm), osize)

    if opcode == 0x63:
        reg_field, rm = parse()
        return _make(cur, "movsxd", (register_by_number(reg_field), rm), osize)

    # -- group 1: add/or/../cmp r/m, imm --------------------------------
    if opcode in (0x81, 0x83):
        reg_field, rm = parse()
        ext = reg_field & 0b111
        imm = Imm(cur.i8(), 1) if opcode == 0x83 else Imm(cur.i32(), 4)
        return _make(cur, _GROUP1_MNEMONICS[ext], (rm, imm), osize)

    # -- mov immediate ---------------------------------------------------
    if 0xB8 <= opcode <= 0xBF:
        reg = register_by_number((opcode - 0xB8) | (rex_b << 3))
        if rex_w:
            return _make(cur, "mov", (reg, Imm(cur.i64(), 8)), 8)
        return _make(cur, "mov", (reg, Imm(cur.i32(), 4)), 4)
    if opcode == 0xC7:
        reg_field, rm = parse()
        if (reg_field & 0b111) != 0:
            raise DecodeError("unsupported C7 extension", address)
        return _make(cur, "mov", (rm, Imm(cur.i32(), 4)), osize)
    if opcode == 0xC6:
        reg_field, rm = parse()
        if (reg_field & 0b111) != 0:
            raise DecodeError("unsupported C6 extension", address)
        return _make(cur, "mov", (rm, Imm(cur.i8(), 1)), 1)

    # -- shifts ----------------------------------------------------------
    if opcode == 0xC1:
        reg_field, rm = parse()
        ext = reg_field & 0b111
        mnemonic = _SHIFT_MNEMONICS.get(ext)
        if mnemonic is None:
            raise DecodeError("unsupported shift extension", address)
        return _make(cur, mnemonic, (rm, Imm(cur.i8(), 1)), osize)

    # -- control transfer ------------------------------------------------
    if opcode == 0xE8:
        rel = cur.i32()
        return _make(cur, "call", (Imm(address + cur.consumed() + rel, 8),))
    if opcode == 0xE9:
        rel = cur.i32()
        return _make(cur, "jmp", (Imm(address + cur.consumed() + rel, 8),))
    if opcode == 0xEB:
        rel = cur.i8()
        return _make(cur, "jmp", (Imm(address + cur.consumed() + rel, 8),))
    if 0x70 <= opcode <= 0x7F:
        rel = cur.i8()
        mnemonic = CONDITION_CODES[opcode - 0x70]
        return _make(cur, mnemonic, (Imm(address + cur.consumed() + rel, 8),))
    if opcode == 0xC3:
        return _make(cur, "ret")
    if opcode == 0xC2:
        return _make(cur, "ret", (Imm(cur.u16(), 2),))
    if opcode == 0xFF:
        reg_field, rm = parse()
        ext = reg_field & 0b111
        if ext == 0:
            return _make(cur, "inc", (rm,), osize)
        if ext == 1:
            return _make(cur, "dec", (rm,), osize)
        if ext == 2:
            return _make(cur, "call", (rm,))
        if ext == 4:
            return _make(cur, "jmp", (rm,))
        if ext == 6:
            return _make(cur, "push", (rm,))
        raise DecodeError("unsupported FF extension", address)

    # -- misc single byte --------------------------------------------------
    if opcode == 0x90:
        return _make(cur, "nop")
    if opcode == 0xC9:
        return _make(cur, "leave")
    if opcode == 0xCC:
        return _make(cur, "int3")
    if opcode == 0xF4:
        return _make(cur, "hlt")

    # -- two byte opcodes ---------------------------------------------------
    if opcode == 0x0F:
        return _decode_two_byte(cur, rex_r, rex_x, rex_b, osize, prefix_f3, address)

    raise DecodeError(f"unsupported opcode {opcode:#04x}", address)


def _decode_two_byte(
    cur: _Cursor,
    rex_r: int,
    rex_x: int,
    rex_b: int,
    osize: int,
    prefix_f3: bool,
    address: int,
) -> Instruction:
    parse = lambda: _parse_modrm(cur, rex_r, rex_x, rex_b)  # noqa: E731
    opcode2 = cur.u8()

    if opcode2 == 0x05:
        return _make(cur, "syscall")
    if opcode2 == 0x0B:
        return _make(cur, "ud2")
    if opcode2 == 0x1E and prefix_f3:
        modrm = cur.u8()
        if modrm == 0xFA:
            return _make(cur, "endbr64")
        if modrm == 0xFB:
            return _make(cur, "endbr32")
        raise DecodeError("unsupported F3 0F 1E form", address)
    if opcode2 == 0x1F:
        parse()
        return _make(cur, "nop")
    if 0x80 <= opcode2 <= 0x8F:
        rel = cur.i32()
        mnemonic = CONDITION_CODES[opcode2 - 0x80]
        return _make(cur, mnemonic, (Imm(address + cur.consumed() + rel, 8),))
    if opcode2 == 0xAF:
        reg_field, rm = parse()
        return _make(cur, "imul", (register_by_number(reg_field), rm), osize)
    if opcode2 in (0xB6, 0xB7):
        reg_field, rm = parse()
        return _make(cur, "movzx", (register_by_number(reg_field), rm), osize)
    if opcode2 in (0xBE, 0xBF):
        reg_field, rm = parse()
        return _make(cur, "movsx", (register_by_number(reg_field), rm), osize)

    raise DecodeError(f"unsupported opcode 0f {opcode2:#04x}", address)


def decode_range(
    code: bytes,
    address: int,
    start: int = 0,
    end: int | None = None,
    *,
    stop_on_error: bool = True,
    cache: DecodeCacheMap | None = None,
) -> Iterator[Instruction]:
    """Linearly decode instructions from ``code[start:end]``.

    ``address`` is the virtual address of ``code[0]``.  With
    ``stop_on_error=False`` an undecodable byte is emitted as a one-byte
    ``(bad)`` instruction and decoding continues at the next byte, which is
    the behaviour linear-sweep style baselines rely on.  ``cache`` memoizes
    per-address decodes exactly as in :func:`decode_instruction`; the
    synthetic ``(bad)`` placeholders are never cached.
    """
    limit = len(code) if end is None else min(end, len(code))
    pos = start
    while pos < limit:
        try:
            insn = decode_instruction(code, pos, address + pos, cache)
        except DecodeError:
            if stop_on_error:
                return
            insn = Instruction(
                mnemonic="(bad)", operands=(), address=address + pos, data=code[pos : pos + 1]
            )
        if insn.end - address > limit:
            # Instruction spills past the requested window.
            if stop_on_error:
                return
            insn = Instruction(
                mnemonic="(bad)", operands=(), address=address + pos, data=code[pos : pos + 1]
            )
        yield insn
        pos = insn.end - address
