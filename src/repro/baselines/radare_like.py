"""RADARE2-style detector model.

radare2's ``aaa`` analysis recursively disassembles from the entry point and
then looks for function preludes in unexplored code.  Its prelude matching is
stricter than BAP's (fewer false positives) but it does not chase function
pointers, so address-taken-only functions are missed (§VI, Table III).
"""

from __future__ import annotations

from repro.baselines.base import BaselineTool
from repro.core.registry import register_detector
from repro.core.context import AnalysisContext, context_for
from repro.core.results import DetectionResult
from repro.elf.image import BinaryImage


@register_detector(
    "radare2",
    order=30,
    comparison=True,
    cet_aware=True,
    description="entry-point recursion plus aligned prelude matching",
)
class Radare2Like(BaselineTool):

    def detect(
        self, image: BinaryImage, context: AnalysisContext | None = None
    ) -> DetectionResult:
        context = context_for(image, context)
        result = DetectionResult(binary_name=image.name)
        seeds = {image.entry_point} if image.entry_point else set()
        seeds = {s for s in seeds if image.is_executable_address(s)}
        result.record_stage("seeds", seeds)

        disassembler, disassembly, starts = self._recursive(image, seeds, context)
        result.disassembly = disassembly
        result.record_stage("recursion", starts - result.function_starts)

        gaps = self._gaps(image, disassembly)
        matches = set()
        for address in self._prologue_matches(image, gaps, context):
            if address in result.function_starts:
                continue
            # radare2 requires the prelude to sit on the function alignment.
            if address % 4 == 0:
                matches.add(address)
        grown = self._grow_from_matches(image, disassembler, disassembly, matches)
        result.record_stage("prelude", grown - result.function_starts)
        return result
