"""Text renderers for the paper's tables and figures.

Each renderer takes the output of the corresponding runner in
:mod:`repro.eval.runner` and returns a printable string whose rows mirror the
paper's presentation, so benchmark output and EXPERIMENTS.md can be compared
against the original side by side.
"""

from __future__ import annotations

from repro.eval.runner import (
    Algorithm1Study,
    FdeCoverageStudy,
    FdeErrorStudy,
    SelfBuiltRow,
    StackHeightCell,
    StrategyOutcome,
    ToolComparisonCell,
    WildRow,
)

#: Tool column order used by Table III / Table V (matches the paper).
TOOL_ORDER = ("dyninst", "bap", "radare2", "nucleus", "ida", "ninja", "ghidra", "angr", "fetch")


def render_strategy_outcomes(title: str, outcomes: list[StrategyOutcome]) -> str:
    """Render a Figure 5 ladder as a text table."""
    lines = [title, "-" * len(title)]
    lines.append(f"{'strategy':<22} {'full coverage':>14} {'full accuracy':>14} {'binaries':>9}")
    for outcome in outcomes:
        lines.append(
            f"{outcome.label:<22} {outcome.full_coverage:>14d} "
            f"{outcome.full_accuracy:>14d} {outcome.metrics.binary_count:>9d}"
        )
    return "\n".join(lines)


def render_figure5(
    figure5a: list[StrategyOutcome],
    figure5b: list[StrategyOutcome],
    figure5c: list[StrategyOutcome],
) -> str:
    """Render all three Figure 5 panels."""
    return "\n\n".join(
        [
            render_strategy_outcomes("Figure 5a — GHIDRA strategies", figure5a),
            render_strategy_outcomes("Figure 5b — ANGR strategies", figure5b),
            render_strategy_outcomes("Figure 5c — optimal strategies (FETCH)", figure5c),
        ]
    )


def render_table1(rows: list[WildRow]) -> str:
    """Render the wild-binaries table (Table I)."""
    lines = ["Table I — wild binaries", "-" * 60]
    lines.append(f"{'software':<28} {'open':>5} {'EHF':>4} {'Sym':>4} {'FDE%':>7}  lang")
    for row in rows:
        fde = f"{row.fde_symbol_percent:6.2f}" if row.fde_symbol_percent is not None else "     -"
        lines.append(
            f"{row.software:<28} {'yes' if row.open_source else 'no':>5} "
            f"{'yes' if row.has_eh_frame else 'no':>4} "
            f"{'yes' if row.has_symbols else 'no':>4} {fde:>7}  {row.language}"
        )
    with_symbols = [r for r in rows if r.fde_symbol_percent is not None]
    if with_symbols:
        average = sum(r.fde_symbol_percent for r in with_symbols) / len(with_symbols)
        lines.append(f"{'Avg. (with symbols)':<28} {'':>5} {'':>4} {'':>4} {average:7.2f}")
    return "\n".join(lines)


def render_table2(rows: list[SelfBuiltRow]) -> str:
    """Render the self-built-programs table (Table II)."""
    lines = ["Table II — self-built programs", "-" * 60]
    lines.append(f"{'project':<24} {'bins':>5} {'EHF':>4} {'FDE%':>8}")
    for row in rows:
        lines.append(
            f"{row.project:<24} {row.binaries:>5d} {'yes' if row.has_eh_frame else 'no':>4} "
            f"{row.fde_symbol_percent:8.2f}"
        )
    total_bins = sum(r.binaries for r in rows)
    average = sum(r.fde_symbol_percent for r in rows) / len(rows) if rows else 100.0
    lines.append(f"{'Total / Avg.':<24} {total_bins:>5d} {'':>4} {average:8.2f}")
    return "\n".join(lines)


def render_table3(results: dict[str, dict[str, ToolComparisonCell]]) -> str:
    """Render the tool comparison (Table III): FP / FN per tool per opt level."""
    lines = ["Table III — comparison with existing tools (FP / FN counts)", "-" * 100]
    tools = [t for t in TOOL_ORDER if any(t in row for row in results.values())]
    header = f"{'OPT':<6}" + "".join(f"{tool:>16}" for tool in tools)
    lines.append(header)
    lines.append(f"{'':<6}" + "".join(f"{'FP':>8}{'FN':>8}" for _ in tools))
    for level, row in results.items():
        cells = []
        for tool in tools:
            cell = row.get(tool)
            if cell is None:
                cells.append(f"{'-':>8}{'-':>8}")
            else:
                cells.append(f"{cell.false_positives:>8d}{cell.false_negatives:>8d}")
        lines.append(f"{level:<6}" + "".join(cells))
    return "\n".join(lines)


#: Detector column order of the scenario matrix (ten detectors).
MATRIX_TOOL_ORDER = (
    "dyninst", "bap", "radare2", "nucleus", "ida",
    "ninja", "ghidra", "angr", "byteweight", "fetch",
)


def render_scenario_matrix(cells: dict[str, dict[str, dict[str, float | int]]]) -> str:
    """Render the scenario matrix: FP / FN per detector per binary scenario."""
    lines = ["Scenario matrix — FP / FN per detector per binary scenario", "-" * 110]
    tools = [t for t in MATRIX_TOOL_ORDER if any(t in row for row in cells.values())]
    label_width = max(18, max((len(s) for s in cells), default=0) + 4)
    lines.append(f"{'scenario':<{label_width}}" + "".join(f"{tool:>11}" for tool in tools))
    for scenario, row in cells.items():
        fp_cells, fn_cells = [], []
        for tool in tools:
            summary = row.get(tool)
            if summary is None:
                fp_cells.append(f"{'-':>11}")
                fn_cells.append(f"{'-':>11}")
            else:
                fp_cells.append(f"{summary['false_positives']:>11d}")
                fn_cells.append(f"{summary['false_negatives']:>11d}")
        lines.append(f"{scenario + ' FP':<{label_width}}" + "".join(fp_cells))
        lines.append(f"{scenario + ' FN':<{label_width}}" + "".join(fn_cells))
    return "\n".join(lines)


def render_table4(results: dict[str, dict[str, dict[str, StackHeightCell]]]) -> str:
    """Render the stack-height analysis comparison (Table IV)."""
    lines = ["Table IV — stack-height analyses vs CFI baseline (precision / recall %)", "-" * 78]
    lines.append(
        f"{'OPT':<6}{'angr full':>18}{'angr jump':>18}{'dyninst full':>18}{'dyninst jump':>18}"
    )
    for level, flavors in results.items():
        def cell(flavor: str, scope: str) -> str:
            entry = flavors[flavor][scope]
            return f"{entry.precision:6.2f}/{entry.recall:6.2f}"

        lines.append(
            f"{level:<6}{cell('angr', 'full'):>18}{cell('angr', 'jump'):>18}"
            f"{cell('dyninst', 'full'):>18}{cell('dyninst', 'jump'):>18}"
        )
    return "\n".join(lines)


def render_table5(timings: dict[str, float]) -> str:
    """Render the per-binary analysis time comparison (Table V)."""
    lines = ["Table V — average time to analyse a binary (seconds)", "-" * 60]
    tools = [t for t in TOOL_ORDER if t in timings]
    lines.append("".join(f"{tool:>11}" for tool in tools))
    lines.append("".join(f"{timings[tool]:>11.3f}" for tool in tools))
    return "\n".join(lines)


def render_fde_coverage(study: FdeCoverageStudy) -> str:
    """Render the Q1 study (§IV-B)."""
    lines = [
        "Q1 — coverage of function starts using FDEs alone",
        "-" * 56,
        f"binaries analysed          : {study.binary_count}",
        f"true function starts       : {study.total_functions}",
        f"covered by FDEs            : {study.covered_functions} ({study.coverage_percent:.2f}%)",
        f"binaries with missed starts: {study.binaries_with_misses}",
        f"symbols covered by FDEs    : {study.symbols_covered_by_fdes}/{study.symbol_count}",
        f"missed, by function kind   : {study.missed_by_kind}",
    ]
    return "\n".join(lines)


def render_fde_errors(study: FdeErrorStudy) -> str:
    """Render the §V-A error study."""
    lines = [
        "§V-A — false function starts introduced by FDEs",
        "-" * 56,
        f"binaries analysed              : {study.binary_count}",
        f"FDE-introduced false positives : {study.total_false_positives}",
        f"binaries affected              : {study.binaries_with_false_positives}",
        f"from non-contiguous functions  : {study.from_non_contiguous_functions}",
        f"from hand-written FDEs         : {study.from_handwritten_fdes}",
        f"ROP gadgets at false starts    : {study.rop_gadgets_at_false_starts}",
        f"worst binary                   : {study.worst_binary} "
        f"({study.worst_binary_false_positives} false starts)",
    ]
    return "\n".join(lines)


def render_algorithm1(study: Algorithm1Study) -> str:
    """Render the §V-C Algorithm 1 evaluation."""
    lines = [
        "§V-C — Algorithm 1 (tail-call detection and merging)",
        "-" * 56,
        f"false positives before         : {study.false_positives_before}",
        f"false positives after          : {study.false_positives_after}"
        f"  ({study.false_positive_reduction_percent:.1f}% removed)",
        f"full-accuracy binaries         : {study.full_accuracy_before} -> {study.full_accuracy_after}",
        f"full-coverage binaries         : {study.full_coverage_before} -> {study.full_coverage_after}",
        f"new false negatives            : {study.new_false_negatives} "
        f"({study.new_false_negatives_tailcall_only} tail-call-only, harmless)",
    ]
    return "\n".join(lines)
