"""Detection metrics.

The paper reports two granularities: per-binary (is a binary fully covered /
fully accurate?) and corpus totals (how many false positives / negatives in
total).  ``BinaryMetrics`` captures one binary, ``CorpusMetrics`` aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.synth.groundtruth import GroundTruth


@dataclass
class BinaryMetrics:
    """Detection quality for one binary."""

    binary_name: str
    true_count: int
    detected_count: int
    false_positives: set[int] = field(default_factory=set)
    false_negatives: set[int] = field(default_factory=set)
    #: false positives that are cold-part starts of non-contiguous functions
    cold_part_false_positives: set[int] = field(default_factory=set)

    @property
    def fp_count(self) -> int:
        return len(self.false_positives)

    @property
    def fn_count(self) -> int:
        return len(self.false_negatives)

    @property
    def true_positive_count(self) -> int:
        return self.true_count - self.fn_count

    @property
    def full_coverage(self) -> bool:
        """Every true function start was detected."""
        return self.fn_count == 0

    @property
    def full_accuracy(self) -> bool:
        """No false function start was reported."""
        return self.fp_count == 0

    @property
    def precision(self) -> float:
        if self.detected_count == 0:
            return 1.0
        return self.true_positive_count / self.detected_count

    @property
    def recall(self) -> float:
        if self.true_count == 0:
            return 1.0
        return self.true_positive_count / self.true_count


def compute_metrics(
    ground_truth: GroundTruth, detected: set[int], *, binary_name: str | None = None
) -> BinaryMetrics:
    """Compare detected starts against the ground truth of one binary."""
    true_starts = ground_truth.function_starts
    cold_starts = ground_truth.cold_part_starts
    false_positives = detected - true_starts
    false_negatives = true_starts - detected
    return BinaryMetrics(
        binary_name=binary_name or ground_truth.name,
        true_count=len(true_starts),
        detected_count=len(detected),
        false_positives=false_positives,
        false_negatives=false_negatives,
        cold_part_false_positives=false_positives & cold_starts,
    )


@dataclass
class CorpusMetrics:
    """Aggregate metrics over a corpus of binaries."""

    per_binary: list[BinaryMetrics] = field(default_factory=list)

    def add(self, metrics: BinaryMetrics) -> None:
        self.per_binary.append(metrics)

    @property
    def binary_count(self) -> int:
        return len(self.per_binary)

    @property
    def total_functions(self) -> int:
        return sum(m.true_count for m in self.per_binary)

    @property
    def total_detected(self) -> int:
        return sum(m.detected_count for m in self.per_binary)

    @property
    def total_false_positives(self) -> int:
        return sum(m.fp_count for m in self.per_binary)

    @property
    def total_false_negatives(self) -> int:
        return sum(m.fn_count for m in self.per_binary)

    @property
    def total_cold_part_false_positives(self) -> int:
        return sum(len(m.cold_part_false_positives) for m in self.per_binary)

    @property
    def binaries_with_full_coverage(self) -> int:
        return sum(1 for m in self.per_binary if m.full_coverage)

    @property
    def binaries_with_full_accuracy(self) -> int:
        return sum(1 for m in self.per_binary if m.full_accuracy)

    @property
    def binaries_with_false_positives(self) -> int:
        return sum(1 for m in self.per_binary if not m.full_accuracy)

    @property
    def coverage_ratio(self) -> float:
        total = self.total_functions
        if total == 0:
            return 1.0
        return (total - self.total_false_negatives) / total

    def summary(self) -> dict[str, float | int]:
        """A dictionary summary convenient for printing and testing."""
        return {
            "binaries": self.binary_count,
            "functions": self.total_functions,
            "false_positives": self.total_false_positives,
            "false_negatives": self.total_false_negatives,
            "full_coverage_binaries": self.binaries_with_full_coverage,
            "full_accuracy_binaries": self.binaries_with_full_accuracy,
            "coverage": round(100.0 * self.coverage_ratio, 3),
        }
