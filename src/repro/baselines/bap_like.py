"""BAP-style detector model.

BAP's ByteWeight-based function identification speculatively matches byte
signatures over the *whole* text section, not only over gaps, and then runs
recursive disassembly from every match.  That buys coverage of unreferenced
code at the cost of by far the largest false-positive counts in the paper's
comparison (Table III).
"""

from __future__ import annotations

from repro.analysis.linearscan import linear_scan_gaps
from repro.analysis.prologue import select_prologue_patterns
from repro.baselines.base import BaselineTool
from repro.core.registry import register_detector
from repro.core.context import AnalysisContext, context_for
from repro.core.results import DetectionResult
from repro.elf.image import BinaryImage


@register_detector(
    "bap",
    order=20,
    comparison=True,
    cet_aware=True,
    description="whole-text byte signatures plus speculative linear sweep",
)
class BapLike(BaselineTool):

    def detect(
        self, image: BinaryImage, context: AnalysisContext | None = None
    ) -> DetectionResult:
        context = context_for(image, context)
        result = DetectionResult(binary_name=image.name)
        seeds = {image.entry_point} if image.entry_point else set()
        result.record_stage("seeds", {s for s in seeds if image.is_executable_address(s)})

        disassembler, disassembly, starts = self._recursive(
            image, result.function_starts, context
        )
        result.disassembly = disassembly
        result.record_stage("recursion", starts - result.function_starts)

        # Signature matching over the whole text section (not just gaps).
        matches: set[int] = set()
        patterns = select_prologue_patterns(image)
        for positions in context.text_pattern_matches(patterns).values():
            matches.update(
                address for address in positions if address not in result.function_starts
            )
        grown = self._grow_from_matches(image, disassembler, disassembly, matches)
        result.record_stage("signatures", grown - result.function_starts)

        # Speculative disassembly of what is still unexplored.
        scanned = linear_scan_gaps(
            image,
            self._gaps(image, disassembly),
            context=context,
            require_endbr=image.uses_cet,
        )
        result.record_stage("speculative", scanned - result.function_starts)
        return result
