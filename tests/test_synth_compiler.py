"""Tests for the synthetic compiler: layout, relocation, eh_frame, ground truth."""

import pytest

from repro.dwarf.cfa_table import build_cfa_table
from repro.synth import compile_program, plan_program
from repro.synth.plan import FunctionPlan, ProgramPlan
from repro.synth.workloads import WorkloadTraits
from repro.x86.disassembler import decode_range


def test_ground_truth_matches_symbol_table(rich_binary):
    truth = rich_binary.ground_truth
    symbols = {s.name: s.address for s in rich_binary.image.symbols}
    for info in truth.functions:
        if info.has_symbol:
            assert symbols.get(info.name) == info.address


def test_every_declared_fde_exists_and_matches_part_bounds(rich_binary):
    image = rich_binary.image
    fde_starts = {f.pc_begin for f in image.fdes}
    for info in rich_binary.ground_truth.functions:
        if info.has_fde and not info.bad_fde_offset:
            assert info.address in fde_starts, info.name
        if not info.has_fde:
            assert info.address not in fde_starts, info.name


def test_cold_parts_have_their_own_fdes(rich_binary):
    image = rich_binary.image
    truth = rich_binary.ground_truth
    assert truth.cold_part_starts, "fixture should contain cold splits"
    fde_starts = {f.pc_begin for f in image.fdes}
    assert truth.cold_part_starts <= fde_starts


def test_fde_ranges_do_not_overlap(rich_binary):
    ranges = sorted((f.pc_begin, f.pc_end) for f in rich_binary.image.fdes)
    for (start_a, end_a), (start_b, _) in zip(ranges, ranges[1:]):
        assert end_a <= start_b


def test_every_function_body_decodes_cleanly(plain_binary):
    image = plain_binary.image
    for info in plain_binary.ground_truth.functions:
        begin = info.address - image.text.address
        insns = list(decode_range(image.text.data, image.text.address, begin, begin + info.size))
        assert sum(i.size for i in insns) == info.size, info.name
        assert all(i.mnemonic != "(bad)" for i in insns)


def test_functions_end_with_terminator_or_tail_jump(plain_binary):
    image = plain_binary.image
    for info in plain_binary.ground_truth.functions:
        begin = info.address - image.text.address
        insns = list(decode_range(image.text.data, image.text.address, begin, begin + info.size))
        last = insns[-1]
        assert last.is_ret or last.is_unconditional_jump or last.is_call or last.mnemonic in (
            "ud2",
            "hlt",
        ), info.name


def test_entry_point_is_start_function(rich_binary):
    truth = rich_binary.ground_truth
    start = truth.by_name("_start")
    assert start is not None
    assert rich_binary.image.entry_point == start.address


def test_text_layout_respects_alignment(rich_binary):
    for info in rich_binary.ground_truth.functions:
        if info.kind in ("normal", "entry", "noreturn") and info.address:
            alignment = rich_binary.plan.function(info.name).alignment
            assert info.address % alignment == 0, info.name


def test_direct_call_targets_resolve_to_planned_callees(plain_binary):
    image = plain_binary.image
    truth = plain_binary.ground_truth
    address_of = {f.name: f.address for f in truth.functions}
    for plan in plain_binary.plan.functions:
        info = truth.by_name(plan.name)
        begin = info.address - image.text.address
        insns = list(decode_range(image.text.data, image.text.address, begin, begin + info.size))
        call_targets = {i.branch_target for i in insns if i.is_call and i.branch_target}
        for callee in plan.callees:
            assert address_of[callee] in call_targets, (plan.name, callee)


def test_jump_table_data_points_into_owning_function(rich_binary):
    image = rich_binary.image
    truth = rich_binary.ground_truth
    tables = [p for p in rich_binary.plan.functions if p.jump_table_cases]
    assert tables, "fixture should contain jump tables"
    rodata = image.section(".rodata")
    for plan in tables:
        info = truth.by_name(plan.name)
        # Every pointer in .rodata that lands inside this function must point
        # within its body (they are its jump-table entries).
        in_function = [
            int.from_bytes(rodata.data[offset : offset + 8], "little")
            for offset in range(0, len(rodata.data) - 7, 8)
            if info.address
            <= int.from_bytes(rodata.data[offset : offset + 8], "little")
            < info.address + info.size
        ]
        assert len(in_function) >= plan.jump_table_cases


def test_clang_profile_uses_int3_padding(clang_binary):
    text = clang_binary.image.text.data
    assert b"\xcc\xcc\xcc\xcc" in text


def test_stripped_plan_produces_no_symbols(stripped_binary):
    assert stripped_binary.image.symbols == []
    assert stripped_binary.image.has_eh_frame


def test_compilation_is_deterministic(gcc_o2_profile):
    traits = WorkloadTraits(mean_functions=30)
    first = compile_program(
        plan_program("determinism", gcc_o2_profile, seed=5, traits=traits)
    )
    second = compile_program(
        plan_program("determinism", gcc_o2_profile, seed=5, traits=traits)
    )
    assert first.elf_bytes == second.elf_bytes
    assert first.ground_truth.function_starts == second.ground_truth.function_starts


def test_different_seeds_produce_different_binaries(gcc_o2_profile):
    traits = WorkloadTraits(mean_functions=30)
    first = compile_program(plan_program("seeded", gcc_o2_profile, seed=1, traits=traits))
    second = compile_program(plan_program("seeded", gcc_o2_profile, seed=2, traits=traits))
    assert first.image.text.data != second.image.text.data


def test_unresolved_relocation_raises(gcc_o2_profile):
    plan = ProgramPlan(name="broken", profile=gcc_o2_profile)
    plan.functions = [FunctionPlan(name="lonely", callees=["missing_function"])]
    with pytest.raises(KeyError):
        compile_program(plan)


def test_bad_fde_offset_is_reflected_in_eh_frame(gcc_o2_profile):
    plan = ProgramPlan(name="badfde", profile=gcc_o2_profile)
    plan.functions = [
        FunctionPlan(name="_start", kind="entry", callees=["victim"], body_statements=2),
        FunctionPlan(name="victim", frame="rbp", bad_fde_offset=2, body_statements=3),
    ]
    binary = compile_program(plan)
    truth = binary.ground_truth.by_name("victim")
    fde_starts = {f.pc_begin for f in binary.image.fdes}
    assert truth.address not in fde_starts
    assert truth.address + 2 in fde_starts


def test_cold_part_cfa_starts_at_parent_stack_depth(rich_binary):
    image = rich_binary.image
    truth = rich_binary.ground_truth
    for info in truth.functions:
        if not info.cold_part_addresses or info.frame != "rsp":
            continue
        for cold in info.cold_part_addresses:
            fde = image.fde_covering(cold)
            assert fde is not None and fde.pc_begin == cold
            table = build_cfa_table(fde)
            height = table.stack_height_at(cold)
            assert height is not None and height > 0
