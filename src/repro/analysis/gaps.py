"""Computation of non-disassembled gaps in executable sections."""

from __future__ import annotations

from repro.analysis.result import DisassemblyResult
from repro.elf.image import BinaryImage


def compute_gaps(image: BinaryImage, result: DisassemblyResult) -> list[tuple[int, int]]:
    """Return ``[start, end)`` ranges of executable bytes not yet disassembled.

    These are the regions existing tools probe with prologue matching and
    linear scanning (§II-B / §IV-D).
    """
    merged = result.covered_ranges()

    gaps: list[tuple[int, int]] = []
    for section in image.executable_sections:
        cursor = section.address
        section_end = section.end_address
        for start, end in merged:
            if end <= cursor or start >= section_end:
                continue
            if start > cursor:
                gaps.append((cursor, min(start, section_end)))
            cursor = max(cursor, end)
        if cursor < section_end:
            gaps.append((cursor, section_end))
    return [gap for gap in gaps if gap[1] > gap[0]]
