"""§V-C — evaluation of Algorithm 1 (tail-call detection and merging)."""

from repro.eval import run_algorithm1_study
from repro.eval.tables import render_algorithm1


def test_sec5c_algorithm1(benchmark, selfbuilt_corpus, report_writer):
    study = benchmark.pedantic(
        run_algorithm1_study, args=(selfbuilt_corpus,), rounds=1, iterations=1
    )
    report_writer("sec5c_algorithm1", render_algorithm1(study))

    # Paper: ~95 % of FDE-introduced false positives removed, full-accuracy
    # binaries rise sharply, and the only new false negatives are tail-call-
    # only functions (equivalent to inlining, hence harmless).
    assert study.false_positive_reduction_percent > 85.0
    assert study.full_accuracy_after > study.full_accuracy_before
    assert study.new_false_negatives == study.new_false_negatives_tailcall_only
    assert study.full_coverage_after >= study.full_coverage_before - max(
        2, study.new_false_negatives
    )
