"""FETCH: function start detection from exception-handling information.

This package implements the paper's contribution:

* :mod:`repro.core.fde_source` — extraction of function-start candidates from
  ``.eh_frame`` FDEs (§III),
* :mod:`repro.core.tailcall` — Algorithm 1: conservative tail-call detection
  and merging of non-contiguous function parts (§V-B),
* :mod:`repro.core.pipeline` — the full FETCH pipeline (§VI): FDE extraction,
  safe recursive disassembly, function-pointer validation, FDE-error fixing,
  with every stage individually switchable so the paper's strategy ladders
  (Figure 5) can be reproduced,
* :mod:`repro.core.context` — the shared per-binary
  :class:`~repro.core.context.AnalysisContext` that memoizes decoding, CFA
  tables and image scans across detector runs.
"""

from repro.core.context import AnalysisContext, ContextStats, DecodeCache
from repro.core.fde_source import extract_fde_starts, fde_symbol_coverage
from repro.core.registry import (
    DetectorInfo,
    create_detector,
    detector_info,
    detector_names,
    detectors,
    register_detector,
)
from repro.core.results import DetectionResult
from repro.core.tailcall import TailCallOutcome, detect_tail_calls_and_merge
from repro.core.pipeline import FetchDetector, FetchOptions

__all__ = [
    "AnalysisContext",
    "ContextStats",
    "DecodeCache",
    "DetectorInfo",
    "create_detector",
    "detector_info",
    "detector_names",
    "detectors",
    "register_detector",
    "extract_fde_starts",
    "fde_symbol_coverage",
    "DetectionResult",
    "TailCallOutcome",
    "detect_tail_calls_and_merge",
    "FetchDetector",
    "FetchOptions",
]
