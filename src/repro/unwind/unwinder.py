"""``.eh_frame``-driven stack unwinding (the paper's T1/T2/T3 tasks).

Given a machine state (typically the state at which the
:class:`~repro.unwind.emulator.Emulator` trapped), the unwinder walks the
call stack the way ``_Unwind_RaiseException`` does:

* **T1** — find the FDE covering the current PC,
* **T2** — evaluate the FDE's CFI rows to compute the CFA and read the return
  address at ``CFA - 8``,
* **T3** — restore the callee-saved registers recorded by ``DW_CFA_offset``
  rules, then pop the frame and repeat with the caller.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dwarf import constants as DC
from repro.dwarf.cfa_table import build_cfa_table
from repro.elf.image import BinaryImage
from repro.unwind.emulator import MachineState
from repro.x86.registers import RSP, register_by_dwarf_number


class UnwindError(Exception):
    """Raised when the stack cannot be unwound from the given state."""


@dataclass
class UnwindFrame:
    """One frame discovered while unwinding."""

    #: program counter inside this frame
    pc: int
    #: start of the function (the FDE's PC Begin) containing ``pc``
    function_start: int
    #: canonical frame address for this frame
    cfa: int
    #: return address stored at ``CFA - 8`` (None for the outermost frame)
    return_address: int | None


class StackUnwinder:
    """Walks a call stack using only exception-handling information."""

    def __init__(self, image: BinaryImage):
        self.image = image
        self._tables = {fde.pc_begin: build_cfa_table(fde) for fde in image.fdes}

    # ------------------------------------------------------------------
    def unwind(self, state: MachineState, *, max_frames: int = 128) -> list[UnwindFrame]:
        """Unwind from ``state`` until no covering FDE is found."""
        frames: list[UnwindFrame] = []
        registers = dict(state.registers)
        pc = state.rip

        for _ in range(max_frames):
            fde = self.image.fde_covering(pc)
            if fde is None:
                break
            table = self._tables[fde.pc_begin]
            row = table.row_at(pc)
            if row is None:
                raise UnwindError(f"no CFI row covers pc {pc:#x}")

            cfa = self._compute_cfa(row, registers, pc)
            return_address = state.read_memory(cfa - 8, 8)
            frames.append(
                UnwindFrame(
                    pc=pc,
                    function_start=fde.pc_begin,
                    cfa=cfa,
                    return_address=return_address or None,
                )
            )

            # T3: restore callee-saved registers from their recorded slots.
            for dwarf_number, offset in row.register_offsets.items():
                if dwarf_number == DC.DWARF_REG_RA:
                    continue
                try:
                    register = register_by_dwarf_number(dwarf_number)
                except KeyError:
                    continue
                registers[register] = state.read_memory(cfa + offset, 8)

            if not return_address:
                break
            # Pop the frame: the caller's stack pointer is the CFA.
            registers[RSP] = cfa
            pc = return_address

        return frames

    # ------------------------------------------------------------------
    def backtrace(self, state: MachineState) -> list[int]:
        """Function start addresses of every frame on the call stack."""
        return [frame.function_start for frame in self.unwind(state)]

    @staticmethod
    def _compute_cfa(row, registers, pc: int) -> int:
        if row.cfa_register is None or row.cfa_offset is None:
            raise UnwindError(f"expression-based CFA at pc {pc:#x} is not supported")
        try:
            register = register_by_dwarf_number(row.cfa_register)
        except KeyError as exc:
            raise UnwindError(f"unsupported CFA register {row.cfa_register}") from exc
        base = registers.get(register, 0)
        return base + row.cfa_offset
