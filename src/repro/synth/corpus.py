"""Corpus builders: the Dataset-1 and Dataset-2 analogues.

``build_selfbuilt_corpus`` mirrors the paper's Dataset 2 (Table II): a set of
projects with distinct traits, each compiled with two compiler profiles at
four optimisation levels.  ``build_wild_corpus`` mirrors Dataset 1 (Table I):
43 software packages, mostly stripped, always carrying ``.eh_frame``.

The corpora are deterministic functions of the seed, so experiments are
reproducible, and scalable via the ``scale`` parameter so tests can run on a
handful of binaries while benchmarks use larger sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.synth.compiler import SyntheticBinary, compile_program
from repro.synth.profiles import (
    CompilerFamily,
    OptLevel,
    WildProfile,
    default_profile,
)
from repro.synth.workloads import SCENARIO_NAMES, WorkloadTraits, plan_program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store import ArtifactStore

#: Version of the synthetic generator pipeline (planner + compiler).  Part of
#: every store corpus key: bump it whenever plan or code generation changes
#: shape, so stale cached corpora are rebuilt instead of reused.
GENERATOR_VERSION = "1"

#: Human-readable descriptions of the scenario matrix rows.
SCENARIO_DESCRIPTIONS: dict[str, str] = {
    "vanilla": "plain ET_EXEC executable with symbols and .eh_frame",
    "pie": "position-independent executable (ET_DYN) with lazy-binding PLT stubs",
    "cet": "CET/IBT instrumented: endbr64 landing pad on every function entry",
    "icf": "identical-code folding: multiple symbols aliasing one body",
    "padded": "-fpatchable-function-entry style NOP-padded function entries",
    "stripped-noeh": "stripped binary with the .eh_frame section removed",
}


@dataclass(frozen=True)
class ProjectSpec:
    """One project of the self-built dataset (a Table II row analogue)."""

    name: str
    category: str
    language: str
    programs: int
    traits: WorkloadTraits


#: Scaled-down analogue of the paper's Table II project list.  Projects that
#: carry hand-written assembly in reality (OpenSSL, glibc, Nginx) are the ones
#: flagged ``has_assembly`` so that FDE coverage gaps concentrate there, as in
#: the paper.
SELFBUILT_PROJECTS: tuple[ProjectSpec, ...] = (
    ProjectSpec("coreutils-like", "Utilities", "C", 4,
                WorkloadTraits(cold_split_multiplier=0.3, mean_functions=60)),
    ProjectSpec("findutils-like", "Utilities", "C", 1,
                WorkloadTraits(cold_split_multiplier=0.3, mean_functions=70)),
    ProjectSpec("binutils-like", "Utilities", "C/C++", 2,
                WorkloadTraits(cold_split_multiplier=1.2, is_cpp=True, mean_functions=140)),
    ProjectSpec("openssl-like", "Client", "C", 1,
                WorkloadTraits(cold_split_multiplier=0.5, has_assembly=True, mean_functions=150)),
    ProjectSpec("busybox-like", "Client", "C", 1,
                WorkloadTraits(cold_split_multiplier=0.4, mean_functions=120)),
    ProjectSpec("zsh-like", "Client", "C", 1,
                WorkloadTraits(cold_split_multiplier=0.5, mean_functions=100)),
    ProjectSpec("openssh-like", "Client", "C", 2,
                WorkloadTraits(cold_split_multiplier=0.4, mean_functions=90)),
    ProjectSpec("git-like", "Client", "C", 1,
                WorkloadTraits(cold_split_multiplier=0.6, mean_functions=130)),
    ProjectSpec("d8-like", "Client", "C++", 1,
                WorkloadTraits(cold_split_multiplier=3.0, is_cpp=True, mean_functions=160)),
    ProjectSpec("mysqld-like", "Server", "C++", 1,
                WorkloadTraits(cold_split_multiplier=3.5, is_cpp=True, mean_functions=170)),
    ProjectSpec("nginx-like", "Server", "C", 1,
                WorkloadTraits(cold_split_multiplier=0.8, has_assembly=True, mean_functions=120)),
    ProjectSpec("lighttpd-like", "Server", "C", 1,
                WorkloadTraits(cold_split_multiplier=0.4, mean_functions=80)),
    ProjectSpec("glibc-like", "Library", "C", 1,
                WorkloadTraits(cold_split_multiplier=0.5, has_assembly=True, mean_functions=150)),
    ProjectSpec("libpcap-like", "Library", "C", 1,
                WorkloadTraits(cold_split_multiplier=0.3, mean_functions=70)),
    ProjectSpec("libxml2-like", "Library", "C", 1,
                WorkloadTraits(cold_split_multiplier=0.5, mean_functions=110)),
    ProjectSpec("libprotobuf-like", "Library", "C++", 1,
                WorkloadTraits(cold_split_multiplier=1.5, is_cpp=True, mean_functions=100)),
    ProjectSpec("spec-cpu-like", "Benchmark", "C/C++", 2,
                WorkloadTraits(cold_split_multiplier=1.0, is_cpp=True, mean_functions=130)),
)


#: Analogue of the paper's Table I (wild binaries).  ``has_symbols`` follows
#: the paper: only 11 of the 43 binaries come with usable symbols.
WILD_SOFTWARE: tuple[WildProfile, ...] = tuple(
    WildProfile(software=name, open_source=open_source, language=lang,
                compiler_note=note, has_eh_frame=True, has_symbols=symbols,
                function_count=count)
    for name, open_source, lang, note, symbols, count in (
        ("Atom-1.49.0", True, "c++", "gcc-7.3.0", False, 260),
        ("Simplenote-1.4.13", True, "c++", "gcc-4.6.3", False, 180),
        ("OpenShot-2.4.4", True, "c", "gcc-4.8.4", False, 140),
        ("seamonkey-2.49.5", True, "c++", "gcc-4.8.5", False, 300),
        ("mupdf-1.16.1", True, "c", "gcc-7.4.0", False, 220),
        ("laverna-0.7.1", True, "c++", "gcc-4.6.3", False, 150),
        ("franz-5.4.0", True, "c++", "gcc-4.6.3", False, 150),
        ("Nightingale-1.12.1", True, "c", "gcc-4.7.2", False, 170),
        ("palemoon-28.8.0", True, "c++", "", False, 280),
        ("evince-3.34.3", True, "c", "", False, 160),
        ("amarok-2.9.0", True, "c", "", False, 190),
        ("deadbeef-1.8.2", True, "c", "", False, 150),
        ("qBittorrent-4.2.5", True, "c++", "", False, 230),
        ("pdftex-3.14159265", True, "c", "", False, 200),
        ("eclipse-4.11", True, "c", "gcc-4.8.5", False, 180),
        ("VS Code-1.40.2", True, "c++", "gcc-7.3.0", False, 260),
        ("VirtualBox-5.2.34", True, "c++", "", True, 280),
        ("gv-3.7.4", True, "c", "", True, 90),
        ("okular-1.3.3", True, "c++", "", True, 210),
        ("gcc-7.5", True, "c", "", True, 320),
        ("wkhtmltopdf-0.12.4", True, "c", "", True, 200),
        ("firefox-78.0.2", True, "c++", "", True, 340),
        ("qemu-system-2.11.1", True, "c", "", True, 300),
        ("ThunderBird-68.10.0", True, "c++", "gcc-6.4.0", True, 320),
        ("Smuxi-Server", True, "c", "gcc-5.3.1", True, 120),
        ("TeamViewer-15.0.8397", False, "c++", "gcc-7.2.0", False, 240),
        ("skype-8.55.0.141", False, "c++", "gcc-7.3.0", False, 260),
        ("trillian-6.1.0.5", False, "c++", "", False, 200),
        ("opera-65.0.3467.69", False, "c++", "gcc-7.3.0", False, 300),
        ("yandex-browser-19.12.3", False, "c++", "gcc-7.3.0", False, 300),
        ("SpiderOakONE-7.5.01", False, "c", "gcc-4.1.2", False, 170),
        ("slack-4.2.0", False, "c++", "gcc-7.3.0", False, 220),
        ("rainlendar2-2.15.2", False, "c++", "gcc-5.4.0", False, 140),
        ("sublime-3211", False, "c++", "gcc-6.3.0", False, 230),
        ("netease-cloud-music-1.2.1", False, "c++", "", False, 210),
        ("wps-11.1.0.8865", False, "c++", "", False, 260),
        ("wpp-11.1.0.8865", False, "c++", "", False, 240),
        ("wpspdf-11.1.0.8865", False, "c++", "", False, 220),
        ("wpsoffice-11.1.0.8865", False, "c++", "", False, 250),
        ("ida64-7.2", False, "c++", "gcc-4.8.2", False, 280),
        ("zoom-7.19.2020", False, "c++", "gcc-4.8.5", False, 260),
        ("binaryninja-1.2", False, "c++", "gcc-5.4.0", True, 270),
        ("FoxitReader-4.4.0911", False, "c++", "gcc-4.8.4", True, 230),
    )
)


def _cached_build(
    store: "ArtifactStore | None",
    kind: str,
    params: dict[str, Any],
    build: Any,
) -> list:
    """Reload the corpus for (``kind``, ``params``) or build and persist it.

    Concurrent processes racing to build the same corpus arbitrate on the
    store's per-key build lock: the loser waits, re-checks the store and
    reloads the winner's corpus instead of rebuilding it.
    """
    if store is None:
        return build()
    params = {**params, "generator_version": GENERATOR_VERSION}
    key = store.corpus_key(kind, params)
    cached = store.load_corpus(key)
    if cached is not None:
        return cached
    with store.build_lock(key):
        if store.has_corpus(key):  # another process built it while we waited
            cached = store.load_corpus(key)
            if cached is not None:
                return cached
        entries = build()
        store.save_corpus(key, kind, params, entries)
    return entries


def build_selfbuilt_corpus(
    *,
    seed: int = 2021,
    scale: float = 1.0,
    compilers: tuple[CompilerFamily, ...] = (CompilerFamily.GCC, CompilerFamily.CLANG),
    opt_levels: tuple[OptLevel, ...] = (OptLevel.O2, OptLevel.O3, OptLevel.OS, OptLevel.OFAST),
    max_binaries: int | None = None,
    projects: tuple[ProjectSpec, ...] = SELFBUILT_PROJECTS,
    store: "ArtifactStore | None" = None,
) -> list[SyntheticBinary]:
    """Build the self-built (Dataset 2) corpus.

    ``scale`` shrinks both the number of programs per project and the mean
    function count, which keeps unit tests fast; the benchmarks use the
    default scale.

    With a ``store``, the built corpus (ELF images, ground truth, plans) is
    persisted under a digest of every build parameter and the generator
    version, and later calls with identical parameters reload it instead of
    re-planning and re-compiling.
    """
    params: dict[str, Any] = {
        "seed": seed,
        "scale": scale,
        "compilers": [compiler.value for compiler in compilers],
        "opt_levels": [level.value for level in opt_levels],
        "max_binaries": max_binaries,
        "projects": projects,
    }

    def build() -> list[SyntheticBinary]:
        binaries: list[SyntheticBinary] = []
        for project in projects:
            program_count = max(1, round(project.programs * scale))
            for program_index in range(program_count):
                traits = project.traits
                if scale < 1.0:
                    traits = WorkloadTraits(
                        cold_split_multiplier=traits.cold_split_multiplier,
                        has_assembly=traits.has_assembly,
                        uses_function_pointers=traits.uses_function_pointers,
                        is_cpp=traits.is_cpp,
                        mean_functions=max(20, int(traits.mean_functions * scale)),
                    )
                for compiler in compilers:
                    for opt_level in opt_levels:
                        profile = default_profile(compiler, opt_level)
                        name = (
                            f"{project.name}-{program_index}:{compiler.value}:{opt_level.value}"
                        )
                        plan = plan_program(
                            name,
                            profile,
                            seed=f"{seed}:{name}",
                            traits=traits,
                        )
                        binaries.append(compile_program(plan, keep_elf_bytes=False))
                        if max_binaries is not None and len(binaries) >= max_binaries:
                            return binaries
        return binaries

    return _cached_build(store, "selfbuilt", params, build)


def build_scenario_corpus(
    scenario: str,
    *,
    seed: int = 2021,
    scale: float = 1.0,
    programs: int = 4,
    compilers: tuple[CompilerFamily, ...] = (CompilerFamily.GCC, CompilerFamily.CLANG),
    opt_levels: tuple[OptLevel, ...] = (OptLevel.O2, OptLevel.O3),
    store: "ArtifactStore | None" = None,
) -> list[SyntheticBinary]:
    """Build one row of the scenario matrix: ``programs`` binaries of one scenario.

    Programs rotate deterministically through the compiler/opt-level grid so
    even a small row mixes toolchain idioms.  ``scale`` shrinks the mean
    function count, as in :func:`build_selfbuilt_corpus`; ``store`` reuses a
    previously built row with identical parameters.
    """
    if scenario not in SCENARIO_NAMES:
        raise ValueError(f"unknown scenario {scenario!r}; expected one of {SCENARIO_NAMES}")
    params: dict[str, Any] = {
        "scenario": scenario,
        "seed": seed,
        "scale": scale,
        "programs": programs,
        "compilers": [compiler.value for compiler in compilers],
        "opt_levels": [level.value for level in opt_levels],
    }

    def build() -> list[SyntheticBinary]:
        binaries: list[SyntheticBinary] = []
        for index in range(programs):
            compiler = compilers[index % len(compilers)]
            opt_level = opt_levels[(index // len(compilers)) % len(opt_levels)]
            profile = default_profile(compiler, opt_level)
            traits = WorkloadTraits(
                cold_split_multiplier=1.0,
                uses_function_pointers=True,
                mean_functions=max(20, int(90 * scale)),
            )
            name = f"{scenario}-{index}:{compiler.value}:{opt_level.value}"
            plan = plan_program(
                name,
                profile,
                seed=f"{seed}:scenario:{name}",
                traits=traits,
                scenario=scenario,
            )
            binaries.append(compile_program(plan, keep_elf_bytes=False))
        return binaries

    return _cached_build(store, "scenario", params, build)


def build_scenario_matrix_corpora(
    *,
    seed: int = 2021,
    scale: float = 1.0,
    programs: int = 4,
    scenarios: tuple[str, ...] = SCENARIO_NAMES,
    store: "ArtifactStore | None" = None,
) -> dict[str, list[SyntheticBinary]]:
    """Build the full scenario matrix: ``{scenario: [binaries]}``.

    Each scenario row is cached independently in the ``store``, so widening
    the scenario set only builds the new rows.
    """
    return {
        scenario: build_scenario_corpus(
            scenario, seed=seed, scale=scale, programs=programs, store=store
        )
        for scenario in scenarios
    }


def build_wild_corpus(
    *,
    seed: int = 2021,
    scale: float = 1.0,
    max_binaries: int | None = None,
    store: "ArtifactStore | None" = None,
) -> list[tuple[WildProfile, SyntheticBinary]]:
    """Build the wild (Dataset 1) corpus.

    Returns pairs of the wild profile (Table I row) and the synthetic binary
    standing in for it.  Binaries without symbols are stripped.
    """
    params: dict[str, Any] = {
        "seed": seed,
        "scale": scale,
        "max_binaries": max_binaries,
    }

    def build() -> list[tuple[WildProfile, SyntheticBinary]]:
        results: list[tuple[WildProfile, SyntheticBinary]] = []
        for wild in WILD_SOFTWARE:
            compiler = CompilerFamily.GCC if "gcc" in wild.compiler_note or not wild.compiler_note else CompilerFamily.GCC
            profile = default_profile(compiler, OptLevel.O2)
            traits = WorkloadTraits(
                cold_split_multiplier=1.5 if wild.language == "c++" else 0.5,
                is_cpp=wild.language == "c++",
                mean_functions=max(30, int(wild.function_count * scale)),
            )
            plan = plan_program(
                wild.software.replace(" ", "_"),
                profile,
                seed=f"{seed}:wild:{wild.software}",
                traits=traits,
                stripped=not wild.has_symbols,
            )
            results.append((wild, compile_program(plan, keep_elf_bytes=False)))
            if max_binaries is not None and len(results) >= max_binaries:
                break
        return results

    return _cached_build(store, "wild", params, build)
