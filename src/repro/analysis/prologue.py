"""Prologue / signature matching over non-disassembled gaps.

This is one of the *unsafe* approaches of §II-B / §IV-D: scan the bytes that
recursive disassembly did not reach for byte patterns that commonly start a
function.  It finds functions that genuinely start with a standard prologue,
but it also fires on data embedded in the text section and on the middle of
instructions, which is exactly how the false positives quantified in the
paper arise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.elf.image import BinaryImage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.context import AnalysisContext

#: Common x86-64 function prologue byte patterns (most specific first).
PROLOGUE_PATTERNS: tuple[bytes, ...] = (
    b"\xf3\x0f\x1e\xfa",          # endbr64
    b"\x55\x48\x89\xe5",          # push rbp; mov rbp, rsp
    b"\x41\x57\x41\x56",          # push r15; push r14
    b"\x53\x48\x83\xec",          # push rbx; sub rsp, imm8
    b"\x48\x83\xec",              # sub rsp, imm8
)

#: Patterns for CET-instrumented binaries: with indirect-branch tracking every
#: function entry must be an ``endbr64`` landing pad, so a prologue byte
#: sequence *not* anchored at an endbr64 is mid-function code or data, never a
#: function start.  CET-aware matchers therefore trust only the landing pad.
CET_PROLOGUE_PATTERNS: tuple[bytes, ...] = (
    b"\xf3\x0f\x1e\xfa",          # endbr64
)


def select_prologue_patterns(image: BinaryImage) -> tuple[bytes, ...]:
    """The prologue signature set appropriate for ``image``.

    CET binaries (see :attr:`BinaryImage.uses_cet`) get the endbr64-anchored
    set; everything else gets the classic patterns.  This is the scenario
    hook used by all pattern-matching detector models.
    """
    return CET_PROLOGUE_PATTERNS if image.uses_cet else PROLOGUE_PATTERNS


def match_prologues(
    image: BinaryImage,
    gaps: list[tuple[int, int]],
    *,
    patterns: tuple[bytes, ...] = PROLOGUE_PATTERNS,
    context: "AnalysisContext | None" = None,
) -> set[int]:
    """Return addresses inside ``gaps`` where a prologue pattern occurs.

    With a ``context`` the executable sections are scanned for the patterns
    once per binary and the occurrence lists are filtered down to ``gaps``,
    instead of re-searching the gap windows on every call.
    """
    if context is not None:
        return _match_from_context(image, gaps, patterns, context)
    matches: set[int] = set()
    for gap_start, gap_end in gaps:
        section = image.section_containing(gap_start)
        if section is None:
            continue
        begin = gap_start - section.address
        end = min(gap_end, section.end_address) - section.address
        window = section.data[begin:end]
        for pattern in patterns:
            offset = window.find(pattern)
            while offset != -1:
                matches.add(section.address + begin + offset)
                offset = window.find(pattern, offset + 1)
    return matches


def _match_from_context(
    image: BinaryImage,
    gaps: list[tuple[int, int]],
    patterns: tuple[bytes, ...],
    context: "AnalysisContext",
) -> set[int]:
    from bisect import bisect_left

    by_pattern = context.text_pattern_matches(patterns)
    matches: set[int] = set()
    for gap_start, gap_end in gaps:
        section = image.section_containing(gap_start)
        if section is None:
            continue
        end = min(gap_end, section.end_address)
        for pattern, positions in by_pattern.items():
            # A match counts only when the pattern fits inside the window,
            # mirroring the windowed search of the uncached path.
            limit = end - len(pattern)
            index = bisect_left(positions, gap_start)
            while index < len(positions) and positions[index] <= limit:
                matches.add(positions[index])
                index += 1
    return matches
