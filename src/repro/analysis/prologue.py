"""Prologue / signature matching over non-disassembled gaps.

This is one of the *unsafe* approaches of §II-B / §IV-D: scan the bytes that
recursive disassembly did not reach for byte patterns that commonly start a
function.  It finds functions that genuinely start with a standard prologue,
but it also fires on data embedded in the text section and on the middle of
instructions, which is exactly how the false positives quantified in the
paper arise.
"""

from __future__ import annotations

from repro.elf.image import BinaryImage

#: Common x86-64 function prologue byte patterns (most specific first).
PROLOGUE_PATTERNS: tuple[bytes, ...] = (
    b"\xf3\x0f\x1e\xfa",          # endbr64
    b"\x55\x48\x89\xe5",          # push rbp; mov rbp, rsp
    b"\x41\x57\x41\x56",          # push r15; push r14
    b"\x53\x48\x83\xec",          # push rbx; sub rsp, imm8
    b"\x48\x83\xec",              # sub rsp, imm8
)

_PADDING_BYTES = frozenset(b"\x90\xcc\x00\x66\x0f\x1f")


def match_prologues(
    image: BinaryImage,
    gaps: list[tuple[int, int]],
    *,
    patterns: tuple[bytes, ...] = PROLOGUE_PATTERNS,
) -> set[int]:
    """Return addresses inside ``gaps`` where a prologue pattern occurs."""
    matches: set[int] = set()
    for gap_start, gap_end in gaps:
        section = image.section_containing(gap_start)
        if section is None:
            continue
        begin = gap_start - section.address
        end = min(gap_end, section.end_address) - section.address
        window = section.data[begin:end]
        for pattern in patterns:
            offset = window.find(pattern)
            while offset != -1:
                matches.add(section.address + begin + offset)
                offset = window.find(pattern, offset + 1)
    return matches
