"""Garbage collection: age- and size-budgeted eviction for the store.

The store is append-only by design — every front-end dedupes through it —
so unbounded growth is the failure mode at millions of artifacts.
:func:`collect` (behind ``fetch-detect store gc`` and
:meth:`ArtifactStore.gc`) evicts entries from the *derived* namespaces
(blobs, detector results, map values, matrix cells, detection records)
oldest-first:

* ``max_age_seconds`` — anything not written/updated for longer is
  evicted;
* ``max_bytes`` — after the age pass, the oldest survivors are evicted
  until the evictable footprint fits the budget (LRU approximation: last
  write time, taken as ``max(index ts, file mtime)`` so rewritten records
  count as freshly used).

Corpus *manifests* are never evicted — they are tiny, and a manifest
whose blobs were collected already degrades to a clean cache miss
(:meth:`ArtifactStore.load_corpus` rebuilds).  Eviction runs under the
store's cross-process lock, deletes through the backend, appends ``del``
lines to the index journal and compacts, so ``store stats`` stays exact
without ever walking the tree.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.store.backend import BLOB_NAMESPACE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.store import ArtifactStore

#: Namespaces GC may evict from; corpus manifests are deliberately absent.
EVICTABLE_NAMESPACES = (BLOB_NAMESPACE, "results", "values", "matrix", "detections")


@dataclass
class GCReport:
    """Outcome of one :func:`collect` run (``as_dict`` feeds the CLI/CI)."""

    dry_run: bool
    examined: int = 0
    evicted: int = 0
    evicted_bytes: int = 0
    kept: int = 0
    kept_bytes: int = 0
    by_namespace: dict[str, dict[str, int]] = field(default_factory=dict)

    def note(self, namespace: str, size: int, *, evicted: bool) -> None:
        bucket = self.by_namespace.setdefault(
            namespace, {"evicted": 0, "evicted_bytes": 0, "kept": 0, "kept_bytes": 0}
        )
        if evicted:
            self.evicted += 1
            self.evicted_bytes += size
            bucket["evicted"] += 1
            bucket["evicted_bytes"] += size
        else:
            self.kept += 1
            self.kept_bytes += size
            bucket["kept"] += 1
            bucket["kept_bytes"] += size

    def as_dict(self) -> dict[str, Any]:
        return {
            "dry_run": self.dry_run,
            "examined": self.examined,
            "evicted": self.evicted,
            "evicted_bytes": self.evicted_bytes,
            "kept": self.kept,
            "kept_bytes": self.kept_bytes,
            "by_namespace": self.by_namespace,
        }


def collect(
    store: "ArtifactStore",
    *,
    max_bytes: int | None = None,
    max_age_seconds: float | None = None,
    dry_run: bool = False,
    now: float | None = None,
) -> GCReport:
    """Evict evictable entries by age, then by size budget, oldest first.

    With neither bound set this is a no-op inventory pass (the shape the
    CI smoke invocation uses).  ``now`` exists for deterministic tests.
    """
    report = GCReport(dry_run=dry_run)
    clock = time.time() if now is None else now

    with store._locked():
        candidates = _candidates(store)
        report.examined = len(candidates)
        # oldest last-use first; ties broken by key for determinism
        candidates.sort(key=lambda entry: (entry[3], entry[1]))

        evict: list[tuple[str, str, int, float]] = []
        survivors: list[tuple[str, str, int, float]] = []
        for namespace, key, size, last_use in candidates:
            if (
                max_age_seconds is not None
                and clock - last_use > max_age_seconds
            ):
                evict.append((namespace, key, size, last_use))
            else:
                survivors.append((namespace, key, size, last_use))

        if max_bytes is not None:
            remaining = sum(size for _ns, _key, size, _ts in survivors)
            index = 0  # survivors are already oldest-first
            while remaining > max_bytes and index < len(survivors):
                entry = survivors[index]
                evict.append(entry)
                remaining -= entry[2]
                index += 1
            survivors = survivors[index:]

        for namespace, key, size, _last_use in evict:
            if not dry_run:
                freed = store.backend.delete(namespace, key)
                store.index.append("del", namespace, key, 0)
                size = freed or size
            report.note(namespace, size, evicted=True)
        for namespace, _key, size, _last_use in survivors:
            report.note(namespace, size, evicted=False)

        if evict and not dry_run:
            store.index.compact()
    return report


def _candidates(store: "ArtifactStore") -> list[tuple[str, str, int, float]]:
    """Evictable entries as ``(namespace, key, bytes, last_use)``.

    Sourced from the index when it has data (the steady state); a legacy
    pre-index store falls back to one tree walk — GC is an explicit
    maintenance operation, so the walk is acceptable there.
    """
    candidates: list[tuple[str, str, int, float]] = []
    if store.index.has_data():
        for (namespace, key), value in store.index.entries().items():
            if namespace not in EVICTABLE_NAMESPACES:
                continue
            last_use = float(value.get("ts", 0.0))
            path = (
                store.backend.find_blob(key)
                if namespace == BLOB_NAMESPACE
                else store.backend.find_record(namespace, key)
            )
            if path is not None:
                try:  # rewrites bump mtime: treat as freshly used
                    last_use = max(last_use, path.stat().st_mtime)
                except OSError:
                    pass
            candidates.append(
                (namespace, key, int(value.get("bytes", 0)), last_use)
            )
        return candidates
    for namespace, key, _path, size, mtime in store.backend.iter_entries():
        if namespace in EVICTABLE_NAMESPACES:
            candidates.append((namespace, key, size, mtime))
    return candidates
