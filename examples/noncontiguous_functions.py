#!/usr/bin/env python3
"""Non-contiguous functions: the false starts FDEs introduce and how
Algorithm 1 removes them (§V of the paper).

Compilers split rarely-executed ("cold") code out of hot functions and give
every part its own FDE and symbol.  Taken at face value, those extra FDEs
become false function starts.  This example builds a binary with aggressive
hot/cold splitting, shows the false starts, runs Algorithm 1 and prints which
parts were merged back into their parent functions.
"""

from __future__ import annotations

from repro.core import FetchDetector, FetchOptions
from repro.core.fde_source import extract_fde_starts
from repro.synth import compile_program, plan_program
from repro.synth.profiles import CompilerFamily, OptLevel, default_profile
from repro.synth.workloads import WorkloadTraits


def main() -> None:
    profile = default_profile(CompilerFamily.GCC, OptLevel.OFAST)
    traits = WorkloadTraits(cold_split_multiplier=4.0, is_cpp=True, mean_functions=100)
    plan = plan_program("cold-split-demo", profile, seed=2021, traits=traits)
    binary = compile_program(plan, keep_elf_bytes=False)
    image = binary.image
    truth = binary.ground_truth

    fde_starts = extract_fde_starts(image)
    cold_parts = truth.cold_part_starts
    print(f"binary: {binary.name}")
    print(f"  true functions          : {truth.function_count}")
    print(f"  FDEs                    : {len(fde_starts)}")
    print(f"  cold parts (false FDEs) : {len(cold_parts)}")

    # Without Algorithm 1 the cold parts survive as false function starts.
    without = FetchDetector(
        FetchOptions(validate_fde_starts=False, use_tail_call_analysis=False)
    ).detect(image)
    false_before = without.function_starts - truth.function_starts
    print(f"\nwithout Algorithm 1: {len(false_before)} false function starts")

    # With Algorithm 1 the connecting jumps are recognised as non-tail-calls
    # and the parts are merged back.
    with_alg1 = FetchDetector().detect(image)
    false_after = with_alg1.function_starts - truth.function_starts
    print(f"with Algorithm 1   : {len(false_after)} false function starts")

    print(f"\nmerged parts ({len(with_alg1.merged_parts)}):")
    for part, parent in sorted(with_alg1.merged_parts.items()):
        parent_info = truth.by_address(parent)
        parent_name = parent_info.name if parent_info else hex(parent)
        print(f"  {part:#x}  merged into  {parent:#x} ({parent_name})")

    remaining = sorted(false_after)
    if remaining:
        print("\nremaining false starts (functions whose CFI lacks complete "
              "stack-height information, skipped for conservativeness):")
        for address in remaining:
            parents = [f.name for f in truth.functions if address in f.cold_part_addresses]
            print(f"  {address:#x}  cold part of {parents[0] if parents else '?'}")


if __name__ == "__main__":
    main()
