"""Algorithm 1: tail-call detection and function-part merging (§V-B).

Call frames give a false function start for every non-beginning part of a
non-contiguous function.  The fix exploits the observation that distant parts
of the same function are connected by a jump that *cannot* be a tail call.  A
jump is accepted as a tail call only under three restrictive criteria:

1. the stack pointer at the jump site sits right below the return address
   (stack height 0, taken from the CFI rows, never from static analysis);
2. the jump target satisfies the conservative calling-convention check;
3. the target is not referenced anywhere except by jumps inside the current
   function.

Jumps that fail the tail-call test but whose target has its own FDE and no
other reference are merges: the target part belongs to the current function.
Functions whose CFI does not give complete stack-height information are
skipped entirely (conservativeness), which is where the paper's residual
false positives come from.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.analysis.callconv import satisfies_calling_convention
from repro.analysis.result import DisassemblyResult
from repro.analysis.xrefs import collect_potential_pointers
from repro.dwarf.cfa_table import CfaTable, build_cfa_table
from repro.dwarf.structs import FdeRecord
from repro.elf.image import BinaryImage
from repro.x86.instruction import _F_CALL, _F_JUMP

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.context import AnalysisContext


@dataclass
class TailCallOutcome:
    """Result of running Algorithm 1 over a binary."""

    #: targets of detected tail calls (new or confirmed function starts)
    tail_call_targets: set[int] = field(default_factory=set)
    #: merged part start -> function start it was merged into
    merged: dict[int, int] = field(default_factory=dict)
    #: function starts skipped because their CFI lacks complete stack heights
    skipped_functions: set[int] = field(default_factory=set)

    @property
    def removed_starts(self) -> set[int]:
        return set(self.merged)

    @property
    def added_starts(self) -> set[int]:
        return set(self.tail_call_targets)


def detect_tail_calls_and_merge(
    image: BinaryImage,
    disassembly: DisassemblyResult,
    function_starts: set[int],
    *,
    extra_references: set[int] | None = None,
    require_zero_stack_height: bool = True,
    require_calling_convention: bool = True,
    require_unreferenced_target: bool = True,
    context: "AnalysisContext | None" = None,
) -> TailCallOutcome:
    """Run Algorithm 1.

    Args:
        image: the binary under analysis.
        disassembly: recursive-disassembly state covering ``function_starts``.
        function_starts: the currently detected function starts.
        extra_references: additional referenced addresses (e.g. validated
            function pointers) to include in the reference map.
        require_zero_stack_height: criterion 1 of the tail-call test.  The
            remaining ``require_*`` flags toggle criteria 2 and 3; they exist
            for the ablation benchmarks and default to the paper's algorithm.

    Returns:
        The tail-call targets found and the merges performed.
    """
    outcome = TailCallOutcome()
    fdes_by_start = {fde.pc_begin: fde for fde in image.fdes}
    references = _collect_references(
        image, disassembly, extra_references or set(), context=context
    )

    for start in sorted(function_starts):
        function = disassembly.functions.get(start)
        fde = fdes_by_start.get(start)
        if function is None or fde is None:
            continue
        table = context.cfa_table(fde) if context is not None else build_cfa_table(fde)
        if not table.has_complete_stack_height:
            outcome.skipped_functions.add(start)
            continue

        for jump in function.jumps:
            target = jump.branch_target
            if target is None:
                continue
            if not fde.covers(jump.address):
                # Recursive disassembly follows tail calls into other
                # functions, so ``function.jumps`` can contain jumps that
                # belong to a different function's body; Algorithm 1 only
                # reasons about jumps inside this function's own FDE range.
                continue
            if fde.covers(target):
                continue  # a jump inside the function's own contiguous range
            if not image.is_executable_address(target):
                continue

            is_tail_call = False
            height = _height_at(table, jump.address, fde)
            if height == 0 or not require_zero_stack_height:
                only_local_jumps = (
                    _only_referenced_by_local_jumps(target, start, function, references)
                    or not require_unreferenced_target
                )
                convention_ok = (
                    satisfies_calling_convention(image, target, context=context)
                    or not require_calling_convention
                )
                if only_local_jumps and convention_ok:
                    outcome.tail_call_targets.add(target)
                    is_tail_call = True

            if is_tail_call:
                continue
            if target not in function_starts or target in outcome.merged:
                continue
            if target not in fdes_by_start:
                continue  # merging only applies to FDE-backed parts
            if _only_referenced_by_local_jumps(target, start, function, references):
                outcome.merged[target] = start

    return outcome


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------

def _height_at(table: CfaTable, address: int, fde: FdeRecord) -> int | None:
    if fde.covers(address):
        return table.stack_height_at(address)
    # The jump may live in an already-merged distant part; be conservative.
    return None


def _collect_references(
    image: BinaryImage,
    disassembly: DisassemblyResult,
    extra: set[int],
    *,
    context: "AnalysisContext | None" = None,
) -> dict[int, list[tuple[str, int]]]:
    """Map target address -> list of (kind, source) references.

    Call and jump references come from the per-function records the
    traversal keeps (``call_sites`` / ``jumps``) instead of a walk over
    every decoded instruction: each control-transfer instruction in a
    function's instruction set was processed by that function's walk, so
    the per-function lists cover exactly the referencing instructions.  An
    instruction shared by several functions contributes one entry per
    function; the duplicate ``(kind, source)`` entries cannot change any
    criterion-3 verdict, which quantifies over the entries of one target.
    """
    references: defaultdict[int, list[tuple[str, int]]] = defaultdict(list)

    for function in disassembly.functions.values():
        for target, source in function.call_sites:
            references[target].append(("call", source))
        for insn in function.jumps:
            target = insn.branch_target
            if target is not None:
                references[target].append(("jump", insn.address))

    for constant in disassembly.code_constants:
        if image.is_executable_address(constant):
            references[constant].append(("constant", -1))

    for pointer in collect_potential_pointers(image, disassembly, context=context):
        references[pointer].append(("data", -1))

    for address in extra:
        references[address].append(("extra", -1))
    return references


def _only_referenced_by_local_jumps(
    target: int,
    function_start: int,
    function,
    references: dict[int, list[tuple[str, int]]],
) -> bool:
    """Criterion 3: every reference to ``target`` is a jump inside ``function``."""
    for kind, source in references.get(target, []):
        if kind != "jump":
            return False
        if source not in function.instructions:
            return False
    return True
