"""Socket-server load — many concurrent clients over one shared service.

Drives ``REPRO_BENCH_CLIENTS`` (default 100) concurrent
:class:`~repro.service.ServiceClient` connections through a single
:class:`~repro.service.DetectionServer`, every client submitting the same
mixed cold/warm batch (half the corpus is pre-warmed through the service
before the storm, the other half is cold when the clients arrive).  All
clients connect first and release together off a barrier, so the load is
genuinely simultaneous.

Recorded into the ``server`` block of ``BENCH_service.json``:

* **throughput** — result events delivered per second across the storm;
* **per-request latency** (p50/p90/p99) — submit sent to ``accepted``
  received, per client;
* **per-result latency** (p50/p90/p99) — submit sent to each ``result``
  event's arrival.

The run is also a correctness gate: every client must receive exactly its
own job's events (session-local job ids, no cross-delivery) and exactly
one result per submitted entry (zero lost).  The shared service must
dedupe across the whole storm — total detector invocations equal the
number of unique binaries, not clients × binaries.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from pathlib import Path

from repro.elf.writer import write_elf
from repro.service import DetectionServer, DetectionService, ServiceClient
from repro.store import ArtifactStore

BENCH_DIRECTORY = Path(__file__).resolve().parent.parent

_WORKERS = 4
_CLIENTS = max(2, int(os.environ.get("REPRO_BENCH_CLIENTS", "100")))
_CLIENT_TIMEOUT = 600.0


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


def _percentiles(values: list[float]) -> dict[str, float]:
    return {
        "p50": round(_percentile(values, 0.50), 6),
        "p90": round(_percentile(values, 0.90), 6),
        "p99": round(_percentile(values, 0.99), 6),
    }


class _ClientRun:
    """One client's view of the storm: latencies plus delivery bookkeeping."""

    def __init__(self) -> None:
        self.job_id: int | None = None
        self.request_latency: float | None = None
        self.result_latencies: list[float] = []
        self.names: list[str] = []
        self.jobs_seen: set[int] = set()
        self.errors: list[str] = []
        self.failure: str | None = None


def _drive(
    address: tuple[str, int],
    paths: list[str],
    barrier: threading.Barrier,
    run: _ClientRun,
) -> None:
    try:
        with ServiceClient.connect(*address, timeout=_CLIENT_TIMEOUT) as client:
            barrier.wait(timeout=120)
            submitted = time.perf_counter()
            run.job_id = client.submit(paths)
            run.request_latency = time.perf_counter() - submitted
            for event in client.results(run.job_id, timeout=_CLIENT_TIMEOUT):
                run.result_latencies.append(time.perf_counter() - submitted)
                run.names.append(event["name"])
                run.jobs_seen.add(event["job"])
                if event.get("error") is not None:
                    run.errors.append(event["error"])
    except Exception as error:  # recorded, asserted on the main thread
        run.failure = f"{type(error).__name__}: {error}"


def test_server_load_many_concurrent_clients(
    selfbuilt_corpus_small, tmp_path_factory, report_writer
):
    directory = tmp_path_factory.mktemp("server-bench")
    paths = []
    for binary in selfbuilt_corpus_small:
        path = directory / f"{binary.name.replace(':', '_')}.elf"
        path.write_bytes(write_elf(binary.image.elf))
        paths.append(str(path))
    warm_half = paths[: len(paths) // 2]

    store = ArtifactStore(directory / "store")
    with DetectionService(workers=_WORKERS, queue_limit=0, store=store) as service:
        # pre-warm half the corpus: the storm is deliberately mixed
        list(service.submit(warm_half).results())
        prewarmed_runs = service.detector_runs

        with DetectionServer(service) as server:
            runs = [_ClientRun() for _ in range(_CLIENTS)]
            barrier = threading.Barrier(_CLIENTS + 1)
            threads = [
                threading.Thread(
                    target=_drive, args=(server.address, paths, barrier, run)
                )
                for run in runs
            ]
            for thread in threads:
                thread.start()
            barrier.wait(timeout=120)  # every client connected: release the storm
            storm_start = time.perf_counter()
            for thread in threads:
                thread.join(timeout=_CLIENT_TIMEOUT)
                assert not thread.is_alive(), "a client never finished"
            storm_seconds = time.perf_counter() - storm_start

        detector_runs = service.detector_runs
        stats = service.stats()

    # -- correctness gates: zero lost, zero cross-delivered ---------------
    failures = [run.failure for run in runs if run.failure]
    assert not failures, failures
    for run in runs:
        assert len(run.names) == len(paths), "a result event was lost"
        assert sorted(run.names) == sorted(paths), "a foreign entry was delivered"
        assert run.jobs_seen == {run.job_id}, "an event crossed sessions"
        assert not run.errors, run.errors
    # shared-service dedupe: unique binaries ran once, everything else warm
    assert detector_runs == len(paths)

    # -- the record -------------------------------------------------------
    request_latencies = [run.request_latency for run in runs]
    result_latencies = [
        latency for run in runs for latency in run.result_latencies
    ]
    total_results = len(result_latencies)
    server_block = {
        "clients": _CLIENTS,
        "workers": _WORKERS,
        "binaries_per_client": len(paths),
        "prewarmed_binaries": len(warm_half),
        "detector_runs": detector_runs - prewarmed_runs,
        "total_results_delivered": total_results,
        "lost_results": 0,
        "cross_delivered_results": 0,
        "storm_seconds": round(storm_seconds, 6),
        "throughput_results_per_second": round(total_results / storm_seconds, 3),
        "request_latency_seconds": _percentiles(request_latencies),
        "result_latency_seconds": _percentiles(result_latencies),
        "resilience": stats["resilience"],
    }

    bench_path = BENCH_DIRECTORY / "BENCH_service.json"
    record: dict = {}
    if bench_path.exists():
        record = json.loads(bench_path.read_text())
    record["server"] = server_block
    record.setdefault("bench", "service")
    record["created_unix"] = round(time.time(), 3)
    bench_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    request_p = server_block["request_latency_seconds"]
    result_p = server_block["result_latency_seconds"]
    report_writer(
        "server",
        "\n".join(
            [
                "Detection server — concurrent-client load",
                f"  clients               : {_CLIENTS}"
                f" ({len(paths)} binaries each, {len(warm_half)} pre-warmed)",
                f"  results delivered     : {total_results}"
                " (0 lost, 0 cross-delivered)",
                f"  storm wall time       : {storm_seconds:.3f}s"
                f" ({total_results / storm_seconds:.1f} results/s)",
                f"  request latency       : p50 {request_p['p50'] * 1e3:.1f}ms"
                f"  p90 {request_p['p90'] * 1e3:.1f}ms"
                f"  p99 {request_p['p99'] * 1e3:.1f}ms",
                f"  result latency        : p50 {result_p['p50'] * 1e3:.1f}ms"
                f"  p90 {result_p['p90'] * 1e3:.1f}ms"
                f"  p99 {result_p['p99'] * 1e3:.1f}ms",
                f"  detector runs (storm) : {detector_runs - prewarmed_runs}"
                f" of {_CLIENTS * len(paths)} submitted units",
            ]
        ),
    )
