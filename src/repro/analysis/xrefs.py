"""Function-pointer collection and validation (§IV-E of the paper).

The collection is deliberately a super-set: every consecutive 8 bytes of the
data sections and of the non-disassembled text regions is treated as a
candidate pointer, and every constant found in already-disassembled code is
added as well.  A candidate only becomes a function start after the
validation step re-disassembles from it and observes none of the four error
classes (invalid opcode, overlap with existing instructions, control transfer
into the middle of a previously-detected function, calling-convention
violation).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.callconv import satisfies_calling_convention
from repro.analysis.gaps import compute_gaps
from repro.analysis.result import DisassemblyResult
from repro.elf.image import BinaryImage
from repro.x86.disassembler import DecodeError, decode_instruction
from repro.x86.instruction import (
    _F_CALL,
    _F_CALL_OR_JUMP,
    _F_COND_JUMP,
    _F_RET,
    _F_UNCOND_JUMP,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.context import AnalysisContext

_VALIDATION_INSTRUCTION_LIMIT = 600


def collect_potential_pointers(
    image: BinaryImage,
    result: DisassemblyResult,
    *,
    context: "AnalysisContext | None" = None,
) -> set[int]:
    """Collect the conservative super-set of potential function pointers.

    The data-section sliding-window scan depends only on the image, so with a
    ``context`` it is computed once per binary; the gap scan and the code
    constants depend on ``result`` and are memoized on the result itself
    (keyed by its monotonically-growing instruction/constant counts, so the
    pipeline's repeat calls over an unchanged disassembly reuse the scan).
    """
    state = (len(result.instructions), len(result.code_constants))
    cached = result._pointer_scan_cache
    if cached is not None and cached[0] == state:
        return set(cached[1])

    from repro.core.context import scan_data_pointers, scan_pointer_windows

    if context is not None:
        candidates = set(context.data_pointer_candidates())
    else:
        candidates = scan_data_pointers(image)

    for gap_start, gap_end in compute_gaps(image, result):
        section = image.section_containing(gap_start)
        if section is None:
            continue
        data = section.data
        begin = gap_start - section.address
        end = min(gap_end, section.end_address) - section.address
        scan_pointer_windows(data, begin, max(end - 7, begin), image, candidates)

    for constant in result.code_constants:
        if image.is_executable_address(constant):
            candidates.add(constant)
    result._pointer_scan_cache = (state, frozenset(candidates))
    return candidates


def validate_function_pointer(
    image: BinaryImage,
    address: int,
    result: DisassemblyResult,
    known_starts: set[int],
    *,
    context: "AnalysisContext | None" = None,
) -> bool:
    """Validate a candidate function pointer by conservative re-disassembly.

    Implements the four error checks of §IV-E.  ``known_starts`` are the
    function starts detected before pointer validation.
    """
    if address in known_starts or address in result.instructions:
        return False
    if not image.is_executable_address(address):
        return False
    if result.is_inside_instruction(address):
        return False
    if not satisfies_calling_convention(image, address, context=context):
        return False

    visited: set[int] = set()
    worklist = [address]
    budget = _VALIDATION_INSTRUCTION_LIMIT
    while worklist and budget > 0:
        current = worklist.pop()
        while current is not None and budget > 0:
            if current in visited or current in result.instructions:
                break
            budget -= 1
            if context is not None:
                insn = context.decode(current)
                if insn is None:
                    return False
            else:
                section = image.section_containing(current)
                if section is None or not section.is_executable:
                    return False
                try:
                    insn = decode_instruction(
                        section.data, current - section.address, current
                    )
                except DecodeError:
                    return False
            if result.is_inside_instruction(current):
                return False
            visited.add(current)

            flags = insn._flags
            if flags & _F_RET or insn.mnemonic in ("ud2", "hlt"):
                break
            target = insn.branch_target
            if target is not None and flags & _F_CALL_OR_JUMP:
                if _lands_inside_function(target, known_starts, result):
                    return False
            if flags & _F_CALL:
                current = insn.end
                continue
            if flags & _F_UNCOND_JUMP:
                if target is None:
                    break
                current = target
                continue
            if flags & _F_COND_JUMP:
                if target is not None and target not in visited:
                    worklist.append(target)
                current = insn.end
                continue
            current = insn.end
    return True


def _lands_inside_function(
    target: int,
    known_starts: set[int],
    result: DisassemblyResult,
) -> bool:
    """Whether a transfer lands strictly inside a previously-detected function.

    Jumping to a detected function *start* is fine (an ordinary call or tail
    call); landing in the middle of an already-decoded instruction, or at an
    instruction that belongs to an existing function but is not a function
    start, indicates the candidate pointer is bogus.
    """
    if target in known_starts:
        return False
    if result.is_inside_instruction(target):
        return True
    return target in result.instructions
