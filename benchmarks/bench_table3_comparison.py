"""Table III — FETCH against the eight baseline tools, per optimisation level.

This is the most expensive comparison of the paper, so it doubles as the
performance benchmark for the shared :class:`~repro.core.AnalysisContext`:
the corpus is evaluated uncached (a fresh context per detector run, the
pre-context behaviour) and with one shared context per binary, alternating
over several rounds.  The two result tables are asserted identical, decode
work must drop by at least half (it is deterministic, unlike wall clock),
and all timings land in ``BENCH_table3_comparison.json``.
"""

import statistics
import time

from repro.eval import CorpusEvaluator, run_tool_comparison
from repro.eval.tables import render_table3
from repro.x86.disassembler import DECODE_STATS

_ROUNDS = 3


def test_table3_tool_comparison(
    benchmark, selfbuilt_corpus, report_writer, make_evaluator, bench_jobs
):
    evaluator = make_evaluator(selfbuilt_corpus, jobs=1)

    shared_cache_stats = {}

    def measure(shared: bool):
        """One full comparison pass -> (results, seconds, raw decode count)."""
        pass_evaluator = CorpusEvaluator(selfbuilt_corpus, share_contexts=shared)
        decodes_before = DECODE_STATS.raw_decodes
        start = time.perf_counter()
        results = run_tool_comparison(selfbuilt_corpus, evaluator=pass_evaluator)
        elapsed = time.perf_counter() - start
        if shared:
            shared_cache_stats.update(pass_evaluator.context_stats())
        return results, elapsed, DECODE_STATS.raw_decodes - decodes_before

    def full_measurement():
        # Alternate uncached/shared passes so slow drift (GC pressure, CPU
        # frequency) hits both sides equally, and judge by the medians.
        uncached_times, shared_times = [], []
        uncached_results = shared_results = None
        uncached_decodes = shared_decodes = 0
        for _ in range(_ROUNDS):
            uncached_results, elapsed, uncached_decodes = measure(shared=False)
            uncached_times.append(elapsed)
            shared_results, elapsed, shared_decodes = measure(shared=True)
            shared_times.append(elapsed)
        return (
            uncached_results,
            shared_results,
            uncached_times,
            shared_times,
            uncached_decodes,
            shared_decodes,
        )

    (
        uncached,
        results,
        uncached_times,
        shared_times,
        uncached_decodes,
        shared_decodes,
    ) = benchmark.pedantic(full_measurement, rounds=1, iterations=1)

    assert uncached == results, "shared AnalysisContext changed Table III results"

    if bench_jobs > 1:
        parallel_evaluator = make_evaluator(selfbuilt_corpus)
        parallel = parallel_evaluator.timed(
            f"shared_context_jobs{bench_jobs}",
            run_tool_comparison,
            selfbuilt_corpus,
            evaluator=parallel_evaluator,
        )
        assert parallel == results, "--jobs evaluation changed Table III results"
        evaluator.timings.update(parallel_evaluator.timings)

    evaluator.timings["uncached_serial_median"] = statistics.median(uncached_times)
    evaluator.timings["shared_context_serial_median"] = statistics.median(shared_times)
    speedup = evaluator.timings["uncached_serial_median"] / max(
        evaluator.timings["shared_context_serial_median"], 1e-9
    )
    # The deterministic guarantee: one shared context per binary decodes each
    # instruction once, where the uncached pass re-decodes per detector run.
    assert shared_decodes * 2 <= uncached_decodes, (
        f"expected the shared context to at least halve decode work, "
        f"got {uncached_decodes} -> {shared_decodes}"
    )
    # Wall clock follows; the median over alternating rounds keeps noise out.
    # Observed ~4.7x on the reference machine; 1.5x leaves CI headroom.
    assert speedup > 1.5, f"shared context should be much faster, got {speedup:.2f}x"
    evaluator.write_bench(
        "table3_comparison",
        cache_stats=shared_cache_stats,
        extra={
            "speedup_uncached_over_shared": round(speedup, 3),
            "uncached_seconds": [round(t, 3) for t in uncached_times],
            "shared_seconds": [round(t, 3) for t in shared_times],
            "raw_decodes_uncached": uncached_decodes,
            "raw_decodes_shared": shared_decodes,
        },
    )

    report_writer("table3_comparison", render_table3(results))

    average = results["Avg."]
    fetch = average["fetch"]
    # FETCH has the lowest combined error of all tools, and its error counts
    # are a tiny fraction of the function population (paper: best in every
    # column except Ofast accuracy).
    fetch_error = fetch.false_positives + fetch.false_negatives
    for name, cell in average.items():
        if name == "fetch":
            continue
        assert fetch_error <= cell.false_positives + cell.false_negatives, name
    assert fetch_error <= 0.01 * fetch.functions
    # The pattern-based tools show the paper's characteristic error profile:
    # BAP worst on false positives, the FDE-based tools (ghidra/angr) close to
    # FETCH on coverage but carrying the FDE cold-part false positives, which
    # FETCH alone fixes.
    assert average["bap"].false_positives >= average["ida"].false_positives
    assert average["ghidra"].false_positives >= fetch.false_positives
    assert average["angr"].false_positives >= fetch.false_positives
    assert average["angr"].false_negatives <= average["dyninst"].false_negatives
