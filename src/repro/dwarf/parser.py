"""``.eh_frame`` section parser.

Parses CIE and FDE records, resolving PC-relative pointer encodings against
the section load address.  Each entry's CFI program is *validated* eagerly
(so malformed programs fail at parse time, exactly as when they were decoded
eagerly) but carried as a :class:`~repro.dwarf.cfi.LazyCfiProgram` that
builds its :class:`~repro.dwarf.cfi.CfiInstruction` objects only when first
iterated — most detector runs never look past the FDE headers and the
opcode-level stack-height scan.
"""

from __future__ import annotations

import struct
from typing import Callable

from repro.dwarf import constants as C
from repro.dwarf.cfi import LazyCfiProgram, scan_cfi_program
from repro.dwarf.leb128 import decode_sleb128, decode_uleb128
from repro.dwarf.structs import CieRecord, FdeRecord


class EhFrameParseError(ValueError):
    """Raised when the ``.eh_frame`` section is malformed."""


#: ``address -> pointer value`` memory accessor used to resolve
#: ``DW_EH_PE_indirect`` pointers; ``None`` means the address is unmapped.
Dereferencer = Callable[[int], "int | None"]


def _read_encoded(
    data: bytes,
    pos: int,
    encoding: int,
    field_address: int,
    deref: Dereferencer | None = None,
) -> tuple[int, int]:
    """Read one encoded pointer, returning ``(value, new_pos)``."""
    if encoding == C.DW_EH_PE_omit:
        return 0, pos
    fmt = encoding & 0x0F
    if fmt == C.DW_EH_PE_uleb128:
        value, pos = decode_uleb128(data, pos)
    elif fmt == C.DW_EH_PE_sleb128:
        value, pos = decode_sleb128(data, pos)
    elif fmt == C.DW_EH_PE_udata2:
        value = struct.unpack_from("<H", data, pos)[0]
        pos += 2
    elif fmt == C.DW_EH_PE_sdata2:
        value = struct.unpack_from("<h", data, pos)[0]
        pos += 2
    elif fmt == C.DW_EH_PE_udata4:
        value = struct.unpack_from("<I", data, pos)[0]
        pos += 4
    elif fmt == C.DW_EH_PE_sdata4:
        value = struct.unpack_from("<i", data, pos)[0]
        pos += 4
    elif fmt in (C.DW_EH_PE_udata8, C.DW_EH_PE_absptr):
        value = struct.unpack_from("<Q", data, pos)[0]
        pos += 8
    elif fmt == C.DW_EH_PE_sdata8:
        value = struct.unpack_from("<q", data, pos)[0]
        pos += 8
    else:
        raise EhFrameParseError(f"unsupported pointer format {fmt:#x}")

    application = encoding & 0x70
    if application == C.DW_EH_PE_pcrel:
        value += field_address
    elif application not in (C.DW_EH_PE_absptr,):
        raise EhFrameParseError(f"unsupported pointer application {application:#x}")

    if encoding & C.DW_EH_PE_indirect:
        # The computed value is the address of a slot holding the real
        # pointer (GCC uses this for personality routines in PIC code).
        # Without a memory accessor the slot cannot be dereferenced; treating
        # the slot address as the pointer would be silently wrong.
        if deref is None:
            raise EhFrameParseError(
                f"indirect pointer at {field_address:#x} requires memory access"
            )
        resolved = deref(value)
        if resolved is None:
            raise EhFrameParseError(
                f"indirect pointer slot {value:#x} is unmapped"
            )
        value = resolved
    return value, pos


def parse_eh_frame(
    data: bytes, section_address: int, *, deref: Dereferencer | None = None
) -> tuple[list[CieRecord], list[FdeRecord]]:
    """Parse an ``.eh_frame`` section.

    Args:
        data: raw section contents.
        section_address: virtual address the section is loaded at (needed to
            resolve PC-relative pointers).
        deref: optional memory accessor resolving ``DW_EH_PE_indirect``
            pointer slots (``address -> value``); without one, indirect
            encodings raise :class:`EhFrameParseError` instead of silently
            decoding to the slot address.

    Returns:
        ``(cies, fdes)`` in file order.
    """
    cies: dict[int, CieRecord] = {}
    fdes: list[FdeRecord] = []
    pos = 0

    while pos + 4 <= len(data):
        entry_offset = pos
        try:
            (length,) = struct.unpack_from("<I", data, pos)
            pos += 4
            if length == 0:
                break
            if length == 0xFFFFFFFF:
                raise EhFrameParseError("64-bit DWARF entries are not supported")
            entry_end = pos + length
            if entry_end > len(data):
                raise EhFrameParseError("entry length exceeds section size")

            (cie_id,) = struct.unpack_from("<I", data, pos)
            id_field_offset = pos
            pos += 4

            if cie_id == 0:
                cie = _parse_cie(data, pos, entry_end, entry_offset, section_address, deref)
                cies[entry_offset] = cie
            else:
                cie_offset = id_field_offset - cie_id
                cie = cies.get(cie_offset)
                if cie is None:
                    raise EhFrameParseError(
                        f"FDE at {entry_offset:#x} references unknown CIE at {cie_offset:#x}"
                    )
                fdes.append(
                    _parse_fde(data, pos, entry_end, entry_offset, cie, section_address, deref)
                )
            pos = entry_end
        except EhFrameParseError:
            raise
        # Corrupt sections must fail as *parse errors*, never as the raw
        # struct/index/decode faults malformed lengths and truncated
        # pointers bottom out in.  EhFrameParseError subclasses ValueError,
        # hence the re-raise clause above this one.
        except (struct.error, ValueError, IndexError, KeyError, OverflowError) as error:
            raise EhFrameParseError(
                f"malformed .eh_frame entry at {entry_offset:#x}: "
                f"{type(error).__name__}: {error}"
            ) from error

    return list(cies.values()), fdes


def _parse_cie(
    data: bytes,
    pos: int,
    entry_end: int,
    entry_offset: int,
    section_address: int = 0,
    deref: Dereferencer | None = None,
) -> CieRecord:
    version = data[pos]
    pos += 1
    if version not in (1, 3, 4):
        raise EhFrameParseError(f"unsupported CIE version {version}")

    end = data.index(b"\x00", pos)
    augmentation = data[pos:end].decode("ascii")
    pos = end + 1

    if version == 4:
        pos += 2  # address size + segment selector size

    code_alignment, pos = decode_uleb128(data, pos)
    data_alignment, pos = decode_sleb128(data, pos)
    if version == 1:
        return_address_register = data[pos]
        pos += 1
    else:
        return_address_register, pos = decode_uleb128(data, pos)

    fde_pointer_encoding = C.DW_EH_PE_absptr
    if augmentation.startswith("z"):
        aug_length, pos = decode_uleb128(data, pos)
        aug_end = pos + aug_length
        for char in augmentation[1:]:
            if char == "R":
                fde_pointer_encoding = data[pos]
                pos += 1
            elif char == "L":
                pos += 1  # LSDA encoding byte
            elif char == "P":
                personality_encoding = data[pos]
                pos += 1
                _, pos = _read_encoded(
                    data, pos, personality_encoding, section_address + pos, deref
                )
            elif char == "S":
                pass  # signal frame marker, no data
            else:
                break
        pos = aug_end

    # Validate the program bytes now — the parser's error envelope must not
    # depend on when (or whether) the program is first decoded — but defer
    # the instruction-object construction until someone iterates it.
    raw_program = data[pos:entry_end]
    scan_cfi_program(raw_program)
    instructions = LazyCfiProgram(
        raw_program, code_alignment=code_alignment, data_alignment=data_alignment
    )
    return CieRecord(
        offset=entry_offset,
        version=version,
        augmentation=augmentation,
        code_alignment=code_alignment,
        data_alignment=data_alignment,
        return_address_register=return_address_register,
        fde_pointer_encoding=fde_pointer_encoding,
        initial_instructions=instructions,
    )


def _parse_fde(
    data: bytes,
    pos: int,
    entry_end: int,
    entry_offset: int,
    cie: CieRecord,
    section_address: int,
    deref: Dereferencer | None = None,
) -> FdeRecord:
    encoding = cie.fde_pointer_encoding
    pc_begin, pos = _read_encoded(data, pos, encoding, section_address + pos, deref)
    # The PC range is a length, not a pointer: it is read with the CIE
    # encoding's format but always as an unsigned quantity and with no
    # application (a signed read would make ranges >= 2**31 negative).
    pc_range, pos = _read_encoded(
        data, pos, C.unsigned_pointer_format(encoding), section_address + pos
    )
    if pc_begin < 0:
        # A signed pointer read of corrupt data can go negative; no real
        # function lives at a negative address.
        raise EhFrameParseError(f"FDE at {entry_offset:#x} has a negative PC begin")
    if pc_range < 0:
        raise EhFrameParseError(f"FDE at {entry_offset:#x} has a negative PC range")

    lsda = None
    if cie.augmentation.startswith("z"):
        aug_length, pos = decode_uleb128(data, pos)
        pos += aug_length

    raw_program = data[pos:entry_end]
    scan_cfi_program(raw_program)
    instructions = LazyCfiProgram(
        raw_program,
        code_alignment=cie.code_alignment,
        data_alignment=cie.data_alignment,
    )
    return FdeRecord(
        offset=entry_offset,
        cie=cie,
        pc_begin=pc_begin,
        pc_range=pc_range,
        instructions=instructions,
        lsda=lsda,
    )
