"""Ablation — why function-pointer candidates must be validated (§IV-E).

The pointer collection is deliberately a super-set (every 8-byte window plus
every code constant).  Taking that super-set at face value would flood the
result with false function starts; the conservative validation keeps exactly
the legitimate ones.  This benchmark compares three policies: no pointer
stage at all, validated pointers (FETCH), and accepting every candidate.
"""

from repro.analysis.recursive import RecursiveDisassembler
from repro.analysis.xrefs import collect_potential_pointers, validate_function_pointer
from repro.core.fde_source import extract_fde_starts
from repro.eval.metrics import CorpusMetrics, compute_metrics


def run_policies(corpus):
    policies = {"no pointer stage": CorpusMetrics(), "validated pointers": CorpusMetrics(),
                "accept all candidates": CorpusMetrics()}
    for binary in corpus:
        image = binary.image
        seeds = extract_fde_starts(image)
        disassembly = RecursiveDisassembler(image).disassemble(seeds)
        base = set(seeds) | {
            t for t in disassembly.call_targets if image.is_executable_address(t)
        }
        candidates = {
            c for c in collect_potential_pointers(image, disassembly) if c not in base
        }
        validated = {
            c for c in candidates if validate_function_pointer(image, c, disassembly, base)
        }
        truth = binary.ground_truth
        policies["no pointer stage"].add(compute_metrics(truth, base))
        policies["validated pointers"].add(compute_metrics(truth, base | validated))
        policies["accept all candidates"].add(compute_metrics(truth, base | candidates))
    return policies


def render(policies):
    lines = ["Ablation — function-pointer validation (§IV-E)", "-" * 60]
    lines.append(f"{'policy':<26} {'FP':>10} {'FN':>8}")
    for label, metrics in policies.items():
        lines.append(
            f"{label:<26} {metrics.total_false_positives:>10d} "
            f"{metrics.total_false_negatives:>8d}"
        )
    return "\n".join(lines)


def test_ablation_pointer_validation(benchmark, selfbuilt_corpus_small, report_writer):
    policies = benchmark.pedantic(
        run_policies, args=(selfbuilt_corpus_small,), rounds=1, iterations=1
    )
    report_writer("ablation_xref", render(policies))

    none = policies["no pointer stage"]
    validated = policies["validated pointers"]
    everything = policies["accept all candidates"]

    # Validation only ever adds true functions (coverage up, no new FPs).
    assert validated.total_false_negatives <= none.total_false_negatives
    assert validated.total_false_positives <= none.total_false_positives
    # Taking the raw super-set is catastrophic for accuracy.
    assert everything.total_false_positives > 10 * max(validated.total_false_positives, 1)
