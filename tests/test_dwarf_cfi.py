"""Tests for CFI instruction encoding/decoding."""

from hypothesis import given
from hypothesis import strategies as st

from repro.dwarf import cfi
from repro.dwarf import constants as C
from repro.dwarf.cfi import decode_cfi_program, encode_cfi_program


def roundtrip(instructions, **kwargs):
    return decode_cfi_program(encode_cfi_program(instructions, **kwargs), **kwargs)


def test_def_cfa_roundtrip():
    program = [cfi.def_cfa(C.DWARF_REG_RSP, 8)]
    assert roundtrip(program) == program


def test_offset_uses_data_alignment_factoring():
    program = [cfi.offset(C.DWARF_REG_RBP, -16)]
    encoded = encode_cfi_program(program)
    # Primary opcode DW_CFA_offset | reg, factored offset 2 (= -16 / -8).
    assert encoded[0] == C.DW_CFA_offset | C.DWARF_REG_RBP
    assert encoded[1] == 2
    assert roundtrip(program) == program


def test_advance_loc_width_selection():
    small = encode_cfi_program([cfi.advance_loc(1)])
    assert small == bytes([C.DW_CFA_advance_loc | 1])
    medium = encode_cfi_program([cfi.advance_loc(0x80)])
    assert medium[0] == C.DW_CFA_advance_loc1
    large = encode_cfi_program([cfi.advance_loc(0x1234)])
    assert large[0] == C.DW_CFA_advance_loc2
    huge = encode_cfi_program([cfi.advance_loc(0x12345)])
    assert huge[0] == C.DW_CFA_advance_loc4
    for delta in (1, 0x80, 0x1234, 0x12345):
        assert roundtrip([cfi.advance_loc(delta)]) == [cfi.advance_loc(delta)]


def test_high_register_numbers_use_extended_forms():
    program = [cfi.offset(40, -24), cfi.restore(40)]
    assert roundtrip(program) == program


def test_positive_register_offset_uses_signed_extended_form():
    # A register saved above the CFA (rare but legal) needs the _sf form.
    program = [cfi.offset(C.DWARF_REG_RBX if hasattr(C, "DWARF_REG_RBX") else 3, 16)]
    assert roundtrip(program) == program


def test_expression_forms_roundtrip():
    program = [
        cfi.def_cfa_expression(b"\x77\x08"),
        cfi.expression(12, b"\x90\x01"),
    ]
    assert roundtrip(program) == program


def test_state_and_misc_instructions_roundtrip():
    program = [
        cfi.remember_state(),
        cfi.def_cfa_offset(32),
        cfi.restore_state(),
        cfi.nop(),
        cfi.CfiInstruction("undefined", (3,)),
        cfi.CfiInstruction("same_value", (12,)),
        cfi.CfiInstruction("register", (3, 12)),
        cfi.CfiInstruction("gnu_args_size", (16,)),
    ]
    assert roundtrip(program) == program


def test_figure4_style_program_roundtrips():
    """The FDE program from the paper's Figure 4b."""
    program = [
        cfi.advance_loc(1), cfi.def_cfa_offset(16), cfi.offset(6, -16),
        cfi.advance_loc(12), cfi.def_cfa_offset(24), cfi.offset(3, -24),
        cfi.advance_loc(11), cfi.def_cfa_offset(32),
        cfi.advance_loc(29), cfi.def_cfa_offset(24),
        cfi.advance_loc(1), cfi.def_cfa_offset(16),
        cfi.advance_loc(1), cfi.def_cfa_offset(8),
    ]
    assert roundtrip(program) == program


_INSTRUCTION = st.one_of(
    st.builds(cfi.def_cfa, st.integers(0, 16), st.integers(0, 1 << 16)),
    st.builds(cfi.def_cfa_register, st.integers(0, 16)),
    st.builds(cfi.def_cfa_offset, st.integers(0, 1 << 20)),
    st.builds(cfi.advance_loc, st.integers(1, 1 << 20)),
    st.builds(cfi.offset, st.integers(0, 63), st.integers(-64, 0).map(lambda v: v * 8)),
    st.builds(cfi.restore, st.integers(0, 63)),
    st.just(cfi.nop()),
    st.just(cfi.remember_state()),
    st.just(cfi.restore_state()),
)


@given(st.lists(_INSTRUCTION, max_size=30))
def test_arbitrary_programs_roundtrip(program):
    assert roundtrip(program) == program
