"""Tests for the decoded-span cache layer and the lazy CFI decode.

Two properties anchor the one-decode cold pipeline:

* the span layer is an *optimisation*, never a semantic change — detector
  output is byte-identical with ``REPRO_SPAN_CACHE=0`` (checked through a
  subprocess, because the escape hatch is read at import time);
* ``.eh_frame`` parsing validates CFI programs without decoding them —
  ``decode_cfi_program`` runs only when a CFA row is actually queried.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import AnalysisContext, FetchDetector
from repro.elf.image import BinaryImage
from repro.synth import build_scenario_corpus

_SRC = str(Path(__file__).resolve().parent.parent / "src")

# Runs one small corpus through the detector and prints a deep digest of
# everything the pipeline produced.  Executed as a subprocess once per
# REPRO_SPAN_CACHE setting; any divergence between the span-cached and the
# per-instruction pipeline shows up as differing JSON.
_CAPTURE_SCRIPT = r"""
import hashlib, json, sys
from repro.core import AnalysisContext, FetchDetector
from repro.elf.image import BinaryImage
from repro.synth import build_scenario_corpus

out = {}
for binary in build_scenario_corpus("vanilla", scale=0.25, programs=2, seed=11):
    image = BinaryImage(elf=binary.image.elf, name=binary.name)
    result = FetchDetector().detect(image, AnalysisContext(image))
    digest = {"starts": sorted(result.function_starts)}
    removed = getattr(result, "removed_by_stage", None)
    if removed:
        digest["removed"] = {k: sorted(v) for k, v in removed.items()}
    disassembly = getattr(result, "disassembly", None)
    if disassembly is not None:
        h = hashlib.sha256()
        for address in sorted(disassembly.instructions):
            insn = disassembly.instructions[address]
            h.update(f"{address}:{insn.mnemonic}:{insn.data.hex()};".encode())
        digest["instructions"] = h.hexdigest()
        digest["code_constants"] = sorted(disassembly.code_constants)
    out[binary.name] = digest
json.dump(out, sys.stdout, sort_keys=True)
"""


def _capture(span_cache: str) -> dict:
    env = dict(os.environ)
    env["REPRO_SPAN_CACHE"] = span_cache
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", _CAPTURE_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(completed.stdout)


def test_span_cache_output_parity_with_disabled_layer():
    """Detector output is byte-identical with the span layer disabled."""
    assert _capture("1") == _capture("0")


@pytest.fixture(scope="module")
def small_binary():
    return build_scenario_corpus("vanilla", scale=0.25, programs=1, seed=11)[0]


def test_span_index_holds_span_starts_only(small_binary):
    """Interior span addresses resolve through the decode cache, not the
    index: ``span_at`` answers ``None`` for them while ``decode`` still
    serves the instruction, and every index entry keys a span's first
    instruction."""
    image = BinaryImage(elf=small_binary.image.elf, name=small_binary.name)
    context = AnalysisContext(image)
    if context._span_index is None:
        pytest.skip("span layer disabled via REPRO_SPAN_CACHE=0")
    FetchDetector().detect(image, context)
    assert context._span_index, "cold detection built no spans"
    interior_seen = 0
    for start, span in context._span_index.items():
        assert span.insns[0].address == start
        for insn in span.insns:
            assert context.decode_cache.get(insn.address) is insn
        for insn in span.insns[1:]:
            if insn.address in context._span_index:
                continue  # a later walk started a span at this address
            assert context.span_at(insn.address) is None
            assert context.decode(insn.address) is insn
            interior_seen += 1
    assert interior_seen > 0


def test_cfi_programs_decode_only_when_rows_are_queried(small_binary, monkeypatch):
    """``parse_eh_frame`` and the completeness scan never build
    ``CfiInstruction`` objects; the first CFA row query does."""
    import repro.dwarf.cfi as cfi

    calls = []
    real = cfi.decode_cfi_program

    def counting(raw, **kwargs):
        calls.append(len(raw))
        return real(raw, **kwargs)

    monkeypatch.setattr(cfi, "decode_cfi_program", counting)

    image = BinaryImage(elf=small_binary.image.elf, name=small_binary.name)
    fdes = image.fdes  # parses .eh_frame (validation scan only)
    assert fdes, "test binary must carry .eh_frame"
    assert calls == []

    context = AnalysisContext(image)
    fde = fdes[0]
    table = context.cfa_table(fde)
    # The §V-B conservativeness gate runs on raw CFI bytes.
    table.has_complete_stack_height
    assert calls == []

    # The first actual row query forces the decode.
    table.stack_height_at(fde.pc_begin)
    assert calls
