"""Assembler ↔ disassembler round-trip fuzz.

Randomized instruction streams — with instruction mixes weighted by the
synthetic build profiles from :mod:`repro.synth.profiles` — are encoded
through :class:`repro.x86.assembler.Assembler` and batch-decoded with
:func:`repro.x86.disassembler.decode_block`.  Every decoded instruction must
reproduce the intended mnemonic, operand tuple and operand size
field-identically, and consume exactly the bytes the assembler emitted.

This is the safety net under the table-driven decoder rewrite: the encoder
and decoder were written independently against the ISA manual, so any
encode/decode disagreement the generator can reach fails loudly here.
"""

from __future__ import annotations

import random

import pytest

from repro.synth.profiles import CompilerFamily, OptLevel, default_profile
from repro.x86.assembler import Assembler
from repro.x86.disassembler import decode_block, decode_instruction
from repro.x86.operands import Imm, Mem
from repro.x86.registers import GPR64, RSP

asm = Assembler()

BASE = 0x401000

#: condition codes shared by the assembler (``jcc_rel*``) and the decoder
#: (which names the instruction ``j`` + code).
_CC = ("o", "no", "b", "ae", "e", "ne", "be", "a",
       "s", "ns", "p", "np", "l", "ge", "le", "g")

#: registers usable as a SIB index (anything but rsp).
_INDEX_POOL = tuple(reg for reg in GPR64 if reg is not RSP)


class _Rel:
    """Placeholder for a relative-branch target, resolved at layout time.

    The decoder reports relative branches as an absolute ``Imm(target, 8)``
    where ``target = end-of-instruction + rel``; the end address is only
    known once the stream is laid out.
    """

    __slots__ = ("rel",)

    def __init__(self, rel: int):
        self.rel = rel


def _random_mem(rng: random.Random) -> Mem:
    """A random memory operand covering every addressing shape we encode."""
    shape = rng.randrange(6)
    disp = rng.choice(
        (0, rng.randint(-128, 127), rng.randint(-(2**31), 2**31 - 1))
    )
    if shape == 0:  # RIP-relative
        return Mem(disp=rng.randint(-(2**31), 2**31 - 1), rip_relative=True)
    if shape == 1:  # absolute disp32
        return Mem(disp=disp)
    if shape == 2:  # index-only (jump-table style)
        return Mem(index=rng.choice(_INDEX_POOL), scale=rng.choice((1, 2, 4, 8)), disp=disp)
    base = rng.choice(GPR64)
    if shape == 3:  # base only
        return Mem(base=base, disp=disp)
    if shape == 4:  # base + index
        return Mem(base=base, index=rng.choice(_INDEX_POOL), scale=rng.choice((1, 2, 4, 8)),
                   disp=disp)
    return Mem(base=base, disp=rng.randint(-128, 127))  # base + disp8


def _emit_one(category: str, rng: random.Random, profile) -> tuple[bytes, str, tuple, int]:
    """Encode one random instruction; returns ``(bytes, mnemonic, operands, osize)``.

    Operand tuples may contain :class:`_Rel` placeholders.
    """
    reg = rng.choice(GPR64)
    other = rng.choice(GPR64)
    if category == "stack":
        kind = rng.randrange(3)
        if kind == 0:
            return asm.push(reg), "push", (reg,), 8
        if kind == 1:
            return asm.pop(reg), "pop", (reg,), 8
        return asm.leave(), "leave", (), 8
    if category == "mov_rr":
        return asm.mov_rr(reg, other), "mov", (reg, other), 8
    if category == "mov_ri":
        kind = rng.randrange(3)
        if kind == 0:  # sign-extended imm32 form
            value = rng.randint(-(2**31), 2**31 - 1)
            return asm.mov_ri(reg, value), "mov", (reg, Imm(value, 4)), 8
        if kind == 1:  # movabs
            value = rng.choice((1, -1)) * rng.randint(2**31, 2**62)
            return asm.mov_ri(reg, value), "mov", (reg, Imm(value, 8)), 8
        value = rng.randint(0, 2**31 - 1)  # 32-bit form zero-extends
        return asm.mov_ri32(reg, value), "mov", (reg, Imm(value, 4)), 4
    if category == "alu_ri":
        op = rng.choice(("add", "or", "and", "sub", "cmp"))
        encode = getattr(asm, f"{op}_ri")
        if rng.random() < 0.5:
            value = rng.randint(-128, 127)
            return encode(reg, value), op, (reg, Imm(value, 1)), 8
        value = rng.choice((1, -1)) * rng.randint(128, 2**31 - 1)
        return encode(reg, value), op, (reg, Imm(value, 4)), 8
    if category == "alu_rr":
        op = rng.choice(("add", "sub", "xor", "cmp", "test"))
        if op == "xor" and rng.random() < 0.3:
            return asm.xor_rr32(reg, other), "xor", (reg, other), 4
        return getattr(asm, f"{op}_rr")(reg, other), op, (reg, other), 8
    if category == "mem":
        mem = _random_mem(rng)
        kind = rng.randrange(3)
        if kind == 0:
            return asm.mov_load(reg, mem), "mov", (reg, mem), 8
        if kind == 1:
            return asm.mov_store(mem, reg), "mov", (mem, reg), 8
        return asm.movsxd_load(reg, mem), "movsxd", (reg, mem), 8
    if category == "lea":
        mem = _random_mem(rng)
        return asm.lea(reg, mem), "lea", (reg, mem), 8
    if category == "wide":
        if rng.random() < 0.5:
            return asm.movsxd(reg, other), "movsxd", (reg, other), 8
        return asm.imul_rr(reg, other), "imul", (reg, other), 8
    if category == "shift":
        amount = rng.randint(0, 63)
        if rng.random() < 0.5:
            return asm.shl_ri(reg, amount), "shl", (reg, Imm(amount, 1)), 8
        return asm.sar_ri(reg, amount), "sar", (reg, Imm(amount, 1)), 8
    if category == "branch":
        kind = rng.randrange(4)
        if kind == 0:
            rel = rng.randint(-(2**31), 2**31 - 1)
            return asm.call_rel32(rel), "call", (_Rel(rel),), 8
        if kind == 1:
            rel = rng.randint(-(2**31), 2**31 - 1)
            return asm.jmp_rel32(rel), "jmp", (_Rel(rel),), 8
        if kind == 2:
            rel = rng.randint(-128, 127)
            return asm.jmp_rel8(rel), "jmp", (_Rel(rel),), 8
        cc = rng.choice(_CC)
        if rng.random() < 0.5:
            rel = rng.randint(-128, 127)
            return asm.jcc_rel8(cc, rel), "j" + cc, (_Rel(rel),), 8
        rel = rng.randint(-(2**31), 2**31 - 1)
        return asm.jcc_rel32(cc, rel), "j" + cc, (_Rel(rel),), 8
    if category == "indirect":
        kind = rng.randrange(4)
        if kind == 0:
            return asm.call_reg(reg), "call", (reg,), 8
        if kind == 1:
            return asm.jmp_reg(reg), "jmp", (reg,), 8
        mem = _random_mem(rng)
        if kind == 2:
            return asm.call_mem(mem), "call", (mem,), 8
        return asm.jmp_mem(mem), "jmp", (mem,), 8
    assert category == "misc"
    kind = rng.randrange(5 if profile.emits_endbr else 4)
    if kind == 0:
        return asm.ret(), "ret", (), 8
    if kind == 1:
        return asm.syscall(), "syscall", (), 8
    if kind == 2:  # one aligned-length NOP chunk (each chunk is one insn)
        length = rng.randint(1, 9)
        return asm.nop(length), "nop", (), 8
    if kind == 3:
        return b"\xcc", "int3", (), 8
    return asm.endbr64(), "endbr64", (), 8


def _profile_weights(profile) -> tuple[tuple[str, ...], tuple[float, ...]]:
    """Category weights for one build profile.

    The profile rates steer the mix the same way they steer the synthetic
    compiler: more tail calls / cold splits mean more branches, jump tables
    mean more indirect transfers, frame pointers mean more stack traffic,
    dense ``Os`` alignment means fewer padding NOPs.
    """
    weights = {
        "stack": 8 + 20 * profile.frame_pointer_rate,
        "mov_rr": 12.0,
        "mov_ri": 10.0,
        "alu_ri": 10.0,
        "alu_rr": 10.0,
        "mem": 14.0,
        "lea": 6.0,
        "wide": 4.0,
        "shift": 4.0,
        "branch": 6 + 40 * (profile.tail_call_rate + profile.cold_split_rate),
        "indirect": 2 + 50 * profile.jump_table_rate,
        "misc": 2 + profile.function_alignment / 8,
    }
    return tuple(weights), tuple(weights.values())


def _generate_stream(profile, rng: random.Random, count: int):
    """Encode ``count`` random instructions; returns ``(code, records)``.

    Each record is ``(address, encoding, mnemonic, operands, osize)`` with
    ``_Rel`` placeholders already resolved against the final layout.
    """
    categories, weights = _profile_weights(profile)
    records = []
    address = BASE
    chunks = []
    for category in rng.choices(categories, weights=weights, k=count):
        encoding, mnemonic, operands, osize = _emit_one(category, rng, profile)
        end = address + len(encoding)
        operands = tuple(
            Imm(end + op.rel, 8) if isinstance(op, _Rel) else op for op in operands
        )
        records.append((address, encoding, mnemonic, operands, osize))
        chunks.append(encoding)
        address = end
    return b"".join(chunks), records


_PROFILES = [
    default_profile(compiler, opt_level)
    for compiler in CompilerFamily
    for opt_level in OptLevel
]


@pytest.mark.parametrize(
    "profile", _PROFILES, ids=[f"{p.compiler.value}-{p.opt_level.value}" for p in _PROFILES]
)
def test_roundtrip_stream_is_field_identical(profile):
    rng = random.Random(f"{profile.compiler.value}:{profile.opt_level.value}")
    code, records = _generate_stream(profile, rng, count=300)

    decoded, failed = decode_block(code, 0, BASE, len(records))
    assert not failed, f"decode failed after {len(decoded)} of {len(records)} instructions"
    assert len(decoded) == len(records)

    for insn, (address, encoding, mnemonic, operands, osize) in zip(decoded, records):
        context = f"at {address:#x}: {encoding.hex()} (expected {mnemonic})"
        assert insn.address == address, context
        assert insn.data == encoding, context
        assert insn.end == address + len(encoding), context
        assert insn.mnemonic == mnemonic, context
        assert insn.operands == operands, context
        assert insn.operand_size == osize, context


@pytest.mark.parametrize(
    "profile",
    _PROFILES[:2],
    ids=[f"{p.compiler.value}-{p.opt_level.value}" for p in _PROFILES[:2]],
)
def test_decode_block_agrees_with_single_instruction_path(profile):
    """The batch loop inlines ``_decode_one``; both paths must stay in sync."""
    rng = random.Random(f"single:{profile.compiler.value}:{profile.opt_level.value}")
    code, records = _generate_stream(profile, rng, count=200)

    batch, failed = decode_block(code, 0, BASE, len(records))
    assert not failed
    for insn in batch:
        single = decode_instruction(code, insn.address - BASE, insn.address)
        assert single.mnemonic == insn.mnemonic
        assert single.operands == insn.operands
        assert single.operand_size == insn.operand_size
        assert single.data == insn.data
        assert single.end == insn.end
        assert single._flags == insn._flags
