"""The persistent detection service.

:class:`DetectionService` turns the repository's batch-evaluation substrate
— the detector registry, the content-addressed :class:`ArtifactStore` and
the :mod:`repro.eval.executor` fan-out — into a process that stays up and
serves detection requests:

* a long-lived :class:`~repro.eval.executor.ShardedWorkerPool` survives
  across batches, so worker start-up is paid once per service, not per
  request;
* incoming binaries are sharded across workers by content digest, so
  duplicate submissions serialise behind each other and dedupe against the
  store (or the in-memory memo) before any detector runs;
* jobs move through queued → running → done states with per-job progress,
  and admission is bounded: a full queue either blocks the submitter or
  rejects the batch (:class:`ServiceSaturated`), per the configured
  backpressure policy;
* results stream — :meth:`JobHandle.results` yields each
  :class:`EntryResult` (with :class:`~repro.eval.metrics.BinaryMetrics`
  when ground truth is available) as it completes, not when the batch ends.

A failure is always entry-scoped: an unreadable file or a detector raising
mid-batch produces an ``error`` result for that entry alone, and every
other entry of the job completes normally.

The service is exposed two ways: this in-process Python API, and the
JSON-lines front-end in :mod:`repro.service.protocol` behind the
``fetch-detect serve`` / ``fetch-detect submit`` CLI verbs.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro.core.context import AnalysisContext
from repro.core.registry import create_detectors
from repro.elf.image import BinaryImage
from repro.eval.executor import ShardedWorkerPool
from repro.eval.metrics import BinaryMetrics, compute_metrics
from repro.resilience import faults
from repro.resilience.policy import (
    CircuitBreaker,
    CircuitOpen,
    ResilienceConfig,
    call_with_timeout,
    failure_record,
)
from repro.store import ArtifactStore, blob_digest, digest_of_binary, options_digest


class ServiceSaturated(RuntimeError):
    """Raised by :meth:`DetectionService.submit` under the ``reject`` policy
    when admitting the batch would overflow the bounded queue."""


class ServiceClosed(RuntimeError):
    """Raised when submitting to a service that has been closed."""


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of a :class:`DetectionService`.

    ``queue_limit`` bounds the number of *entries* (binaries) queued or
    running across all jobs; ``0`` disables the bound.  ``backpressure``
    picks what :meth:`~DetectionService.submit` does when the bound is hit:
    ``"block"`` admits entries one at a time as workers free capacity (the
    submitter waits), ``"reject"`` refuses the whole batch atomically with
    :class:`ServiceSaturated` — nothing is partially enqueued.

    ``resilience`` bundles the failure-handling knobs (detector retries and
    timeout, store-operation retries, per-detector circuit breakers); the
    default keeps retries on and breakers/timeouts off.
    """

    workers: int = 2
    queue_limit: int = 256
    backpressure: str = "block"  # or "reject"
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)

    def __post_init__(self) -> None:
        if self.backpressure not in ("block", "reject"):
            raise ValueError(
                f"backpressure must be 'block' or 'reject', got {self.backpressure!r}"
            )


@dataclass
class EntryResult:
    """One (binary × detector) outcome, streamed as it completes."""

    name: str
    digest: str
    detector: str
    #: served from the store / in-memory memo without running the detector
    cached: bool = False
    function_starts: tuple[int, ...] = ()
    #: ground-truth comparison, when the submission carried ground truth
    metrics: BinaryMetrics | None = None
    #: ``None`` on success; a one-line ``Type: message`` rendering otherwise
    error: str | None = None
    #: structured degradation record (site, kind, attempts, …) when the
    #: unit failed — or when it *succeeded* but a store operation degraded
    failure: dict[str, Any] | None = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


class JobHandle:
    """Observer handle for one submitted batch.

    Completed results accumulate on the handle, so :meth:`results` can be
    consumed concurrently with the workers and re-iterated afterwards;
    :meth:`wait` blocks until the job is done.  All methods are safe to call
    from any thread.
    """

    def __init__(self, job_id: int, total: int):
        self.job_id = job_id
        self.total = total
        self._completed: list[EntryResult] = []
        self._started = False
        self._cond = threading.Condition()

    # -- state ----------------------------------------------------------
    @property
    def state(self) -> JobState:
        with self._cond:
            if len(self._completed) >= self.total:
                return JobState.DONE
            return JobState.RUNNING if self._started else JobState.QUEUED

    def progress(self) -> tuple[int, int]:
        """``(completed units, total units)`` — a unit is binary × detector."""
        with self._cond:
            return len(self._completed), self.total

    @property
    def errors(self) -> list[EntryResult]:
        """The failed results completed so far."""
        with self._cond:
            return [result for result in self._completed if not result.ok]

    # -- consumption ----------------------------------------------------
    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job is done; ``False`` on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while len(self._completed) < self.total:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    def results(self, timeout: float | None = None) -> Iterator[EntryResult]:
        """Yield each :class:`EntryResult` as it completes (completion order).

        Safe to call while workers are still running — the iterator blocks
        until the next result lands — and safe to call again afterwards (it
        replays the completed results).  ``timeout`` bounds the wait for
        each *next result* and raises ``TimeoutError`` when exceeded; the
        bound is a monotonic deadline, so spurious or unrelated condition
        wakeups spend the budget instead of restarting it.
        """
        index = 0
        while True:
            deadline = None if timeout is None else time.monotonic() + timeout
            with self._cond:
                while index >= len(self._completed) and index < self.total:
                    remaining = None if deadline is None else deadline - time.monotonic()
                    if remaining is not None and remaining <= 0:
                        raise TimeoutError(
                            f"job {self.job_id}: no result within {timeout}s "
                            f"({index}/{self.total} complete)"
                        )
                    self._cond.wait(remaining)
                if index >= self.total:
                    return
                result = self._completed[index]
            index += 1
            yield result

    # -- worker side ----------------------------------------------------
    def _mark_running(self) -> None:
        with self._cond:
            self._started = True

    def _complete(self, result: EntryResult) -> None:
        with self._cond:
            self._completed.append(result)
            self._cond.notify_all()


@dataclass
class _Entry:
    """One admitted binary: its identity, payload and (optional) truth."""

    name: str
    digest: str
    data: bytes = b""
    ground_truth: Any = None
    #: admission-time failure (unreadable file); detectors never run
    error: str | None = None
    image: BinaryImage | None = None
    context: AnalysisContext | None = field(default=None, repr=False)


class DetectionService:
    """A long-lived function-detection service over a shared worker pool.

    Wraps the substrate grown by the evaluation stack — detectors resolved
    by name through :mod:`repro.core.registry`, results cached by content
    digest in an :class:`ArtifactStore`, fan-out via
    :class:`~repro.eval.executor.ShardedWorkerPool` — behind a
    batch-submission API::

        with DetectionService(workers=4, store=ArtifactStore(".repro-store")) as service:
            handle = service.submit(paths, detectors=["fetch", "ghidra"])
            for result in handle.results():      # streamed as they complete
                print(result.name, result.detector, len(result.function_starts))

    Submissions may be file paths or in-memory corpus entries
    (:class:`~repro.synth.compiler.SyntheticBinary`); the latter carry
    ground truth, so their results include
    :class:`~repro.eval.metrics.BinaryMetrics`.  Identical binaries — within
    a batch, across batches, or across processes sharing the store — run a
    detector at most once: entries shard by content digest, and each unit
    checks the store (and an in-memory memo) before detecting.
    :attr:`detector_runs` counts the invocations that actually happened, so
    a warm batch can assert it did none.

    The service is built to stay up: its in-process state is bounded.
    Completed job handles are retained for :meth:`job` lookups only up to
    ``job_history`` (older done jobs are forgotten — handles already held
    by callers keep working), and the in-memory dedupe memo is an LRU
    capped at :attr:`MEMO_LIMIT` entries (the store provides the durable
    dedupe; the memo is just its hot cache).
    """

    #: maximum (digest, detector, options) → starts entries kept in memory
    MEMO_LIMIT = 4096

    def __init__(
        self,
        *,
        workers: int = 2,
        queue_limit: int = 256,
        backpressure: str = "block",
        store: ArtifactStore | None = None,
        job_history: int = 128,
        config: ServiceConfig | None = None,
        resilience: ResilienceConfig | None = None,
    ):
        self.config = config or ServiceConfig(
            workers=workers,
            queue_limit=queue_limit,
            backpressure=backpressure,
            resilience=resilience or ResilienceConfig(),
        )
        self.resilience = self.config.resilience
        self.store = store
        self.job_history = max(1, int(job_history))
        #: detector invocations actually performed (cache hits excluded)
        self.detector_runs = 0
        #: units served from the store or the in-memory memo
        self.cache_hits = 0
        #: detector invocations retried after a transient failure
        self.detector_retries = 0
        #: store reads/writes retried after a transient failure
        self.store_retries = 0
        #: units that failed after the policy gave up (structured ``failure``)
        self.degraded_units = 0
        #: successful units whose store write/read degraded (result unharmed)
        self.store_degraded = 0
        #: jobs ever submitted (the _jobs dict itself is bounded)
        self.jobs_submitted = 0
        self._jobs: OrderedDict[int, JobHandle] = OrderedDict()
        self._job_counter = 0
        self._pending_entries = 0
        self._closed = False
        self._lock = threading.Lock()
        self._admission = threading.Condition(self._lock)
        self._memo: OrderedDict[tuple[str, str, str], tuple[int, ...]] = OrderedDict()
        self._stats_baseline = store.stats_snapshot() if store is not None else {}
        self._detect_policy = self.resilience.detect_policy()
        self._store_policy = self.resilience.store_policy()
        self._breakers: dict[str, CircuitBreaker] = {}
        self._pool = ShardedWorkerPool(self.config.workers, name="detect-worker")

    # -- lifecycle ------------------------------------------------------
    def close(self, *, wait: bool = True) -> None:
        """Refuse new submissions and (with ``wait``) drain in-flight jobs."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._admission.notify_all()
        self._pool.close(wait=wait)

    def __enter__(self) -> "DetectionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission -----------------------------------------------------
    def submit(
        self,
        items: Iterable[Any],
        *,
        detectors: Sequence[Any] | None = None,
    ) -> JobHandle:
        """Admit a batch of binaries; returns a streaming :class:`JobHandle`.

        ``items`` are file paths (str/​``Path``) and/or in-memory
        ``SyntheticBinary`` corpus entries; ``detectors`` mixes registered
        names and detector instances (default: FETCH).  Admission honours
        the configured backpressure policy: ``reject`` refuses the whole
        batch atomically when it would overflow ``queue_limit``, ``block``
        admits entry by entry as capacity frees (so a batch larger than the
        queue simply pipelines through it).  File bytes are read only
        *after* an entry is admitted, so the bounded queue bounds in-flight
        memory too, not just worker backlog.
        """
        specs = create_detectors(detectors)
        pending_items = list(items)
        with self._lock:
            self._check_open()
            self._job_counter += 1
            self.jobs_submitted += 1
            job = JobHandle(self._job_counter, total=len(pending_items) * len(specs))
            self._jobs[job.job_id] = job
            self._evict_done_jobs()
        if job.total == 0:
            return job

        if self.config.backpressure == "reject" and self.config.queue_limit:
            with self._lock:
                self._check_open()
                if self._pending_entries + len(pending_items) > self.config.queue_limit:
                    # the stillborn job must not linger in the lookup table:
                    # it will never run, so it would never become evictable
                    del self._jobs[job.job_id]
                    raise ServiceSaturated(
                        f"queue limit {self.config.queue_limit} reached "
                        f"({self._pending_entries} pending, {len(pending_items)} submitted)"
                    )
                self._pending_entries += len(pending_items)
            for item in pending_items:
                self._dispatch(job, self._entry_for(item), specs)
            return job

        for index, item in enumerate(pending_items):
            # block policy: admit one entry at a time
            try:
                with self._admission:
                    self._check_open()
                    while (
                        self.config.queue_limit
                        and self._pending_entries >= self.config.queue_limit
                    ):
                        self._admission.wait()
                        self._check_open()
                    self._pending_entries += 1
            except ServiceClosed:
                # complete the unadmitted remainder as error units so handle
                # consumers (wait/results loop until total) never hang
                self._fail_items(job, pending_items[index:], specs,
                                 "service closed before admission")
                raise
            self._dispatch(job, self._entry_for(item), specs)
        return job

    def _fail_items(
        self, job: JobHandle, items: list[Any], specs: list[Any], reason: str
    ) -> None:
        """Complete every (item × detector) unit of ``items`` as an error."""
        for item in items:
            name = str(item) if isinstance(item, (str, Path)) else getattr(
                item, "name", repr(item)
            )
            for detector in specs:
                job._complete(
                    EntryResult(
                        name=name,
                        digest="",
                        detector=getattr(detector, "name", type(detector).__name__),
                        error=reason,
                    )
                )

    def _evict_done_jobs(self) -> None:
        """Forget the oldest *completed* jobs beyond ``job_history`` (locked).

        Handles already held by callers stay fully usable — eviction only
        drops the service's own :meth:`job` lookup reference."""
        if len(self._jobs) <= self.job_history:
            return
        for job_id in [
            job_id
            for job_id, job in self._jobs.items()
            if job.state is JobState.DONE
        ][: len(self._jobs) - self.job_history]:
            del self._jobs[job_id]

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceClosed("DetectionService is closed")

    def job(self, job_id: int) -> JobHandle:
        """Look a submitted job up by id (raises ``KeyError`` if unknown)."""
        with self._lock:
            return self._jobs[job_id]

    def _dispatch(self, job: JobHandle, entry: _Entry, specs: list[Any]) -> None:
        self._pool.submit(entry.digest, lambda: self._run_entry(job, entry, specs))

    def _entry_for(self, item: Any) -> _Entry:
        """Normalise a path or corpus entry into an admitted :class:`_Entry`.

        Bytes are read (and digested) at admission so sharding and dedupe
        key on content before any worker touches the entry; an unreadable
        path becomes an error entry whose units fail without running."""
        if isinstance(item, (str, Path)):
            path = str(item)
            try:
                data = Path(path).read_bytes()
            except OSError as error:
                return _Entry(name=path, digest="", error=f"{type(error).__name__}: {error}")
            return _Entry(name=path, digest=blob_digest(data), data=data)
        try:
            # an in-memory corpus entry: identity is the serialized ELF blob
            # (digest memoized on the object, so resubmission is digest-free)
            return _Entry(
                name=item.name,
                digest=digest_of_binary(item),
                data=b"",
                ground_truth=getattr(item, "ground_truth", None),
                image=item.image,
            )
        except Exception as error:  # noqa: BLE001 - admit as an error entry
            return _Entry(
                name=getattr(item, "name", repr(item)),
                digest="",
                error=f"unsubmittable item: {type(error).__name__}: {error}",
            )

    # -- worker side ----------------------------------------------------
    def _run_entry(self, job: JobHandle, entry: _Entry, specs: list[Any]) -> None:
        """Run every requested detector over one entry (on its shard thread).

        The entry's image is parsed and its :class:`AnalysisContext` built
        at most once, after the first cache miss — an entry fully served
        from the cache never parses at all.  Failures (admission errors,
        parse errors, a detector raising) are folded into that unit's
        :class:`EntryResult`; the job always completes all of its units.
        """
        job._mark_running()
        try:
            for detector in specs:
                started = time.perf_counter()
                detector_name = getattr(detector, "name", type(detector).__name__)
                result = EntryResult(
                    name=entry.name, digest=entry.digest, detector=detector_name
                )
                try:
                    if entry.error is not None:
                        result.error = entry.error
                    else:
                        self._detect_unit(entry, detector, detector_name, result)
                except Exception as error:  # noqa: BLE001 - entry-scoped failure
                    result.error = f"{type(error).__name__}: {error}"
                    if result.failure is None:
                        result.failure = failure_record(error, site="entry")
                result.seconds = time.perf_counter() - started
                job._complete(result)
        finally:
            entry.context = None  # decode caches die with the entry
            with self._admission:
                self._pending_entries -= 1
                self._admission.notify_all()

    def _breaker_for(self, detector_name: str) -> CircuitBreaker | None:
        if self.resilience.breaker_threshold <= 0:
            return None
        with self._lock:
            breaker = self._breakers.get(detector_name)
            if breaker is None:
                breaker = self.resilience.breaker()
                self._breakers[detector_name] = breaker
            return breaker

    def _count_retry(self, counter: str) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + 1)

    def _detect_unit(
        self, entry: _Entry, detector: Any, detector_name: str, result: EntryResult
    ) -> None:
        """One (binary × detector) unit, under the resilience policies.

        Failure handling is layered: the ``detect`` fault site and real
        detector errors go through :class:`RetryPolicy` (transient errors
        retry with backoff); a per-unit ``detector_timeout`` turns a wedged
        detector into a degraded unit; a per-detector circuit breaker fails
        repeat offenders fast.  A unit that exhausts its policy fails *only
        itself*, with a structured ``failure`` record.  Store reads/writes
        have their own retry budget and **degrade without failing the
        unit**: a detection that cannot be persisted is still a success.
        """
        opts = options_digest(detector)
        memo_key = (entry.digest, detector_name, opts)
        starts = self._cached_starts(memo_key, result)
        if starts is None:
            breaker = self._breaker_for(detector_name)
            if breaker is not None and not breaker.allow():
                error = CircuitOpen(
                    f"detector {detector_name!r} circuit open "
                    f"(state={breaker.state}, trips={breaker.trips})"
                )
                result.error = f"{type(error).__name__}: {error}"
                result.failure = failure_record(error, site="breaker", attempts=0)
                with self._lock:
                    self.degraded_units += 1
                return
            if entry.image is None:
                entry.image = BinaryImage.from_bytes(entry.data, name=entry.name)
            if entry.context is None:
                entry.context = AnalysisContext(entry.image)
            attempts = [0]

            def invoke() -> Any:
                attempts[0] += 1
                with self._lock:
                    self.detector_runs += 1
                faults.fire("detect", f"{entry.digest}:{detector_name}")
                return call_with_timeout(
                    lambda: detector.detect(entry.image, entry.context),
                    self.resilience.detector_timeout,
                    label=f"{detector_name}({entry.name})",
                )

            try:
                detection = self._detect_policy.run(
                    invoke, on_retry=lambda n, e: self._count_retry("detector_retries")
                )
            except Exception as error:  # noqa: BLE001 - degrade this unit only
                if breaker is not None:
                    breaker.record_failure()
                result.error = f"{type(error).__name__}: {error}"
                result.failure = failure_record(
                    error,
                    site="detect",
                    attempts=attempts[0],
                    retryable=self._detect_policy.classify(error),
                )
                with self._lock:
                    self.degraded_units += 1
                return
            if breaker is not None:
                breaker.record_success()
            starts = tuple(sorted(detection.function_starts))
            self._memoize(memo_key, starts)
            if self.store is not None:
                record = {
                    "path": entry.name,
                    "detector": detector_name,
                    "function_starts": list(starts),
                    "stages": {
                        name: sorted(added)
                        for name, added in detection.added_by_stage.items()
                    },
                    "removed_by_stage": {
                        name: sorted(gone)
                        for name, gone in detection.removed_by_stage.items()
                    },
                    "merged_parts": {
                        str(part): parent
                        for part, parent in detection.merged_parts.items()
                    },
                }
                key = self.store.detection_key(entry.digest, detector_name, opts)
                try:
                    self._store_policy.run(
                        lambda: self.store.save_detection(key, record),
                        on_retry=lambda n, e: self._count_retry("store_retries"),
                    )
                except Exception as error:  # noqa: BLE001 - persistence degrades
                    result.failure = failure_record(error, site="store.save")
                    with self._lock:
                        self.store_degraded += 1
        result.function_starts = starts
        if entry.ground_truth is not None:
            result.metrics = compute_metrics(entry.ground_truth, set(starts))

    def _memoize(self, memo_key: tuple[str, str, str], starts: tuple[int, ...]) -> None:
        """LRU-insert into the bounded in-memory dedupe memo."""
        with self._lock:
            self._memo[memo_key] = starts
            self._memo.move_to_end(memo_key)
            while len(self._memo) > self.MEMO_LIMIT:
                self._memo.popitem(last=False)

    def _cached_starts(
        self, memo_key: tuple[str, str, str], result: EntryResult
    ) -> tuple[int, ...] | None:
        """Dedupe before detecting: in-memory memo first, then the store.

        A store read that keeps failing degrades to a cache miss — the
        detector re-runs rather than the unit failing on a lookup."""
        with self._lock:
            starts = self._memo.get(memo_key)
            if starts is not None:
                self._memo.move_to_end(memo_key)
        if starts is None and self.store is not None:
            digest, detector_name, opts = memo_key
            key = self.store.detection_key(digest, detector_name, opts)
            try:
                record = self._store_policy.run(
                    lambda: self.store.load_detection(key),
                    on_retry=lambda n, e: self._count_retry("store_retries"),
                )
            except Exception:  # noqa: BLE001 - degrade to a miss
                record = None
                with self._lock:
                    self.store_degraded += 1
            if record is not None:
                starts = tuple(record["function_starts"])
                self._memoize(memo_key, starts)
        if starts is None:
            return None
        result.cached = True
        with self._lock:
            self.cache_hits += 1
        return starts

    # -- introspection --------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """A snapshot of the service's counters and queue occupancy.

        ``store`` holds the hit/miss *deltas* since this service was
        created (not store-lifetime totals), so a front-end can report how
        warm its own traffic ran.  ``store_info`` describes the store
        itself (root, layout version, index and lock statistics) from the
        manifest index — no tree walk.
        """
        with self._lock:
            record: dict[str, Any] = {
                "workers": self.config.workers,
                "queue_limit": self.config.queue_limit,
                "backpressure": self.config.backpressure,
                "jobs": self.jobs_submitted,
                "jobs_retained": len(self._jobs),
                "pending_entries": self._pending_entries,
                "detector_runs": self.detector_runs,
                "cache_hits": self.cache_hits,
                "resilience": {
                    "detector_retries": self.detector_retries,
                    "store_retries": self.store_retries,
                    "degraded_units": self.degraded_units,
                    "store_degraded": self.store_degraded,
                    "worker_restarts": self._pool.worker_restarts,
                    "requeued_tasks": self._pool.requeued_tasks,
                    "breaker_trips": sum(b.trips for b in self._breakers.values()),
                    "breakers": {
                        name: breaker.state
                        for name, breaker in self._breakers.items()
                    },
                },
            }
        if self.store is not None:
            record["store"] = self.store.stats_delta(self._stats_baseline)
            record["store_info"] = self.store.describe()
        return record
