"""Experiment runners for every table and figure of the paper.

Each ``run_*`` function takes a corpus of synthetic binaries (see
:mod:`repro.synth.corpus`) and returns plain data structures; the renderers
in :mod:`repro.eval.tables` turn them into the text tables the benchmarks
print and EXPERIMENTS.md records.

All corpus-level runners accept an optional :class:`CorpusEvaluator`, which
owns one shared :class:`~repro.core.context.AnalysisContext` per binary —
decoded instructions, CFA tables and image scans are then computed once and
reused by every detector, every strategy-ladder rung and every study that
touches the same binary.  The evaluator also fans per-binary work out over a
thread pool (``jobs``) and can emit machine-readable ``BENCH_*.json`` timing
records for the performance trajectory.
"""

from __future__ import annotations

import json
import os
import pickle
import threading
import time
from collections import defaultdict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.analysis.gadgets import count_rop_gadgets
from repro.analysis.recursive import RecursiveDisassembler
from repro.analysis.stackheight import StackHeightAnalysis
from repro.baselines import (
    AngrLike,
    AngrOptions,
    GhidraLike,
    GhidraOptions,
    all_comparison_tools,
)
from repro.core import FetchDetector, FetchOptions
from repro.core.context import AnalysisContext
from repro.core.fde_source import extract_fde_starts, fde_symbol_coverage
from repro.core.registry import detectors as registered_detectors
from repro.eval.executor import FAULT_EPOCH_VAR, parallel_map
from repro.eval.metrics import BinaryMetrics, CorpusMetrics, compute_metrics
from repro.resilience import faults
from repro.store import ArtifactStore, options_digest
from repro.synth.compiler import SyntheticBinary
from repro.synth.profiles import WildProfile
from repro.x86.disassembler import DECODE_STATS


# ----------------------------------------------------------------------
# Process-pool worker plumbing
#
# The thread pool (``jobs``) shares one decode cache per binary but is bound
# by the GIL; the process pool (``workers``) buys real CPU parallelism at the
# cost of per-process contexts.  Each worker receives the corpus once (via
# the pool initializer) and keeps its own per-binary AnalysisContext, so the
# decode-once property holds within every worker.  Task payloads must be
# picklable: module-level functions only — closures fall back to threads.
# ----------------------------------------------------------------------

_WORKER_CORPUS: list[Any] | None = None
_WORKER_CONTEXTS: dict[int, AnalysisContext] = {}


def _process_worker_init(corpus: list[Any]) -> None:
    global _WORKER_CORPUS, _WORKER_CONTEXTS
    _WORKER_CORPUS = corpus
    _WORKER_CONTEXTS = {}


def _process_invoke(payload: tuple[Callable[..., Any], int, tuple]) -> tuple[Any, int]:
    """Run one task in a pool worker; returns ``(value, raw_decode_delta)``.

    ``DECODE_STATS`` is process-local, so decode work done in a worker is
    invisible to the parent.  Shipping the per-task delta back lets the
    parent fold every worker's decode count into its own counter, making
    process-backend readings exact instead of "compare serial passes".
    """
    fn, index, fn_args = payload
    assert _WORKER_CORPUS is not None, "process pool initializer did not run"
    # ``pool.child`` fault site: a ``kill`` here SIGKILLs this worker, which
    # the parent observes as BrokenProcessPool and survives by respawning
    # (see parallel_map).  The key folds in the respawn epoch so the next
    # pool generation re-rolls instead of re-killing the same item forever.
    try:
        faults.fire(
            "pool.child", f"{index}e{os.environ.get(FAULT_EPOCH_VAR, '0')}"
        )
    except faults.WorkerKilled:
        os.kill(os.getpid(), 9)
    binary = _WORKER_CORPUS[index]
    context = _WORKER_CONTEXTS.get(index)
    if context is None:
        context = AnalysisContext(getattr(binary, "image", binary))
        _WORKER_CONTEXTS[index] = context
    before = DECODE_STATS.raw_decodes
    value = fn(binary, context, *fn_args)
    return value, DECODE_STATS.raw_decodes - before


def _detect_binary_metrics(
    binary: SyntheticBinary, context: AnalysisContext, detector: Any
) -> BinaryMetrics:
    result = detector.detect(binary.image, context)
    return compute_metrics(binary.ground_truth, result.function_starts)


def _fde_only_binary_metrics(
    binary: SyntheticBinary, context: AnalysisContext
) -> BinaryMetrics:
    detected = extract_fde_starts(binary.image)
    return compute_metrics(binary.ground_truth, detected)


def _tool_comparison_metrics(
    binary: SyntheticBinary, context: AnalysisContext, tools: list[Any]
) -> dict[str, BinaryMetrics]:
    metrics: dict[str, BinaryMetrics] = {}
    for tool in tools:
        result = tool.detect(binary.image, context)
        metrics[tool.name] = compute_metrics(binary.ground_truth, result.function_starts)
    return metrics


# ----------------------------------------------------------------------
# Shared-context corpus evaluation
# ----------------------------------------------------------------------

class CorpusEvaluator:
    """Decode-once, optionally parallel evaluation over a corpus.

    One :class:`AnalysisContext` is kept per binary and handed to every
    detector run, so the corpus is decoded once no matter how many tools or
    ladder rungs are evaluated.  ``jobs > 1`` fans per-binary work out over a
    thread pool; a binary is never processed by two workers at once within a
    single :meth:`map` call, and per-binary results are returned (and
    aggregated) in corpus order, so parallel and serial evaluation produce
    identical metrics.

    ``bench_dir`` enables :meth:`write_bench`, which records the wall-clock
    timings collected by :meth:`timed` as ``BENCH_<name>.json``.

    ``share_contexts=False`` hands out a *fresh* context on every
    :meth:`context_for` call instead — the pre-context behaviour where each
    detector run decodes from scratch.  It exists so benchmarks can measure
    the before/after of decode-once sharing; results are identical either
    way.

    ``store`` plugs in an :class:`~repro.store.ArtifactStore`:
    :meth:`run_detector` then skips binaries whose
    :class:`~repro.eval.metrics.BinaryMetrics` are already cached for the
    (binary digest, detector name, options digest) triple, and :meth:`map`
    callers may pass a ``cache_key`` to persist arbitrary per-binary values.
    :attr:`detector_runs` counts the per-binary detector invocations that
    actually happened, so warm runs can assert they did none.
    """

    def __init__(
        self,
        corpus: Sequence[SyntheticBinary],
        *,
        jobs: int = 1,
        workers: int = 0,
        bench_dir: str | os.PathLike | None = None,
        share_contexts: bool = True,
        store: ArtifactStore | None = None,
    ):
        self.corpus = list(corpus)
        self.jobs = max(1, int(jobs))
        #: ``workers > 1`` enables the :class:`ProcessPoolExecutor` backend
        #: for module-level map functions (closures fall back to threads).
        #: Unlike the GIL-bound thread pool it buys real CPU parallelism;
        #: contexts then live per worker process, one per binary.
        self.workers = max(0, int(workers))
        self.bench_dir = Path(bench_dir) if bench_dir is not None else None
        self.share_contexts = share_contexts
        self.store = store
        #: per-binary detector invocations performed (cache hits excluded)
        self.detector_runs = 0
        self.timings: dict[str, float] = {}
        self._contexts: dict[int, AnalysisContext] = {}
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None
        self._corpus_index = {id(binary): i for i, binary in enumerate(self.corpus)}

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Shut down the process pool (no-op without one)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "CorpusEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- contexts -------------------------------------------------------
    def context_for(self, binary: SyntheticBinary) -> AnalysisContext:
        """The shared context of ``binary`` (created on first use).

        Contexts stay alive for the evaluator's lifetime — that is what
        makes ladder rungs and successive studies share work.  A context can
        hold an :class:`~repro.x86.instruction.Instruction` for nearly every
        text byte once a linear-sweep detector has run, so long-lived
        evaluators over large corpora should :meth:`release` binaries whose
        evaluation is finished.
        """
        image = getattr(binary, "image", binary)
        if not self.share_contexts:
            return AnalysisContext(image)
        key = id(image)
        with self._lock:
            context = self._contexts.get(key)
            if context is None:
                context = AnalysisContext(image)
                self._contexts[key] = context
        return context

    def release(self, binary: SyntheticBinary | None = None) -> None:
        """Drop the cached context of ``binary`` (or all of them).

        Purely a memory-footprint knob: the next :meth:`context_for` call
        simply rebuilds a fresh context, so results are unaffected.
        """
        with self._lock:
            if binary is None:
                self._contexts.clear()
            else:
                self._contexts.pop(id(getattr(binary, "image", binary)), None)

    def context_stats(self) -> dict[str, float | int]:
        """Aggregate cache statistics over every context built so far."""
        totals: dict[str, float | int] = defaultdict(int)
        for context in self._contexts.values():
            for key, value in context.stats().as_dict().items():
                if key != "decode_hit_ratio":
                    totals[key] += value
        hits = totals.get("decode_hits", 0)
        misses = totals.get("decode_misses", 0)
        totals["decode_hit_ratio"] = round(hits / (hits + misses), 4) if hits + misses else 0.0
        totals["contexts"] = len(self._contexts)
        return dict(totals)

    # -- fan-out --------------------------------------------------------
    def map(
        self,
        fn: Callable[..., Any],
        items: Iterable[SyntheticBinary] | None = None,
        *,
        fn_args: tuple = (),
        cache_key: str | None = None,
    ) -> list[Any]:
        """``fn(binary, context, *fn_args)`` over ``items`` (default: the corpus).

        Results come back in input order regardless of the backend.  With
        ``workers > 1`` and a picklable, module-level ``fn`` over corpus
        members, the call fans out over the process pool; anything else
        (closures, foreign binaries) uses the thread pool / serial path.

        With a ``store`` and a ``cache_key``, per-binary values are persisted
        and reloaded on later runs; ``fn`` is then only called for binaries
        without a cached value.  The caller owns the key: it must change
        whenever ``fn``'s meaning or ``fn_args`` change.

        Thread safety: the context cache behind :meth:`context_for` is
        lock-guarded, so the pool workers of a single :meth:`map` call may
        share contexts freely; ``fn`` itself must tolerate concurrent
        invocation over *different* binaries (it is never called twice
        concurrently for one binary within a call).  Concurrent :meth:`map`
        calls from different threads are not coordinated — long-lived
        multi-client processes should serialise per evaluator, or hold one
        evaluator per corpus as :class:`repro.service.DetectionService`
        holds one context per in-flight entry.
        """
        binaries = self.corpus if items is None else list(items)
        if self.store is None or cache_key is None:
            return self._map_compute(fn, binaries, fn_args)
        cached = [self.store.load_value(binary, cache_key) for binary in binaries]
        missing = [binary for binary, (hit, _) in zip(binaries, cached) if not hit]
        computed = iter(self._map_compute(fn, missing, fn_args))
        results = []
        for binary, (hit, value) in zip(binaries, cached):
            if not hit:
                value = next(computed)
                self.store.save_value(binary, cache_key, value)
            results.append(value)
        return results

    def _map_compute(
        self, fn: Callable[..., Any], binaries: list[Any], fn_args: tuple
    ) -> list[Any]:
        if self._can_use_processes(fn, binaries, fn_args):
            payloads = [
                (fn, self._corpus_index[id(binary)], fn_args) for binary in binaries
            ]
            wrapped = parallel_map(
                _process_invoke,
                payloads,
                workers=self.workers,
                pool=self._process_pool(),
                pool_factory=self._respawn_pool,
            )
            values = []
            for value, decode_delta in wrapped:
                DECODE_STATS.raw_decodes += decode_delta
                values.append(value)
            return values
        return parallel_map(
            lambda binary: fn(binary, self.context_for(binary), *fn_args),
            binaries,
            jobs=self.jobs,
        )

    def _can_use_processes(
        self, fn: Callable[..., Any], binaries: list[Any], fn_args: tuple
    ) -> bool:
        if self.workers <= 1 or len(binaries) <= 1:
            return False
        if not self.share_contexts:
            # The process backend inherently reuses one context per binary
            # inside each worker; an unshared evaluator must keep the
            # fresh-context-per-request semantics, so it stays on threads.
            return False
        if any(id(binary) not in self._corpus_index for binary in binaries):
            return False
        try:
            pickle.dumps((fn, fn_args))
        except Exception:
            return False
        return True

    def _process_pool(self) -> ProcessPoolExecutor:
        """The lazily-created persistent process pool.

        The corpus ships to each worker once via the pool initializer;
        individual tasks then reference binaries by index.
        """
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_process_worker_init,
                initargs=(self.corpus,),
            )
        return self._pool

    def _respawn_pool(self) -> ProcessPoolExecutor:
        """Replace a broken persistent pool (``parallel_map``'s respawn hook).

        The broken executor was already shut down by the caller; dropping
        the reference makes :meth:`_process_pool` build a fresh one, which
        also becomes the evaluator's pool for subsequent calls.
        """
        self._pool = None
        return self._process_pool()

    def run_detector(
        self,
        detector_factory: Callable[[], Any],
        items: Iterable[SyntheticBinary] | None = None,
    ) -> CorpusMetrics:
        """Run one detector (a fresh instance per binary) over the corpus.

        With a ``store``, binaries whose metrics are already cached for this
        (detector, options) pair are skipped entirely — only the misses are
        detected, and their metrics are persisted for the next run.
        """
        binaries = self.corpus if items is None else list(items)
        if self.store is not None:
            probe = detector_factory()
            name = getattr(probe, "name", type(probe).__name__)
            opts = options_digest(probe)
            cached = [self.store.load_result(b, name, opts) for b in binaries]
            missing = [b for b, m in zip(binaries, cached) if m is None]
            computed = iter(self._detect_metrics(detector_factory, missing))
            per = []
            for binary, binary_metrics in zip(binaries, cached):
                if binary_metrics is None:
                    binary_metrics = next(computed)
                    self.store.save_result(binary, name, opts, binary_metrics)
                per.append(binary_metrics)
        else:
            per = self._detect_metrics(detector_factory, binaries)

        metrics = CorpusMetrics()
        for binary_metrics in per:
            metrics.add(binary_metrics)
        return metrics

    def _detect_metrics(
        self, detector_factory: Callable[[], Any], binaries: list[SyntheticBinary]
    ) -> list[BinaryMetrics]:
        """Actually run the detector over ``binaries`` (no result cache)."""
        if not binaries:
            return []
        self.detector_runs += len(binaries)
        if self.workers > 1:
            # Process backend: one detector instance, pickled per task.
            # Detector runs are stateless, so this is result-identical to the
            # fresh-instance-per-binary thread path.
            return self.map(_detect_binary_metrics, binaries, fn_args=(detector_factory(),))

        def one(binary: SyntheticBinary, context: AnalysisContext) -> BinaryMetrics:
            result = detector_factory().detect(binary.image, context)
            return compute_metrics(binary.ground_truth, result.function_starts)

        return self.map(one, binaries)

    def fde_only_metrics(
        self, items: Iterable[SyntheticBinary] | None = None
    ) -> CorpusMetrics:
        """The FDE-only rung shared by every Figure 5 ladder."""
        metrics = CorpusMetrics()
        per = self.map(_fde_only_binary_metrics, items, cache_key="fde-only-metrics:1")
        for binary_metrics in per:
            metrics.add(binary_metrics)
        return metrics

    # -- benchmarking ---------------------------------------------------
    def timed(self, label: str, fn: Callable[..., Any], *args, **kwargs) -> Any:
        """Run ``fn`` and record its wall-clock time under ``label``."""
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        self.timings[label] = time.perf_counter() - start
        return result

    def write_bench(
        self,
        name: str,
        *,
        extra: dict[str, Any] | None = None,
        cache_stats: dict[str, float | int] | None = None,
    ) -> Path | None:
        """Write ``BENCH_<name>.json`` with timings, cache and corpus stats.

        ``cache_stats`` substitutes this evaluator's own aggregate when the
        measured work ran on a different evaluator (as the before/after
        benchmarks do).  Returns the path written, or ``None`` when no
        ``bench_dir`` is set.
        """
        if self.bench_dir is None:
            return None
        record = {
            "bench": name,
            "created_unix": round(time.time(), 3),
            "jobs": self.jobs,
            "corpus_size": len(self.corpus),
            "timings_seconds": {k: round(v, 6) for k, v in self.timings.items()},
            "cache": cache_stats if cache_stats is not None else self.context_stats(),
        }
        if extra:
            record["extra"] = extra
        self.bench_dir.mkdir(parents=True, exist_ok=True)
        path = self.bench_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        return path


def _evaluator(
    corpus: Sequence[SyntheticBinary], evaluator: CorpusEvaluator | None
) -> CorpusEvaluator:
    return evaluator if evaluator is not None else CorpusEvaluator(corpus)


# ----------------------------------------------------------------------
# Strategy ladders (Figure 5)
# ----------------------------------------------------------------------

@dataclass
class StrategyOutcome:
    """One bar pair of Figure 5: a strategy and its corpus-level metrics."""

    label: str
    metrics: CorpusMetrics

    @property
    def full_coverage(self) -> int:
        return self.metrics.binaries_with_full_coverage

    @property
    def full_accuracy(self) -> int:
        return self.metrics.binaries_with_full_accuracy


def run_strategy_ladder(
    corpus: list[SyntheticBinary],
    ladder: Sequence[tuple[str, Any]],
    make_detector: Callable[[Any], Any],
    *,
    evaluator: CorpusEvaluator | None = None,
) -> list[StrategyOutcome]:
    """Evaluate one Figure 5 ladder: ``(label, options)`` rungs in order.

    A rung whose options are ``None`` is the shared FDE-only baseline;
    every other rung runs ``make_detector(options)`` over the corpus.  All
    rungs share the evaluator's per-binary contexts, so the corpus is
    decoded once for the whole ladder.
    """
    evaluator = _evaluator(corpus, evaluator)
    outcomes = []
    for label, options in ladder:
        if options is None:
            metrics = evaluator.fde_only_metrics(corpus)
        else:
            metrics = evaluator.run_detector(
                lambda o=options: make_detector(o), corpus
            )
        outcomes.append(StrategyOutcome(label=label, metrics=metrics))
    return outcomes


def run_figure5a(
    corpus: list[SyntheticBinary], *, evaluator: CorpusEvaluator | None = None
) -> list[StrategyOutcome]:
    """GHIDRA strategy ladder (Figure 5a)."""
    ladder = [
        ("FDE", None),
        ("FDE+Rec+CFR", GhidraOptions(control_flow_repair=True)),
        ("FDE+Rec", GhidraOptions()),
        ("FDE+Rec+Fsig", GhidraOptions(function_matching=True)),
        ("FDE+Rec+Tcall", GhidraOptions(tail_call_heuristic=True)),
    ]
    return run_strategy_ladder(corpus, ladder, GhidraLike, evaluator=evaluator)


def run_figure5b(
    corpus: list[SyntheticBinary], *, evaluator: CorpusEvaluator | None = None
) -> list[StrategyOutcome]:
    """ANGR strategy ladder (Figure 5b)."""
    ladder = [
        ("FDE", None),
        ("FDE+Rec+Fmerg", AngrOptions(function_merging=True)),
        ("FDE+Rec", AngrOptions()),
        ("FDE+Rec+Fsig", AngrOptions(function_matching=True)),
        ("FDE+Rec+Scan", AngrOptions(linear_scan=True)),
        ("FDE+Rec+Tcall", AngrOptions(tail_call_heuristic=True)),
    ]
    return run_strategy_ladder(corpus, ladder, AngrLike, evaluator=evaluator)


def run_figure5c(
    corpus: list[SyntheticBinary], *, evaluator: CorpusEvaluator | None = None
) -> list[StrategyOutcome]:
    """The optimal-strategy ladder (Figure 5c) culminating in full FETCH."""
    ladder = [
        ("FDE", None),
        (
            "FDE+Rec",
            FetchOptions(
                validate_fde_starts=False,
                use_pointer_validation=False,
                use_tail_call_analysis=False,
            ),
        ),
        (
            "FDE+Rec+Xref",
            FetchOptions(validate_fde_starts=False, use_tail_call_analysis=False),
        ),
        ("FDE+Rec+Xref+Tcall", FetchOptions()),
    ]
    return run_strategy_ladder(corpus, ladder, FetchDetector, evaluator=evaluator)


# ----------------------------------------------------------------------
# §IV-B — Q1: FDE-only coverage
# ----------------------------------------------------------------------

@dataclass
class FdeCoverageStudy:
    """Q1 results: how well FDEs alone cover true function starts."""

    binary_count: int = 0
    total_functions: int = 0
    covered_functions: int = 0
    binaries_with_misses: int = 0
    missed_by_kind: dict[str, int] = field(default_factory=dict)
    symbol_count: int = 0
    symbols_covered_by_fdes: int = 0

    @property
    def coverage_percent(self) -> float:
        if self.total_functions == 0:
            return 100.0
        return 100.0 * self.covered_functions / self.total_functions


def run_fde_coverage_study(
    corpus: list[SyntheticBinary], *, evaluator: CorpusEvaluator | None = None
) -> FdeCoverageStudy:
    evaluator = _evaluator(corpus, evaluator)

    def per_binary(binary: SyntheticBinary, context: AnalysisContext):
        fde_starts = extract_fde_starts(binary.image)
        truth = binary.ground_truth
        covered = truth.function_starts & fde_starts
        missed = truth.function_starts - fde_starts
        missed_kinds: dict[str, int] = defaultdict(int)
        for address in missed:
            info = truth.by_address(address)
            missed_kinds[info.kind if info else "unknown"] += 1
        coverage = fde_symbol_coverage(binary.image)
        return (
            truth.function_count,
            len(covered),
            dict(missed_kinds),
            coverage.symbol_count,
            coverage.covered_symbols,
        )

    study = FdeCoverageStudy()
    missed_kinds: dict[str, int] = defaultdict(int)
    for total, covered, missed, symbols, covered_symbols in evaluator.map(
        per_binary, corpus
    ):
        study.binary_count += 1
        study.total_functions += total
        study.covered_functions += covered
        if missed:
            study.binaries_with_misses += 1
            for kind, count in missed.items():
                missed_kinds[kind] += count
        study.symbol_count += symbols
        study.symbols_covered_by_fdes += covered_symbols
    study.missed_by_kind = dict(missed_kinds)
    return study


# ----------------------------------------------------------------------
# §V-A — errors introduced by FDEs
# ----------------------------------------------------------------------

@dataclass
class FdeErrorStudy:
    """How many false starts FDEs introduce and what they are."""

    binary_count: int = 0
    total_false_positives: int = 0
    binaries_with_false_positives: int = 0
    from_non_contiguous_functions: int = 0
    from_handwritten_fdes: int = 0
    rop_gadgets_at_false_starts: int = 0
    worst_binary: str = ""
    worst_binary_false_positives: int = 0


def run_fde_error_study(
    corpus: list[SyntheticBinary], *, evaluator: CorpusEvaluator | None = None
) -> FdeErrorStudy:
    evaluator = _evaluator(corpus, evaluator)

    def per_binary(binary: SyntheticBinary, context: AnalysisContext):
        truth = binary.ground_truth
        fde_starts = extract_fde_starts(binary.image)
        false_positives = fde_starts - truth.function_starts
        cold = false_positives & truth.cold_part_starts
        gadgets = sum(
            count_rop_gadgets(binary.image, address, context=context)
            for address in false_positives
        )
        return (binary.name, len(false_positives), len(cold), gadgets)

    study = FdeErrorStudy()
    for name, false_positives, cold, gadgets in evaluator.map(per_binary, corpus):
        study.binary_count += 1
        if false_positives:
            study.binaries_with_false_positives += 1
        study.total_false_positives += false_positives
        study.from_non_contiguous_functions += cold
        study.from_handwritten_fdes += false_positives - cold
        study.rop_gadgets_at_false_starts += gadgets
        if false_positives > study.worst_binary_false_positives:
            study.worst_binary_false_positives = false_positives
            study.worst_binary = name
    return study


# ----------------------------------------------------------------------
# §V-C — Algorithm 1 evaluation
# ----------------------------------------------------------------------

@dataclass
class Algorithm1Study:
    """Effect of Algorithm 1 on FDE-introduced errors."""

    false_positives_before: int = 0
    false_positives_after: int = 0
    full_accuracy_before: int = 0
    full_accuracy_after: int = 0
    full_coverage_before: int = 0
    full_coverage_after: int = 0
    new_false_negatives: int = 0
    new_false_negatives_tailcall_only: int = 0

    @property
    def false_positive_reduction_percent(self) -> float:
        if self.false_positives_before == 0:
            return 0.0
        removed = self.false_positives_before - self.false_positives_after
        return 100.0 * removed / self.false_positives_before


def run_algorithm1_study(
    corpus: list[SyntheticBinary], *, evaluator: CorpusEvaluator | None = None
) -> Algorithm1Study:
    evaluator = _evaluator(corpus, evaluator)
    before_options = FetchOptions(validate_fde_starts=False, use_tail_call_analysis=False)
    after_options = FetchOptions()

    def per_binary(binary: SyntheticBinary, context: AnalysisContext):
        truth = binary.ground_truth
        before = FetchDetector(before_options).detect(binary.image, context)
        after = FetchDetector(after_options).detect(binary.image, context)
        metrics_before = compute_metrics(truth, before.function_starts)
        metrics_after = compute_metrics(truth, after.function_starts)
        introduced = metrics_after.false_negatives - metrics_before.false_negatives
        tailcall_only = 0
        for address in introduced:
            info = truth.by_address(address)
            if info is not None and info.reachable_via == "tailcall":
                tailcall_only += 1
        return (metrics_before, metrics_after, len(introduced), tailcall_only)

    study = Algorithm1Study()
    for metrics_before, metrics_after, introduced, tailcall_only in evaluator.map(
        per_binary, corpus
    ):
        study.false_positives_before += metrics_before.fp_count
        study.false_positives_after += metrics_after.fp_count
        study.full_accuracy_before += int(metrics_before.full_accuracy)
        study.full_accuracy_after += int(metrics_after.full_accuracy)
        study.full_coverage_before += int(metrics_before.full_coverage)
        study.full_coverage_after += int(metrics_after.full_coverage)
        study.new_false_negatives += introduced
        study.new_false_negatives_tailcall_only += tailcall_only
    return study


# ----------------------------------------------------------------------
# Table III — tool comparison
# ----------------------------------------------------------------------

@dataclass
class ToolComparisonCell:
    false_positives: int
    false_negatives: int
    functions: int


def run_tool_comparison(
    corpus: list[SyntheticBinary],
    *,
    include_fetch: bool = True,
    evaluator: CorpusEvaluator | None = None,
) -> dict[str, dict[str, ToolComparisonCell]]:
    """FP/FN per tool per optimisation level (Table III).

    Returns ``{opt_level: {tool_name: ToolComparisonCell}}`` plus an ``Avg.``
    row aggregating all levels.  With a shared evaluator, all ten detectors
    reuse one decode cache per binary.
    """
    evaluator = _evaluator(corpus, evaluator)
    tools = all_comparison_tools()
    if include_fetch:
        tools = tools + [FetchDetector()]

    if evaluator.workers > 1:
        # Process backend: each worker keeps one context per binary, which
        # is exactly the shared-context semantics.
        per = evaluator.map(_tool_comparison_metrics, corpus, fn_args=(tools,))
    else:

        def per_binary(binary: SyntheticBinary, context: AnalysisContext):
            metrics: dict[str, BinaryMetrics] = {}
            for tool in tools:
                # Request the context per tool so an unshared evaluator hands
                # every detector run a fresh one (the before/after benchmark).
                result = tool.detect(binary.image, evaluator.context_for(binary))
                metrics[tool.name] = compute_metrics(
                    binary.ground_truth, result.function_starts
                )
            return metrics

        per = evaluator.map(per_binary, corpus)

    groups: dict[str, list[dict[str, BinaryMetrics]]] = defaultdict(list)
    for binary, metrics_by_tool in zip(corpus, per):
        groups[binary.plan.profile.opt_level.value].append(metrics_by_tool)

    by_level: dict[str, dict[str, ToolComparisonCell]] = {}
    totals: dict[str, list[int]] = defaultdict(lambda: [0, 0, 0])
    for level, rows in sorted(groups.items()):
        row: dict[str, ToolComparisonCell] = {}
        for tool in tools:
            fp = sum(metrics[tool.name].fp_count for metrics in rows)
            fn = sum(metrics[tool.name].fn_count for metrics in rows)
            functions = sum(metrics[tool.name].true_count for metrics in rows)
            row[tool.name] = ToolComparisonCell(fp, fn, functions)
            totals[tool.name][0] += fp
            totals[tool.name][1] += fn
            totals[tool.name][2] += functions
        by_level[level] = row

    by_level["Avg."] = {
        name: ToolComparisonCell(*values) for name, values in totals.items()
    }
    return by_level


# ----------------------------------------------------------------------
# Table IV — stack-height analysis quality
# ----------------------------------------------------------------------

@dataclass
class StackHeightCell:
    """Precision / recall of a static stack-height analysis vs CFI."""

    matching: int = 0
    reported: int = 0
    total: int = 0

    @property
    def precision(self) -> float:
        return 100.0 * self.matching / self.reported if self.reported else 100.0

    @property
    def recall(self) -> float:
        return 100.0 * self.matching / self.total if self.total else 100.0


def run_stack_height_study(
    corpus: list[SyntheticBinary], *, evaluator: CorpusEvaluator | None = None
) -> dict[str, dict[str, dict[str, StackHeightCell]]]:
    """Compare static stack-height analyses against CFI heights (Table IV).

    Returns ``{opt_level: {flavor: {"full": cell, "jump": cell}}}``.
    """
    evaluator = _evaluator(corpus, evaluator)
    flavors = ("angr", "dyninst")

    def per_binary(binary: SyntheticBinary, context: AnalysisContext):
        image = binary.image
        fdes = {fde.pc_begin: fde for fde in image.fdes}
        disassembler = RecursiveDisassembler(image, context=context)
        disassembly = disassembler.disassemble(set(fdes))
        counts = {
            flavor: {"full": [0, 0, 0], "jump": [0, 0, 0]} for flavor in flavors
        }
        for start, function in disassembly.functions.items():
            fde = fdes.get(start)
            if fde is None:
                continue
            table = context.cfa_table(fde)
            if not table.has_complete_stack_height:
                continue
            reference = {
                address: table.stack_height_at(address)
                for address in function.instructions
                if fde.covers(address)
            }
            for flavor in flavors:
                analysis = StackHeightAnalysis(flavor, context=context).analyze(function)
                for scope in ("full", "jump"):
                    cell = counts[flavor][scope]
                    for address, expected in reference.items():
                        insn = function.instructions[address]
                        if scope == "jump" and not insn.is_jump:
                            continue
                        cell[2] += 1
                        observed = analysis.get(address)
                        if observed is None:
                            continue
                        cell[1] += 1
                        if observed == expected:
                            cell[0] += 1
        return counts

    per = evaluator.map(per_binary, corpus)

    groups: dict[str, list] = defaultdict(list)
    for binary, counts in zip(corpus, per):
        groups[binary.plan.profile.opt_level.value].append(counts)

    results: dict[str, dict[str, dict[str, StackHeightCell]]] = {}
    for level, rows in sorted(groups.items()):
        cells = {
            flavor: {"full": StackHeightCell(), "jump": StackHeightCell()}
            for flavor in flavors
        }
        for counts in rows:
            for flavor in flavors:
                for scope in ("full", "jump"):
                    cell = cells[flavor][scope]
                    matching, reported, total = counts[flavor][scope]
                    cell.matching += matching
                    cell.reported += reported
                    cell.total += total
        results[level] = cells
    return results


# ----------------------------------------------------------------------
# Table V — timing
# ----------------------------------------------------------------------

def run_timing_study(
    corpus: list[SyntheticBinary],
    *,
    include_fetch: bool = True,
    evaluator: CorpusEvaluator | None = None,
) -> dict[str, float]:
    """Average analysis time per binary per tool, in seconds (Table V).

    Timing runs are always serial and always give every detector run a cold
    (private) context: a shared cache would charge all decode misses to
    whichever tool happens to run first and hand later tools a warm cache,
    turning the per-tool comparison into a measurement of run order.  The
    ``evaluator`` argument only contributes its timing/record plumbing.
    """
    tools = all_comparison_tools()
    if include_fetch:
        tools = tools + [FetchDetector()]
    timings: dict[str, float] = {}
    for tool in tools:
        start = time.perf_counter()
        for binary in corpus:
            tool.detect(binary.image)
        elapsed = time.perf_counter() - start
        timings[tool.name] = elapsed / max(len(corpus), 1)
    return timings


# ----------------------------------------------------------------------
# Scenario matrix — every (scenario × detector) cell
# ----------------------------------------------------------------------

#: The ten detectors of the scenario matrix: the paper's eight comparison
#: tools, the ByteWeight model, and FETCH itself.  Registry-driven — these
#: are *classes* straight from :mod:`repro.core.registry`; nothing is
#: instantiated at import time.
MATRIX_DETECTORS: tuple[tuple[str, Callable[[], Any]], ...] = tuple(
    (info.name, info.cls) for info in registered_detectors(matrix=True)
)


class ScenarioMatrix:
    """Evaluate every (scenario × detector) cell of a scenario-keyed corpus.

    Built on :class:`CorpusEvaluator`: one evaluator per scenario row shares
    decode work across all ten detectors, with the ``jobs`` thread pool or
    the ``workers`` process pool fanning binaries out.  :meth:`run` fills
    :attr:`cells` (``{scenario: {tool: metrics summary}}``) and per-cell
    wall-clock :attr:`timings`; :meth:`write_bench` records everything as
    ``BENCH_<name>.json``.

    The detector set comes from the registry (``matrix=True`` entries);
    ``include``/``exclude`` narrow it by name and ``include_fetch=False`` is
    shorthand for excluding FETCH.

    With a ``store``, every completed cell is persisted under a key derived
    from (scenario, detector, options digest, the row's binary digests).
    ``resume`` (default on when a store is given) reloads completed cells on
    a later run and only computes the missing or invalidated ones — a warm
    re-run of an unchanged matrix performs **zero** detector invocations
    (:attr:`detector_invocations` counts the ones that happened).  Deleting
    a cell file (:meth:`ArtifactStore.cell_path` of :attr:`cell_keys`)
    invalidates exactly that cell.
    """

    def __init__(
        self,
        corpora: dict[str, Sequence[SyntheticBinary]],
        *,
        jobs: int = 1,
        workers: int = 0,
        include_fetch: bool = True,
        include: Iterable[str] | None = None,
        exclude: Iterable[str] | None = None,
        bench_dir: str | os.PathLike | None = None,
        store: ArtifactStore | None = None,
        resume: bool | None = None,
    ):
        self.corpora = {name: list(binaries) for name, binaries in corpora.items()}
        self.jobs = max(1, int(jobs))
        self.workers = max(0, int(workers))
        self.bench_dir = Path(bench_dir) if bench_dir is not None else None
        excluded = set(exclude or ())
        if not include_fetch:
            excluded.add("fetch")
        self.detectors: list[tuple[str, Callable[[], Any]]] = [
            (info.name, info.cls)
            for info in registered_detectors(
                matrix=True, include=include, exclude=excluded or None
            )
        ]
        self.store = store
        self.resume = (store is not None) if resume is None else (resume and store is not None)
        #: per-binary detector invocations actually performed by :meth:`run`
        self.detector_invocations = 0
        #: store hit/miss deltas of the last :meth:`run` call (run-scoped,
        #: not store-lifetime, so the BENCH record describes *this* run)
        self.run_store_stats: dict[str, int] = {}
        #: ``(scenario, tool) -> store cell key`` for every cell of the run
        self.cell_keys: dict[tuple[str, str], str] = {}
        self.cells: dict[str, dict[str, dict[str, float | int]]] = {}
        self.timings: dict[str, float] = {}
        self.cache_stats: dict[str, dict[str, float | int]] = {}

    def run(self) -> dict[str, dict[str, dict[str, float | int]]]:
        """Evaluate all cells; returns ``{scenario: {tool: summary}}``."""
        stats_before = self.store.stats_snapshot() if self.store is not None else {}
        for scenario, corpus in self.corpora.items():
            row: dict[str, dict[str, float | int]] = {}
            pending: list[tuple[str, Callable[[], Any]]] = []
            digests = (
                [self.store.binary_digest(binary) for binary in corpus]
                if self.store is not None
                else []
            )
            for tool_name, factory in self.detectors:
                if self.store is not None:
                    key = self.store.cell_key(
                        scenario, tool_name, digests, options_digest(factory())
                    )
                    self.cell_keys[(scenario, tool_name)] = key
                    if self.resume:
                        cell = self.store.load_cell(key)
                        if cell is not None:
                            row[tool_name] = cell["summary"]
                            self.timings[f"{scenario}:{tool_name}"] = cell["seconds"]
                            continue
                pending.append((tool_name, factory))

            if pending:
                evaluator = CorpusEvaluator(
                    corpus, jobs=self.jobs, workers=self.workers, store=self.store
                )
                try:
                    for tool_name, factory in pending:
                        label = f"{scenario}:{tool_name}"
                        metrics = evaluator.timed(label, evaluator.run_detector, factory)
                        row[tool_name] = metrics.summary()
                        if self.store is not None:
                            self.store.save_cell(
                                self.cell_keys[(scenario, tool_name)],
                                {
                                    "scenario": scenario,
                                    "detector": tool_name,
                                    "summary": row[tool_name],
                                    "seconds": evaluator.timings[label],
                                },
                            )
                    self.timings.update(evaluator.timings)
                    self.cache_stats[scenario] = evaluator.context_stats()
                    self.detector_invocations += evaluator.detector_runs
                finally:
                    evaluator.close()

            # cells keep registry column order even when cache hits and
            # computed cells interleave
            self.cells[scenario] = {name: row[name] for name, _ in self.detectors}
        if self.store is not None:
            self.run_store_stats = self.store.stats_delta(stats_before)
        return self.cells

    def write_bench(
        self, name: str = "scenario_matrix", *, extra: dict[str, Any] | None = None
    ) -> Path | None:
        """Write ``BENCH_<name>.json`` with all cells, timings and stats."""
        if self.bench_dir is None:
            return None
        record: dict[str, Any] = {
            "bench": name,
            "created_unix": round(time.time(), 3),
            "jobs": self.jobs,
            "workers": self.workers,
            "scenarios": {
                scenario: len(corpus) for scenario, corpus in self.corpora.items()
            },
            "detectors": [tool_name for tool_name, _ in self.detectors],
            "cells": self.cells,
            "timings_seconds": {k: round(v, 6) for k, v in self.timings.items()},
            "cache": self.cache_stats,
        }
        if self.store is not None:
            description = self.store.describe()
            record["store"] = {
                "detector_invocations": self.detector_invocations,
                **self.run_store_stats,
                "layout": description["layout"],
                "lock": description["lock"],
            }
        if extra:
            record["extra"] = extra
        self.bench_dir.mkdir(parents=True, exist_ok=True)
        path = self.bench_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        return path


def run_scenario_matrix(
    corpora: dict[str, Sequence[SyntheticBinary]],
    *,
    jobs: int = 1,
    workers: int = 0,
    include_fetch: bool = True,
    store: ArtifactStore | None = None,
    resume: bool | None = None,
) -> dict[str, dict[str, dict[str, float | int]]]:
    """Convenience wrapper: build a :class:`ScenarioMatrix`, run it, return cells."""
    matrix = ScenarioMatrix(
        corpora,
        jobs=jobs,
        workers=workers,
        include_fetch=include_fetch,
        store=store,
        resume=resume,
    )
    return matrix.run()


# ----------------------------------------------------------------------
# Tables I and II — corpus characteristics
# ----------------------------------------------------------------------

@dataclass
class WildRow:
    software: str
    open_source: bool
    language: str
    has_eh_frame: bool
    has_symbols: bool
    fde_symbol_percent: float | None


def run_wild_study(corpus: list[tuple[WildProfile, SyntheticBinary]]) -> list[WildRow]:
    """FDE-vs-symbol coverage over the wild corpus (Table I)."""
    rows: list[WildRow] = []
    for profile, binary in corpus:
        image = binary.image
        if image.has_symbols:
            ratio = fde_symbol_coverage(image).percent
        else:
            ratio = None
        rows.append(
            WildRow(
                software=profile.software,
                open_source=profile.open_source,
                language=profile.language,
                has_eh_frame=image.has_eh_frame,
                has_symbols=image.has_symbols,
                fde_symbol_percent=ratio,
            )
        )
    return rows


@dataclass
class SelfBuiltRow:
    project: str
    category: str
    language: str
    binaries: int
    has_eh_frame: bool
    fde_symbol_percent: float


def run_selfbuilt_fde_study(corpus: list[SyntheticBinary]) -> list[SelfBuiltRow]:
    """FDE-vs-symbol coverage per project over the self-built corpus (Table II)."""
    by_project: dict[str, list[SyntheticBinary]] = defaultdict(list)
    for binary in corpus:
        project = binary.name.split("-")[0] if "-" in binary.name else binary.name
        by_project[binary.name.split(":")[0].rsplit("-", 1)[0]].append(binary)

    rows: list[SelfBuiltRow] = []
    for project, binaries in sorted(by_project.items()):
        symbols = 0
        covered = 0
        has_eh = True
        for binary in binaries:
            coverage = fde_symbol_coverage(binary.image)
            symbols += coverage.symbol_count
            covered += coverage.covered_symbols
            has_eh &= binary.image.has_eh_frame
        percent = 100.0 * covered / symbols if symbols else 100.0
        rows.append(
            SelfBuiltRow(
                project=project,
                category="",
                language="",
                binaries=len(binaries),
                has_eh_frame=has_eh,
                fde_symbol_percent=percent,
            )
        )
    return rows
