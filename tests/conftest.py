"""Shared fixtures: compiled synthetic binaries reused across test modules."""

from __future__ import annotations

import pytest

from repro.synth import build_selfbuilt_corpus, compile_program, plan_program
from repro.synth.profiles import CompilerFamily, OptLevel, default_profile
from repro.synth.workloads import WorkloadTraits


@pytest.fixture(scope="session")
def gcc_o2_profile():
    return default_profile(CompilerFamily.GCC, OptLevel.O2)


@pytest.fixture(scope="session")
def rich_binary():
    """A binary exhibiting every interesting construct (cold splits, asm,
    jump tables, indirect-only functions, tail calls)."""
    profile = default_profile(CompilerFamily.GCC, OptLevel.O3)
    traits = WorkloadTraits(
        cold_split_multiplier=3.0, has_assembly=True, is_cpp=True, mean_functions=110
    )
    plan = plan_program("fixture-rich", profile, seed=1234, traits=traits)
    return compile_program(plan, keep_elf_bytes=True)


@pytest.fixture(scope="session")
def plain_binary():
    """A small, plain C-style binary without assembly or cold splitting."""
    profile = default_profile(CompilerFamily.GCC, OptLevel.O2)
    traits = WorkloadTraits(cold_split_multiplier=0.0, mean_functions=40)
    plan = plan_program("fixture-plain", profile, seed=99, traits=traits)
    return compile_program(plan, keep_elf_bytes=True)


@pytest.fixture(scope="session")
def clang_binary():
    """A clang-profile C++ binary (int3 padding, __clang_call_terminate)."""
    profile = default_profile(CompilerFamily.CLANG, OptLevel.OFAST)
    traits = WorkloadTraits(cold_split_multiplier=2.0, is_cpp=True, mean_functions=70)
    plan = plan_program("fixture-clang", profile, seed=77, traits=traits)
    return compile_program(plan, keep_elf_bytes=True)


@pytest.fixture(scope="session")
def stripped_binary():
    """A stripped binary (no symbol table), like the paper's wild dataset."""
    profile = default_profile(CompilerFamily.GCC, OptLevel.O2)
    traits = WorkloadTraits(cold_split_multiplier=1.0, mean_functions=50)
    plan = plan_program("fixture-stripped", profile, seed=5, traits=traits, stripped=True)
    return compile_program(plan, keep_elf_bytes=True)


@pytest.fixture(scope="session")
def small_corpus():
    """A small self-built-style corpus for integration and eval tests."""
    return build_selfbuilt_corpus(scale=0.3, max_binaries=8, seed=7)
