"""Value objects describing ELF sections and symbols."""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.elf import constants as C


@dataclass
class Section:
    """A section to be written into (or read from) an ELF file.

    Attributes:
        name: section name including the leading dot (``".text"``).
        data: raw contents.
        address: virtual address when loaded (0 for non-allocated sections).
        sh_type: section header type (``SHT_PROGBITS`` ...).
        flags: section header flags (``SHF_ALLOC`` | ...).
        align: address alignment.
        entsize: table entry size (symbol tables).
        link: section header link field.
        info: section header info field.
    """

    name: str
    data: bytes = b""
    address: int = 0
    sh_type: int = C.SHT_PROGBITS
    flags: int = C.SHF_ALLOC
    align: int = 8
    entsize: int = 0
    link: int = 0
    info: int = 0

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def end_address(self) -> int:
        return self.address + len(self.data)

    @property
    def is_executable(self) -> bool:
        return bool(self.flags & C.SHF_EXECINSTR)

    @property
    def is_writable(self) -> bool:
        return bool(self.flags & C.SHF_WRITE)

    @property
    def is_allocated(self) -> bool:
        return bool(self.flags & C.SHF_ALLOC)

    def contains(self, address: int) -> bool:
        return self.address <= address < self.end_address

    def read(self, address: int, size: int) -> bytes:
        """Read ``size`` bytes starting at virtual address ``address``."""
        if not self.contains(address):
            raise ValueError(f"address {address:#x} not in section {self.name}")
        offset = address - self.address
        return self.data[offset : offset + size]


@dataclass
class Symbol:
    """An ELF symbol table entry.

    Attributes:
        name: symbol name.
        address: symbol value (virtual address for defined symbols).
        size: symbol size in bytes.
        sym_type: ``STT_FUNC`` / ``STT_OBJECT`` / ...
        binding: ``STB_LOCAL`` / ``STB_GLOBAL`` / ...
        section_name: name of the defining section, or ``None`` if undefined.
    """

    name: str
    address: int
    size: int = 0
    sym_type: int = C.STT_FUNC
    binding: int = C.STB_GLOBAL
    section_name: str | None = ".text"

    @property
    def is_function(self) -> bool:
        return self.sym_type == C.STT_FUNC


@dataclass
class ElfFile:
    """An in-memory description of an ELF executable."""

    sections: list[Section] = field(default_factory=list)
    symbols: list[Symbol] = field(default_factory=list)
    entry_point: int = 0
    elf_type: int = C.ET_EXEC

    def section(self, name: str) -> Section | None:
        """Find a section by name."""
        for section in self.sections:
            if section.name == name:
                return section
        return None

    def section_containing(self, address: int) -> Section | None:
        """The allocated section containing ``address``, if any.

        Lookups are the innermost operation of every analysis, so the
        allocated sections are indexed once (sorted by address, binary
        search) on first use; mutate :attr:`sections` only before analysis
        starts.  Overlapping sections — which binary search cannot serve —
        keep the original first-in-file-order linear scan.
        """
        index = self.__dict__.get("_address_index")
        if index is None:
            allocated = sorted(
                (s for s in self.sections if s.is_allocated),
                key=lambda s: s.address,
            )
            disjoint = all(
                previous.end_address <= current.address
                for previous, current in zip(allocated, allocated[1:])
            )
            index = (
                ([s.address for s in allocated], allocated) if disjoint else False
            )
            self.__dict__["_address_index"] = index
        if index is False:
            for section in self.sections:
                if section.is_allocated and section.contains(address):
                    return section
            return None
        starts, allocated = index
        position = bisect_right(starts, address) - 1
        if position >= 0 and address < allocated[position].end_address:
            return allocated[position]
        return None
