"""Table V — average time to analyse one binary, per tool."""

from repro.eval import run_timing_study
from repro.eval.tables import render_table5


def test_table5_timing(benchmark, selfbuilt_corpus_small, report_writer):
    timings = benchmark.pedantic(
        run_timing_study, args=(selfbuilt_corpus_small,), rounds=1, iterations=1
    )
    report_writer("table5_timing", render_table5(timings))

    # FETCH's runtime is of the same order as the fastest tools — the paper
    # reports ~3.3 s per (much larger) binary, comparable to DYNINST and
    # NUCLEUS and far below BAP.
    assert timings["fetch"] < 5 * max(timings["dyninst"], timings["nucleus"])
    assert timings["fetch"] < timings["bap"] * 3
