"""Synthetic binary generation.

The paper evaluates on 1,395 real binaries; those cannot be redistributed and
no compiler toolchain is assumed here, so this package provides a synthetic
"compiler" that emits genuine x86-64 ELF executables containing the binary
constructs the study hinges on — FDE-covered functions, non-contiguous
(hot/cold split) functions, tail calls, jump tables, indirect-call-only
functions, hand-written assembly without call frames, noreturn functions,
alignment padding and data-in-text — together with compiler-accurate ground
truth about true function starts.

Entry points:

* :func:`~repro.synth.workloads.plan_program` — plan a program's functions,
* :func:`~repro.synth.compiler.compile_program` — lower a plan to a binary,
* :func:`~repro.synth.corpus.build_selfbuilt_corpus` /
  :func:`~repro.synth.corpus.build_wild_corpus` — the Dataset-2 / Dataset-1
  analogues used by every experiment.
"""

from repro.synth.profiles import (
    BuildProfile,
    OptLevel,
    CompilerFamily,
    WildProfile,
    profile_for_scenario,
)
from repro.synth.groundtruth import FunctionInfo, GroundTruth
from repro.synth.plan import FunctionPlan, ProgramPlan
from repro.synth.workloads import SCENARIO_NAMES, plan_program
from repro.synth.compiler import SyntheticBinary, compile_program
from repro.synth.corpus import (
    GENERATOR_VERSION,
    build_scenario_corpus,
    build_scenario_matrix_corpora,
    build_selfbuilt_corpus,
    build_wild_corpus,
    SCENARIO_DESCRIPTIONS,
    SELFBUILT_PROJECTS,
    WILD_SOFTWARE,
)

__all__ = [
    "BuildProfile",
    "OptLevel",
    "CompilerFamily",
    "WildProfile",
    "profile_for_scenario",
    "FunctionInfo",
    "GroundTruth",
    "FunctionPlan",
    "ProgramPlan",
    "SCENARIO_NAMES",
    "GENERATOR_VERSION",
    "plan_program",
    "SyntheticBinary",
    "compile_program",
    "build_scenario_corpus",
    "build_scenario_matrix_corpora",
    "build_selfbuilt_corpus",
    "build_wild_corpus",
    "SCENARIO_DESCRIPTIONS",
    "SELFBUILT_PROJECTS",
    "WILD_SOFTWARE",
]
