"""Detection-service throughput — cold vs. warm batch submission.

Submits the self-built corpus through a persistent
:class:`~repro.service.DetectionService` three ways and records batch
throughput in ``BENCH_service.json``:

* **cold** — a fresh artifact store: every entry runs the detector;
* **warm, same service** — the identical batch resubmitted to the still-
  running service: served from the store/memo, zero detector invocations;
* **warm, restarted service** — a brand-new service over the same store
  (the "process restarted" case): still zero detector invocations, proving
  the dedupe lives in the content-addressed store, not in process memory.

The store for this benchmark is deliberately private and temporary (not the
shared ``benchmarks/.store``) so the cold leg is cold on every run and the
cold/warm ratio stays comparable run-to-run.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.elf.writer import write_elf
from repro.service import DetectionService
from repro.store import ArtifactStore

BENCH_DIRECTORY = Path(__file__).resolve().parent.parent

_WORKERS = 2


def _timed_batch(service: DetectionService, paths: list[str]) -> tuple[float, list]:
    start = time.perf_counter()
    results = list(service.submit(paths).results())
    return time.perf_counter() - start, results


def test_service_cold_vs_warm_throughput(
    benchmark, selfbuilt_corpus_small, tmp_path_factory, report_writer
):
    directory = tmp_path_factory.mktemp("service-bench")
    paths = []
    for binary in selfbuilt_corpus_small:
        path = directory / f"{binary.name.replace(':', '_')}.elf"
        path.write_bytes(write_elf(binary.image.elf))
        paths.append(str(path))

    store_root = directory / "store"

    def cold_batch():
        with DetectionService(workers=_WORKERS, store=ArtifactStore(store_root)) as service:
            seconds, results = _timed_batch(service, paths)
            return seconds, results, service.detector_runs, service.stats()

    cold_seconds, cold_results, cold_runs, cold_stats = benchmark.pedantic(
        cold_batch, rounds=1, iterations=1
    )
    assert cold_runs == len(paths), "cold batch must run every detector"
    assert all(result.ok for result in cold_results)

    # warm, same store, restarted service: the store alone must dedupe
    with DetectionService(workers=_WORKERS, store=ArtifactStore(store_root)) as warm_service:
        warm_seconds, warm_results, = _timed_batch(warm_service, paths)[:2]
        rerun_seconds, _ = _timed_batch(warm_service, paths)
        warm_runs = warm_service.detector_runs
        warm_stats = warm_service.stats()

    assert warm_runs == 0, "warm batch re-ran detectors"
    assert all(result.cached for result in warm_results)
    assert warm_stats["store"]["detection_hits"] >= len(paths)
    assert {result.name: result.function_starts for result in warm_results} == {
        result.name: result.function_starts for result in cold_results
    }, "warm results drifted from cold"
    assert warm_seconds < cold_seconds, "a zero-work batch must beat a full one"

    record = {
        "bench": "service",
        "created_unix": round(time.time(), 3),
        "workers": _WORKERS,
        "binaries": len(paths),
        "timings_seconds": {
            "cold_batch": round(cold_seconds, 6),
            "warm_batch_restarted_service": round(warm_seconds, 6),
            "warm_batch_same_service": round(rerun_seconds, 6),
        },
        "throughput_binaries_per_second": {
            "cold": round(len(paths) / cold_seconds, 3),
            "warm": round(len(paths) / warm_seconds, 3),
        },
        "detector_runs": {"cold": cold_runs, "warm": warm_runs},
        "store": {
            "cold": {
                key: cold_stats["store"][key]
                for key in ("detection_hits", "detection_misses")
            },
            "warm": {
                key: warm_stats["store"][key]
                for key in ("detection_hits", "detection_misses")
            },
        },
        "extra": {"warm_speedup": round(cold_seconds / warm_seconds, 3)},
    }
    path = BENCH_DIRECTORY / "BENCH_service.json"
    if path.exists():
        # the socket-server load benchmark (bench_server.py) contributes a
        # "server" block to the same record: carry it across rewrites
        previous = json.loads(path.read_text())
        if "server" in previous:
            record["server"] = previous["server"]
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    report_writer(
        "service",
        "\n".join(
            [
                "Detection service — cold vs. warm batch throughput",
                f"  binaries              : {len(paths)}",
                f"  cold batch            : {cold_seconds:.3f}s "
                f"({len(paths) / cold_seconds:.1f} bin/s, {cold_runs} detector runs)",
                f"  warm batch (restarted): {warm_seconds:.3f}s "
                f"({len(paths) / warm_seconds:.1f} bin/s, {warm_runs} detector runs)",
                f"  warm batch (same svc) : {rerun_seconds:.3f}s",
                f"  warm speedup          : {cold_seconds / warm_seconds:.1f}x",
            ]
        ),
    )
