"""Tests for instruction-level semantics (stack deltas, register effects)."""

from repro.x86.assembler import Assembler
from repro.x86.disassembler import decode_instruction
from repro.x86.operands import Mem
from repro.x86.registers import (
    CALLER_SAVED_REGISTERS,
    R10,
    RAX,
    RBP,
    RBX,
    RCX,
    RDI,
    RSI,
    RSP,
)
from repro.x86.semantics import (
    clobbers_register,
    moves_immediate_to,
    registers_read,
    registers_written,
    stack_delta,
)

asm = Assembler()


def decode(data: bytes):
    return decode_instruction(data, 0, 0x1000)


def test_stack_delta_push_pop():
    assert stack_delta(decode(asm.push(RBP))) == -8
    assert stack_delta(decode(asm.pop(RBX))) == 8


def test_stack_delta_sub_add_rsp():
    assert stack_delta(decode(asm.sub_ri(RSP, 0x40))) == -0x40
    assert stack_delta(decode(asm.add_ri(RSP, 0x40))) == 0x40


def test_stack_delta_other_arithmetic_is_zero():
    assert stack_delta(decode(asm.add_ri(RAX, 8))) == 0
    assert stack_delta(decode(asm.xor_rr32(RAX, RAX))) == 0


def test_stack_delta_unknown_for_leave_and_rsp_writes():
    assert stack_delta(decode(asm.leave())) is None
    assert stack_delta(decode(asm.mov_rr(RSP, RBP))) is None
    assert stack_delta(decode(asm.and_ri(RSP, -16))) is None


def test_stack_delta_call_and_ret():
    assert stack_delta(decode(asm.call_rel32(0))) == 0
    assert stack_delta(decode(asm.ret())) == 8


def test_registers_written_by_call_include_caller_saved():
    written = registers_written(decode(asm.call_rel32(0)))
    assert set(CALLER_SAVED_REGISTERS) <= written
    assert RSP in written
    assert RBX not in written


def test_registers_read_mov_and_lea():
    insn = decode(asm.mov_rr(RDI, RSI))
    assert registers_read(insn) == {RSI}
    assert registers_written(insn) == {RDI}

    lea = decode(asm.lea(RAX, Mem(base=RBP, index=RCX, scale=4, disp=8)))
    assert registers_read(lea) == {RBP, RCX}
    assert registers_written(lea) == {RAX}


def test_registers_read_memory_store_includes_address_and_value():
    insn = decode(asm.mov_store(Mem(base=RSP, disp=8), RDI))
    assert {RSP, RDI} <= registers_read(insn)
    assert registers_written(insn) == set()


def test_xor_zeroing_idiom_reads_nothing():
    insn = decode(asm.xor_rr32(RAX, RAX))
    assert registers_read(insn) == set()
    assert RAX in registers_written(insn)
    assert clobbers_register(insn, RAX)


def test_xor_with_distinct_registers_reads_both():
    insn = decode(asm.xor_rr(RAX, RCX))
    assert registers_read(insn) == {RAX, RCX}


def test_arithmetic_reads_both_operands():
    insn = decode(asm.add_rr(RAX, R10))
    assert registers_read(insn) == {RAX, R10}
    assert registers_written(insn) == {RAX}


def test_compare_writes_nothing():
    assert registers_written(decode(asm.cmp_rr(RDI, RSI))) == set()
    assert registers_written(decode(asm.test_rr(RAX, RAX))) == set()


def test_push_reads_its_operand_and_rsp():
    insn = decode(asm.push(RBX))
    assert registers_read(insn) == {RBX, RSP}


def test_indirect_call_reads_target_register():
    insn = decode(asm.call_reg(R10))
    assert R10 in registers_read(insn)


def test_moves_immediate_to_detects_mov_and_xor():
    assert moves_immediate_to(decode(asm.mov_ri32(RDI, 7)), RDI) == 7
    assert moves_immediate_to(decode(asm.xor_rr32(RAX, RAX)), RAX) == 0
    assert moves_immediate_to(decode(asm.mov_ri32(RDI, 7)), RSI) is None
    assert moves_immediate_to(decode(asm.mov_rr(RDI, RSI)), RDI) is None
