"""Instruction-level semantic helpers.

These helpers answer the three questions the analysis layers need:

* how an instruction changes the stack pointer (:func:`stack_delta`),
* which registers it reads before writing (:func:`registers_read`),
* which registers it writes (:func:`registers_written`).

The modelling is deliberately conservative: anything the model cannot express
precisely is reported as *unknown* (``None`` for stack deltas) rather than
guessed, which is what the "safe" analyses of the paper require.
"""

from __future__ import annotations

from repro.x86.instruction import Instruction
from repro.x86.operands import Imm, Mem
from repro.x86.registers import (
    CALLER_SAVED_REGISTERS,
    RAX,
    RBP,
    RCX,
    RSP,
    R11,
    Register,
)

_WRITES_FIRST_OPERAND = frozenset(
    {"mov", "lea", "movsxd", "movzx", "movsx", "add", "sub", "and", "or", "xor", "adc", "sbb",
     "imul", "shl", "shr", "sar", "rol", "ror", "rcl", "rcr", "inc", "dec", "pop"}
)
_READS_FIRST_OPERAND = frozenset(
    {"add", "sub", "and", "or", "xor", "adc", "sbb", "imul", "shl", "shr", "sar", "rol", "ror",
     "rcl", "rcr", "cmp", "test", "inc", "dec", "push"}
)
_COMPARE_ONLY = frozenset({"cmp", "test"})


def _operand_registers(operand: Register | Imm | Mem) -> set[Register]:
    """Registers referenced by an operand's addressing computation."""
    if isinstance(operand, Register):
        return {operand}
    if isinstance(operand, Mem):
        regs: set[Register] = set()
        if operand.base is not None:
            regs.add(operand.base)
        if operand.index is not None:
            regs.add(operand.index)
        return regs
    return set()


def stack_delta(insn: Instruction) -> int | None:
    """The change applied to ``rsp`` by this instruction, in bytes.

    Returns ``None`` when the effect is unknown or data-dependent (``leave``,
    ``mov rsp, ...``, ``and rsp, ...`` and similar), which callers must treat
    as "stack height no longer tracked".
    """
    mnemonic = insn.mnemonic
    if mnemonic == "push":
        return -8
    if mnemonic == "pop":
        return 8
    if mnemonic == "ret":
        return 8
    if mnemonic == "call":
        return 0
    if mnemonic == "leave":
        return None
    if mnemonic in ("add", "sub") and insn.operands:
        dst = insn.operands[0]
        if isinstance(dst, Register) and dst == RSP:
            imm = insn.operands[1] if len(insn.operands) > 1 else None
            if isinstance(imm, Imm):
                return imm.value if mnemonic == "add" else -imm.value
            return None
        return 0
    # Any other instruction that writes rsp makes the height unknown.
    if RSP in registers_written(insn):
        return None
    return 0


def registers_written(insn: Instruction) -> set[Register]:
    """Registers whose value is (potentially) overwritten by ``insn``."""
    written: set[Register] = set()
    mnemonic = insn.mnemonic

    if mnemonic in ("push", "pop", "call", "ret", "leave"):
        written.add(RSP)
    if mnemonic == "pop" and insn.operands and isinstance(insn.operands[0], Register):
        written.add(insn.operands[0])
    if mnemonic == "leave":
        written.add(RBP)
    if mnemonic == "call":
        written.update(CALLER_SAVED_REGISTERS)
    if mnemonic == "syscall":
        written.update({RAX, RCX, R11})

    if mnemonic in _WRITES_FIRST_OPERAND and mnemonic not in _COMPARE_ONLY and insn.operands:
        dst = insn.operands[0]
        if isinstance(dst, Register):
            written.add(dst)
    return written


def registers_read(insn: Instruction) -> set[Register]:
    """Registers whose previous value influences the behaviour of ``insn``.

    The register-zeroing idiom ``xor reg, reg`` is treated as reading nothing,
    matching how calling-convention validation must see it (it *defines* the
    register).
    """
    mnemonic = insn.mnemonic
    read: set[Register] = set()

    if mnemonic in ("push", "pop", "call", "ret", "leave"):
        read.add(RSP)
    if mnemonic == "leave":
        read.add(RBP)

    operands = insn.operands
    if mnemonic == "xor" and len(operands) == 2 and operands[0] == operands[1] and isinstance(
        operands[0], Register
    ):
        return read

    for position, operand in enumerate(operands):
        if isinstance(operand, Mem):
            read.update(_operand_registers(operand))
            continue
        if not isinstance(operand, Register):
            continue
        if position == 0:
            if mnemonic in _READS_FIRST_OPERAND or mnemonic in _COMPARE_ONLY:
                read.add(operand)
            elif mnemonic in ("call", "jmp"):
                read.add(operand)
        else:
            read.add(operand)
    return read


def clobbers_register(insn: Instruction, reg: Register) -> bool:
    """Whether ``insn`` overwrites ``reg`` without depending on its old value."""
    return reg in registers_written(insn) and reg not in registers_read(insn)


def moves_immediate_to(insn: Instruction, reg: Register) -> int | None:
    """If ``insn`` is ``mov reg, imm`` (or ``xor reg, reg``), the value loaded."""
    if insn.mnemonic == "mov" and len(insn.operands) == 2:
        dst, src = insn.operands
        if isinstance(dst, Register) and dst == reg and isinstance(src, Imm):
            return src.value
    if insn.mnemonic == "xor" and len(insn.operands) == 2:
        dst, src = insn.operands
        if dst == reg and src == reg:
            return 0
    return None
