"""Tests for LEB128 encoding, including property-based round trips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dwarf.leb128 import (
    decode_sleb128,
    decode_uleb128,
    encode_sleb128,
    encode_uleb128,
)


def test_uleb_known_values():
    assert encode_uleb128(0) == b"\x00"
    assert encode_uleb128(127) == b"\x7f"
    assert encode_uleb128(128) == b"\x80\x01"
    assert encode_uleb128(624485) == b"\xe5\x8e\x26"


def test_sleb_known_values():
    assert encode_sleb128(0) == b"\x00"
    assert encode_sleb128(2) == b"\x02"
    assert encode_sleb128(-2) == b"\x7e"
    assert encode_sleb128(-8) == b"\x78"  # the x86-64 data alignment factor
    assert encode_sleb128(-129) == b"\xff\x7e"


def test_uleb_rejects_negative():
    with pytest.raises(ValueError):
        encode_uleb128(-1)


def test_decode_uses_offset_and_returns_new_position():
    data = b"\xff" + encode_uleb128(300) + b"\x00"
    value, pos = decode_uleb128(data, 1)
    assert value == 300
    assert data[pos] == 0


def test_decode_truncated_raises():
    with pytest.raises(ValueError):
        decode_uleb128(b"\x80")
    with pytest.raises(ValueError):
        decode_sleb128(b"\xff")


@given(st.integers(min_value=0, max_value=2**64))
def test_uleb_roundtrip(value):
    encoded = encode_uleb128(value)
    decoded, pos = decode_uleb128(encoded)
    assert decoded == value and pos == len(encoded)


@given(st.integers(min_value=-(2**63), max_value=2**63))
def test_sleb_roundtrip(value):
    encoded = encode_sleb128(value)
    decoded, pos = decode_sleb128(encoded)
    assert decoded == value and pos == len(encoded)


@given(st.integers(min_value=0, max_value=2**32), st.integers(min_value=-(2**32), max_value=2**32))
def test_concatenated_values_decode_in_sequence(first, second):
    data = encode_uleb128(first) + encode_sleb128(second)
    value1, pos = decode_uleb128(data, 0)
    value2, end = decode_sleb128(data, pos)
    assert (value1, value2) == (first, second) and end == len(data)
