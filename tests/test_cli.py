"""Tests for the fetch-detect command line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def elf_path(tmp_path, rich_binary):
    path = tmp_path / "input.elf"
    path.write_bytes(rich_binary.elf_bytes)
    return str(path)


def test_parser_defaults():
    args = build_parser().parse_args(["binary.elf"])
    assert args.binary == "binary.elf"
    assert not args.no_recursion and not args.no_tailcall


def test_cli_prints_detected_starts(elf_path, rich_binary, capsys):
    assert main([elf_path]) == 0
    output = capsys.readouterr().out
    lines = [line for line in output.splitlines() if line and not line.startswith("#")]
    detected = {int(line.split()[0], 16) for line in lines}
    truth = rich_binary.ground_truth.function_starts
    assert len(detected & truth) / len(truth) > 0.97


def test_cli_reports_merged_parts(elf_path, capsys):
    assert main([elf_path]) == 0
    output = capsys.readouterr().out
    assert "merged" in output


def test_cli_fde_only_mode(elf_path, rich_binary, capsys):
    assert main([elf_path, "--no-recursion"]) == 0
    output = capsys.readouterr().out
    lines = [line for line in output.splitlines() if line and not line.startswith("#")]
    assert len(lines) == len(rich_binary.image.fdes) - (
        1 if any(f.bad_fde_offset for f in rich_binary.ground_truth.functions) else 0
    ) or len(lines) <= len(rich_binary.image.fdes)


def test_cli_stage_attribution(elf_path, capsys):
    assert main([elf_path, "--stages"]) == 0
    output = capsys.readouterr().out
    assert "\tfde" in output


def test_cli_symbol_comparison(elf_path, capsys):
    assert main([elf_path, "--compare-symbols"]) == 0
    output = capsys.readouterr().out
    assert "symbols:" in output


def test_cli_missing_file_returns_error(capsys):
    assert main(["/nonexistent/path.elf"]) == 1
    assert "error" in capsys.readouterr().err


def test_cli_rejects_non_elf_input(tmp_path, capsys):
    path = tmp_path / "not_elf.bin"
    path.write_bytes(b"definitely not an ELF file")
    assert main([str(path)]) == 1


def test_cli_warns_without_eh_frame(tmp_path, capsys):
    from repro.elf import ElfFile, Section, write_elf
    from repro.elf import constants as C

    text = Section(
        name=".text", data=b"\xc3" + b"\x90" * 15, address=0x401000,
        flags=C.SHF_ALLOC | C.SHF_EXECINSTR,
    )
    path = tmp_path / "noeh.elf"
    path.write_bytes(write_elf(ElfFile(sections=[text], entry_point=0x401000)))
    assert main([str(path)]) == 0
    assert "no .eh_frame" in capsys.readouterr().err
