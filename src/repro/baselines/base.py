"""Shared machinery for the baseline tool models."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.analysis.gaps import compute_gaps
from repro.analysis.prologue import match_prologues, select_prologue_patterns
from repro.analysis.recursive import RecursiveDisassembler
from repro.analysis.result import DisassemblyResult
from repro.core.results import DetectionResult
from repro.elf.image import BinaryImage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.context import AnalysisContext


class BaselineTool(ABC):
    """A function-start detector modelled after an existing tool.

    ``detect`` takes an optional shared
    :class:`~repro.core.context.AnalysisContext`; results are identical with
    and without one, but a context shared across tools (and strategy-ladder
    rungs) decodes every instruction of the binary at most once.
    """

    #: short name used in tables (overridden by subclasses)
    name: str = "baseline"

    @abstractmethod
    def detect(
        self, image: BinaryImage, context: "AnalysisContext | None" = None
    ) -> DetectionResult:
        """Detect function starts in ``image``."""

    # ------------------------------------------------------------------
    # Shared building blocks
    # ------------------------------------------------------------------
    def _recursive(
        self,
        image: BinaryImage,
        seeds: set[int],
        context: "AnalysisContext | None" = None,
    ) -> tuple[RecursiveDisassembler, DisassemblyResult, set[int]]:
        """Run recursive disassembly and return the grown start set."""
        disassembler = RecursiveDisassembler(image, context=context)
        seeds = {s for s in seeds if image.is_executable_address(s)}
        result = disassembler.disassemble(seeds)
        starts = set(seeds)
        starts |= {
            t for t in result.call_targets if image.is_executable_address(t)
        }
        return disassembler, result, starts

    def _grow_from_matches(
        self,
        image: BinaryImage,
        disassembler: RecursiveDisassembler,
        result: DisassemblyResult,
        matches: set[int],
    ) -> set[int]:
        """Recursively disassemble from heuristic matches, merging state."""
        new_starts = {m for m in matches if image.is_executable_address(m)}
        if not new_starts:
            return set()
        extension = disassembler.disassemble(new_starts)
        result.functions.update(extension.functions)
        result.instructions.update(extension.instructions)
        result.call_targets.update(extension.call_targets)
        grown = set(new_starts)
        grown |= {
            t for t in extension.call_targets if image.is_executable_address(t)
        }
        return grown

    @staticmethod
    def _gaps(image: BinaryImage, result: DisassemblyResult) -> list[tuple[int, int]]:
        return compute_gaps(image, result)

    @staticmethod
    def _prologue_matches(
        image: BinaryImage,
        gaps: list[tuple[int, int]],
        context: "AnalysisContext | None" = None,
    ) -> set[int]:
        """Gap prologue matching with the scenario-appropriate signature set.

        CET binaries get endbr64-anchored patterns (every function entry is a
        landing pad there), everything else the classic prologues.
        """
        return match_prologues(
            image, gaps, patterns=select_prologue_patterns(image), context=context
        )

    @staticmethod
    def _aligned_pointer_sweep(
        image: BinaryImage,
        result: DetectionResult,
        disassembly: DisassemblyResult,
        context: "AnalysisContext | None" = None,
    ) -> set[int]:
        """Conservative pointer sweep of 8-byte-aligned data-section slots.

        Shared by the IDA- and Binary-Ninja-style models: executable targets
        of aligned slots, minus already-detected starts and pointers into
        code already attributed to a function (e.g. jump-table entries).
        """
        if context is not None:
            candidates = context.aligned_data_pointers()
        else:
            from repro.core.context import scan_aligned_pointers

            candidates = scan_aligned_pointers(image)
        return {
            value
            for value in candidates
            if value not in result.function_starts
            and value not in disassembly.instructions
        }

    @staticmethod
    def _reference_targets(result: DisassemblyResult) -> set[int]:
        """Addresses referenced by any decoded call or jump."""
        targets: set[int] = set()
        for insn in result.instructions.values():
            target = insn.branch_target
            if target is not None:
                targets.add(target)
        return targets

    @staticmethod
    def _symbol_starts(image: BinaryImage) -> set[int]:
        return {s.address for s in image.function_symbols}

    @staticmethod
    def _fde_starts(image: BinaryImage) -> set[int]:
        return {fde.pc_begin for fde in image.fdes}
