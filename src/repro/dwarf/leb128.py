"""LEB128 variable-length integer encoding (DWARF primitive)."""

from __future__ import annotations


def encode_uleb128(value: int) -> bytes:
    """Encode a non-negative integer as unsigned LEB128."""
    if value < 0:
        raise ValueError("ULEB128 cannot encode negative values")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def encode_sleb128(value: int) -> bytes:
    """Encode a signed integer as signed LEB128."""
    out = bytearray()
    more = True
    while more:
        byte = value & 0x7F
        value >>= 7
        sign_bit = byte & 0x40
        if (value == 0 and not sign_bit) or (value == -1 and sign_bit):
            more = False
        else:
            byte |= 0x80
        out.append(byte)
    return bytes(out)


def decode_uleb128(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode an unsigned LEB128 value.

    Returns ``(value, new_offset)``.
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise ValueError("truncated ULEB128")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def decode_sleb128(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a signed LEB128 value.

    Returns ``(value, new_offset)``.
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise ValueError("truncated SLEB128")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        shift += 7
        if not byte & 0x80:
            if byte & 0x40:
                result -= 1 << shift
            return result, pos
