"""Call Frame Instruction (CFI) model, encoder and decoder.

A CFI program is the list of instructions carried by a CIE (initial rules) or
an FDE (per-function rules).  Instructions are represented in *resolved* form:
``advance_loc`` deltas are in bytes and ``offset`` rules carry the actual
CFA-relative byte offset, with the code/data alignment factoring applied at
encode/decode time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dwarf import constants as C
from repro.dwarf.leb128 import (
    decode_sleb128,
    decode_uleb128,
    encode_sleb128,
    encode_uleb128,
)


@dataclass(frozen=True)
class CfiInstruction:
    """A single call-frame instruction.

    ``name`` is one of: ``def_cfa``, ``def_cfa_register``, ``def_cfa_offset``,
    ``advance_loc``, ``offset``, ``restore``, ``undefined``, ``same_value``,
    ``register``, ``remember_state``, ``restore_state``, ``def_cfa_expression``,
    ``expression``, ``gnu_args_size`` or ``nop``; ``operands`` carries the
    resolved operand values for that instruction.
    """

    name: str
    operands: tuple = ()

    def __str__(self) -> str:  # pragma: no cover - display helper
        ops = ", ".join(str(op) for op in self.operands)
        return f"DW_CFA_{self.name}" + (f": {ops}" if ops else "")


# Convenience constructors --------------------------------------------------

def def_cfa(register: int, offset: int) -> CfiInstruction:
    return CfiInstruction("def_cfa", (register, offset))


def def_cfa_register(register: int) -> CfiInstruction:
    return CfiInstruction("def_cfa_register", (register,))


def def_cfa_offset(offset: int) -> CfiInstruction:
    return CfiInstruction("def_cfa_offset", (offset,))


def advance_loc(delta: int) -> CfiInstruction:
    return CfiInstruction("advance_loc", (delta,))


def offset(register: int, cfa_offset: int) -> CfiInstruction:
    """Register saved at ``CFA + cfa_offset`` (byte offset, usually negative)."""
    return CfiInstruction("offset", (register, cfa_offset))


def restore(register: int) -> CfiInstruction:
    return CfiInstruction("restore", (register,))


def def_cfa_expression(expression: bytes) -> CfiInstruction:
    return CfiInstruction("def_cfa_expression", (expression,))


def expression(register: int, expr: bytes) -> CfiInstruction:
    return CfiInstruction("expression", (register, expr))


def remember_state() -> CfiInstruction:
    return CfiInstruction("remember_state")


def restore_state() -> CfiInstruction:
    return CfiInstruction("restore_state")


def nop() -> CfiInstruction:
    return CfiInstruction("nop")


# Encoding -------------------------------------------------------------------

def encode_cfi_program(
    instructions: list[CfiInstruction],
    *,
    code_alignment: int = 1,
    data_alignment: int = -8,
) -> bytes:
    """Encode a CFI program to its binary form."""
    out = bytearray()
    for insn in instructions:
        out += _encode_one(insn, code_alignment, data_alignment)
    return bytes(out)


def _encode_one(insn: CfiInstruction, code_alignment: int, data_alignment: int) -> bytes:
    name = insn.name
    ops = insn.operands
    if name == "nop":
        return bytes([C.DW_CFA_nop])
    if name == "advance_loc":
        delta = ops[0]
        if delta % code_alignment:
            raise ValueError(f"advance_loc delta {delta} not a multiple of code alignment")
        factored = delta // code_alignment
        if factored < 0x40:
            return bytes([C.DW_CFA_advance_loc | factored])
        if factored < 0x100:
            return bytes([C.DW_CFA_advance_loc1, factored])
        if factored < 0x10000:
            return bytes([C.DW_CFA_advance_loc2, factored & 0xFF, factored >> 8])
        return bytes([C.DW_CFA_advance_loc4]) + factored.to_bytes(4, "little")
    if name == "def_cfa":
        return bytes([C.DW_CFA_def_cfa]) + encode_uleb128(ops[0]) + encode_uleb128(ops[1])
    if name == "def_cfa_register":
        return bytes([C.DW_CFA_def_cfa_register]) + encode_uleb128(ops[0])
    if name == "def_cfa_offset":
        return bytes([C.DW_CFA_def_cfa_offset]) + encode_uleb128(ops[0])
    if name == "offset":
        register, byte_offset = ops
        factored = byte_offset // data_alignment
        if factored < 0:
            return (
                bytes([C.DW_CFA_offset_extended_sf])
                + encode_uleb128(register)
                + encode_sleb128(factored)
            )
        if register < 0x40:
            return bytes([C.DW_CFA_offset | register]) + encode_uleb128(factored)
        return (
            bytes([C.DW_CFA_offset_extended])
            + encode_uleb128(register)
            + encode_uleb128(factored)
        )
    if name == "restore":
        register = ops[0]
        if register < 0x40:
            return bytes([C.DW_CFA_restore | register])
        return bytes([C.DW_CFA_restore_extended]) + encode_uleb128(register)
    if name == "undefined":
        return bytes([C.DW_CFA_undefined]) + encode_uleb128(ops[0])
    if name == "same_value":
        return bytes([C.DW_CFA_same_value]) + encode_uleb128(ops[0])
    if name == "register":
        return bytes([C.DW_CFA_register]) + encode_uleb128(ops[0]) + encode_uleb128(ops[1])
    if name == "remember_state":
        return bytes([C.DW_CFA_remember_state])
    if name == "restore_state":
        return bytes([C.DW_CFA_restore_state])
    if name == "def_cfa_expression":
        expr = ops[0]
        return bytes([C.DW_CFA_def_cfa_expression]) + encode_uleb128(len(expr)) + expr
    if name == "expression":
        register, expr = ops
        return (
            bytes([C.DW_CFA_expression])
            + encode_uleb128(register)
            + encode_uleb128(len(expr))
            + expr
        )
    if name == "gnu_args_size":
        return bytes([C.DW_CFA_GNU_args_size]) + encode_uleb128(ops[0])
    raise ValueError(f"cannot encode CFI instruction: {name}")


# Decoding -------------------------------------------------------------------

def decode_cfi_program(
    data: bytes,
    *,
    code_alignment: int = 1,
    data_alignment: int = -8,
) -> list[CfiInstruction]:
    """Decode a CFI program from its binary form into resolved instructions."""
    out: list[CfiInstruction] = []
    pos = 0
    while pos < len(data):
        opcode = data[pos]
        pos += 1
        primary = opcode & 0xC0
        low = opcode & 0x3F

        if primary == C.DW_CFA_advance_loc:
            out.append(advance_loc(low * code_alignment))
            continue
        if primary == C.DW_CFA_offset:
            factored, pos = decode_uleb128(data, pos)
            out.append(offset(low, factored * data_alignment))
            continue
        if primary == C.DW_CFA_restore:
            out.append(restore(low))
            continue

        if opcode == C.DW_CFA_nop:
            out.append(nop())
        elif opcode == C.DW_CFA_advance_loc1:
            out.append(advance_loc(data[pos] * code_alignment))
            pos += 1
        elif opcode == C.DW_CFA_advance_loc2:
            value = int.from_bytes(data[pos : pos + 2], "little")
            out.append(advance_loc(value * code_alignment))
            pos += 2
        elif opcode == C.DW_CFA_advance_loc4:
            value = int.from_bytes(data[pos : pos + 4], "little")
            out.append(advance_loc(value * code_alignment))
            pos += 4
        elif opcode == C.DW_CFA_def_cfa:
            register, pos = decode_uleb128(data, pos)
            cfa_offset, pos = decode_uleb128(data, pos)
            out.append(def_cfa(register, cfa_offset))
        elif opcode == C.DW_CFA_def_cfa_register:
            register, pos = decode_uleb128(data, pos)
            out.append(def_cfa_register(register))
        elif opcode == C.DW_CFA_def_cfa_offset:
            cfa_offset, pos = decode_uleb128(data, pos)
            out.append(def_cfa_offset(cfa_offset))
        elif opcode == C.DW_CFA_def_cfa_sf:
            register, pos = decode_uleb128(data, pos)
            factored, pos = decode_sleb128(data, pos)
            out.append(def_cfa(register, factored * data_alignment))
        elif opcode == C.DW_CFA_def_cfa_offset_sf:
            factored, pos = decode_sleb128(data, pos)
            out.append(def_cfa_offset(factored * data_alignment))
        elif opcode == C.DW_CFA_offset_extended:
            register, pos = decode_uleb128(data, pos)
            factored, pos = decode_uleb128(data, pos)
            out.append(offset(register, factored * data_alignment))
        elif opcode == C.DW_CFA_offset_extended_sf:
            register, pos = decode_uleb128(data, pos)
            factored, pos = decode_sleb128(data, pos)
            out.append(offset(register, factored * data_alignment))
        elif opcode == C.DW_CFA_restore_extended:
            register, pos = decode_uleb128(data, pos)
            out.append(restore(register))
        elif opcode == C.DW_CFA_undefined:
            register, pos = decode_uleb128(data, pos)
            out.append(CfiInstruction("undefined", (register,)))
        elif opcode == C.DW_CFA_same_value:
            register, pos = decode_uleb128(data, pos)
            out.append(CfiInstruction("same_value", (register,)))
        elif opcode == C.DW_CFA_register:
            reg_a, pos = decode_uleb128(data, pos)
            reg_b, pos = decode_uleb128(data, pos)
            out.append(CfiInstruction("register", (reg_a, reg_b)))
        elif opcode == C.DW_CFA_remember_state:
            out.append(remember_state())
        elif opcode == C.DW_CFA_restore_state:
            out.append(restore_state())
        elif opcode == C.DW_CFA_def_cfa_expression:
            length, pos = decode_uleb128(data, pos)
            out.append(def_cfa_expression(data[pos : pos + length]))
            pos += length
        elif opcode == C.DW_CFA_expression:
            register, pos = decode_uleb128(data, pos)
            length, pos = decode_uleb128(data, pos)
            out.append(expression(register, data[pos : pos + length]))
            pos += length
        elif opcode == C.DW_CFA_GNU_args_size:
            size, pos = decode_uleb128(data, pos)
            out.append(CfiInstruction("gnu_args_size", (size,)))
        else:
            raise ValueError(f"unknown CFI opcode {opcode:#04x}")
    return out


def scan_cfi_program(data: bytes) -> None:
    """Validate a CFI program without materialising instruction objects.

    Performs exactly the reads and opcode dispatch of
    :func:`decode_cfi_program` — the same ``ValueError`` for unknown opcodes
    and the same ``IndexError`` out of truncated LEB128 operands or short
    one-byte reads — so running it inside the parser's error envelope keeps
    the envelope identical while the (allocation-heavy) decode is deferred to
    :class:`LazyCfiProgram`.
    """
    pos = 0
    n = len(data)
    while pos < n:
        opcode = data[pos]
        pos += 1
        primary = opcode & 0xC0

        if primary == C.DW_CFA_advance_loc or primary == C.DW_CFA_restore:
            continue
        if primary == C.DW_CFA_offset:
            _, pos = decode_uleb128(data, pos)
            continue

        if opcode in _SCAN_NO_OPERANDS:
            continue
        if opcode in _SCAN_ONE_ULEB:
            _, pos = decode_uleb128(data, pos)
        elif opcode == C.DW_CFA_advance_loc1:
            data[pos]
            pos += 1
        elif opcode == C.DW_CFA_advance_loc2:
            pos += 2
        elif opcode == C.DW_CFA_advance_loc4:
            pos += 4
        elif opcode in _SCAN_TWO_ULEB:
            _, pos = decode_uleb128(data, pos)
            _, pos = decode_uleb128(data, pos)
        elif opcode == C.DW_CFA_def_cfa_sf:
            _, pos = decode_uleb128(data, pos)
            _, pos = decode_sleb128(data, pos)
        elif opcode == C.DW_CFA_def_cfa_offset_sf:
            _, pos = decode_sleb128(data, pos)
        elif opcode == C.DW_CFA_offset_extended_sf:
            _, pos = decode_uleb128(data, pos)
            _, pos = decode_sleb128(data, pos)
        elif opcode == C.DW_CFA_def_cfa_expression:
            length, pos = decode_uleb128(data, pos)
            pos += length
        elif opcode == C.DW_CFA_expression:
            _, pos = decode_uleb128(data, pos)
            length, pos = decode_uleb128(data, pos)
            pos += length
        else:
            raise ValueError(f"unknown CFI opcode {opcode:#04x}")


_SCAN_NO_OPERANDS = frozenset(
    (C.DW_CFA_nop, C.DW_CFA_remember_state, C.DW_CFA_restore_state)
)
_SCAN_ONE_ULEB = frozenset(
    (
        C.DW_CFA_def_cfa_register,
        C.DW_CFA_def_cfa_offset,
        C.DW_CFA_restore_extended,
        C.DW_CFA_undefined,
        C.DW_CFA_same_value,
        C.DW_CFA_GNU_args_size,
    )
)
_SCAN_TWO_ULEB = frozenset(
    (C.DW_CFA_def_cfa, C.DW_CFA_offset_extended, C.DW_CFA_register)
)


class LazyCfiProgram:
    """A CFI program that decodes on first access.

    Drop-in sequence replacement for the ``list[CfiInstruction]`` the parser
    used to store eagerly: iteration, indexing, ``len`` and equality all
    force the decode and delegate to it.  ``raw`` (with the CIE's alignment
    factors) stays available so scans that only need opcode-level facts — the
    stack-height completeness check — can run without building instruction
    objects at all.  The raw bytes must have been validated with
    :func:`scan_cfi_program` at parse time, so forcing never raises.
    """

    __slots__ = ("raw", "code_alignment", "data_alignment", "_decoded")

    def __init__(
        self, raw: bytes, *, code_alignment: int = 1, data_alignment: int = -8
    ):
        self.raw = raw
        self.code_alignment = code_alignment
        self.data_alignment = data_alignment
        self._decoded: list[CfiInstruction] | None = None

    def _force(self) -> list[CfiInstruction]:
        decoded = self._decoded
        if decoded is None:
            decoded = self._decoded = decode_cfi_program(
                self.raw,
                code_alignment=self.code_alignment,
                data_alignment=self.data_alignment,
            )
        return decoded

    def __iter__(self):
        return iter(self._force())

    def __len__(self) -> int:
        return len(self._force())

    def __bool__(self) -> bool:
        # Every program byte decodes to at least one instruction, so
        # truthiness never needs the decode.
        decoded = self._decoded
        return bool(self.raw) if decoded is None else bool(decoded)

    def __getitem__(self, index):
        return self._force()[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, LazyCfiProgram):
            return self._force() == other._force()
        if isinstance(other, list):
            return self._force() == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - display helper
        if self._decoded is None:
            return f"LazyCfiProgram(<{len(self.raw)} bytes, undecoded>)"
        return f"LazyCfiProgram({self._decoded!r})"
