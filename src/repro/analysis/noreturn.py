"""Non-returning function analysis.

The safe pipeline uses the *precise* mode: a function is non-returning only
when no reachable path ends in a ``ret`` (the DYNINST-style fix-point the
paper reuses, §IV-C).  The *eager* mode over-approximates — any function that
contains an abort-style terminator or calls a known non-returning function on
any path is treated as non-returning — and models the inaccuracy that makes
GHIDRA's control-flow repairing remove true function starts (§IV-C).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.recursive import RecursiveDisassembler
from repro.analysis.result import DisassemblyResult
from repro.elf.image import BinaryImage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.context import AnalysisContext


class NoreturnAnalysis:
    """Classify detected functions as returning / non-returning."""

    def __init__(
        self,
        image: BinaryImage,
        mode: str = "precise",
        *,
        context: "AnalysisContext | None" = None,
    ):
        if mode not in ("precise", "eager"):
            raise ValueError(f"unknown noreturn mode: {mode}")
        self.image = image
        self.mode = mode
        self.context = context

    def compute(
        self, result: DisassemblyResult, disassembler: RecursiveDisassembler | None = None
    ) -> set[int]:
        """Return the set of non-returning function starts in ``result``."""
        if self.mode == "precise":
            if disassembler is None:
                # One accumulating disassembler for the whole compute() call,
                # exactly as in the context-free run: the shared context only
                # contributes canonical (order-independent) caches, so the
                # verdicts — including on call cycles — are identical with
                # and without it.
                disassembler = RecursiveDisassembler(self.image, context=self.context)
            return {
                start for start in result.functions if disassembler.is_noreturn(start)
            }
        return self._eager(result)

    def _eager(self, result: DisassemblyResult) -> set[int]:
        # Over-approximation: any function containing an abort-style
        # terminator anywhere is flagged, regardless of whether other paths
        # return.  This is the kind of imprecision that makes control-flow
        # repairing remove true function starts.
        noreturn: set[int] = set()
        for start, function in result.functions.items():
            if any(i.mnemonic in ("ud2", "hlt") for i in function.instructions.values()):
                noreturn.add(start)
        return noreturn
