#!/usr/bin/env python3
"""Stack unwinding with ``.eh_frame`` (§III of the paper).

Exception handling needs three pieces of information at every program point:
which function the PC is in (T1), where the frame's CFA and return address
are (T2), and where callee-saved registers were spilled (T3).  This example
builds a small program with a three-deep call chain whose innermost function
"throws" (executes ``ud2``), runs it in the bundled emulator until the trap,
and then unwinds the stack using only call-frame information — producing the
same backtrace the emulator recorded while executing calls.
"""

from __future__ import annotations

from repro.synth import compile_program
from repro.synth.plan import FunctionPlan, ProgramPlan
from repro.synth.profiles import CompilerFamily, OptLevel, default_profile
from repro.unwind import Emulator, EmulatorTrap, StackUnwinder


def build_program() -> ProgramPlan:
    """main -> parse_input -> divide, which aborts (models a C++ throw)."""
    profile = default_profile(CompilerFamily.GCC, OptLevel.O2)
    plan = ProgramPlan(name="unwind-demo", profile=profile)
    plan.functions = [
        FunctionPlan(
            name="_start", kind="entry", reachable_via="entry", arg_count=0,
            body_statements=2, callees=["main"], noreturn_callee="exit_impl",
        ),
        FunctionPlan(name="exit_impl", kind="noreturn", is_noreturn=True, arg_count=1,
                     body_statements=2),
        FunctionPlan(
            name="divide", kind="noreturn", is_noreturn=True, arg_count=2,
            frame_size=16, saved_registers=1, body_statements=3,
        ),
        FunctionPlan(
            name="parse_input", arg_count=2, frame_size=32, saved_registers=2,
            body_statements=4, callees=["divide"],
        ),
        FunctionPlan(
            name="main", arg_count=2, frame_size=32, saved_registers=1,
            body_statements=4, callees=["parse_input"],
        ),
    ]
    return plan


def main() -> None:
    binary = compile_program(build_program(), keep_elf_bytes=False)
    image = binary.image
    names = {f.address: f.name for f in binary.ground_truth.functions}

    emulator = Emulator(image)
    try:
        emulator.run()
    except EmulatorTrap as trap:
        print(f"execution trapped: {trap.reason} at rip={trap.state.rip:#x}")
        state = trap.state
    else:  # pragma: no cover - the demo program always traps
        raise SystemExit("expected the program to trap")

    print("\ncall trace recorded by the emulator (most recent last):")
    for call_site, callee in emulator.call_trace:
        print(f"  call at {call_site:#x} -> {names.get(callee, hex(callee))}")

    unwinder = StackUnwinder(image)
    frames = unwinder.unwind(state)
    print("\nbacktrace recovered from .eh_frame alone:")
    for depth, frame in enumerate(frames):
        name = names.get(frame.function_start, hex(frame.function_start))
        ret = f"{frame.return_address:#x}" if frame.return_address else "-"
        print(f"  #{depth}  {name:<12} pc={frame.pc:#x}  cfa={frame.cfa:#x}  return={ret}")

    recovered = [names.get(f.function_start) for f in frames]
    print(f"\nunwound call chain: {' <- '.join(recovered)}")


if __name__ == "__main__":
    main()
