"""Record structures for parsed ``.eh_frame`` contents."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dwarf.cfi import CfiInstruction


@dataclass
class CieRecord:
    """A Common Information Entry.

    Attributes:
        offset: byte offset of the entry within the ``.eh_frame`` section.
        version: CIE version (1 for ``.eh_frame`` emitted by GCC/Clang).
        augmentation: augmentation string (typically ``"zR"``).
        code_alignment: code alignment factor.
        data_alignment: data alignment factor (``-8`` on x86-64).
        return_address_register: DWARF number of the return-address column.
        fde_pointer_encoding: DW_EH_PE encoding used for FDE pc pointers.
        initial_instructions: CFI program establishing the initial row.
    """

    offset: int
    version: int = 1
    augmentation: str = "zR"
    code_alignment: int = 1
    data_alignment: int = -8
    return_address_register: int = 16
    fde_pointer_encoding: int = 0x1B
    initial_instructions: list[CfiInstruction] = field(default_factory=list)


@dataclass
class FdeRecord:
    """A Frame Description Entry describing one contiguous code range.

    Attributes:
        offset: byte offset of the entry within the ``.eh_frame`` section.
        cie: the CIE this FDE refers to.
        pc_begin: virtual address of the first covered instruction.
        pc_range: length of the covered range in bytes.
        instructions: the FDE's CFI program.
        lsda: language-specific data area pointer, if present.
    """

    offset: int
    cie: CieRecord
    pc_begin: int
    pc_range: int
    instructions: list[CfiInstruction] = field(default_factory=list)
    lsda: int | None = None

    @property
    def pc_end(self) -> int:
        """Address one past the last covered byte."""
        return self.pc_begin + self.pc_range

    def covers(self, address: int) -> bool:
        """Whether ``address`` falls inside the covered range."""
        return self.pc_begin <= address < self.pc_end
