"""Table IV — static stack-height analyses versus the CFI baseline."""

from repro.eval import run_stack_height_study
from repro.eval.tables import render_table4


def test_table4_stack_height_quality(benchmark, selfbuilt_corpus_small, report_writer):
    results = benchmark.pedantic(
        run_stack_height_study, args=(selfbuilt_corpus_small,), rounds=1, iterations=1
    )
    report_writer("table4_stackheight", render_table4(results))

    # The static analyses are good but not perfect: high precision everywhere,
    # and somewhere in the corpus they fail to report a height that CFI knows
    # (they give up on constructs such as unresolved indirect jumps), which is
    # the paper's justification for reading heights from CFI in Algorithm 1.
    incomplete_somewhere = False
    for level, flavors in results.items():
        for flavor in ("angr", "dyninst"):
            full = flavors[flavor]["full"]
            jump = flavors[flavor]["jump"]
            assert full.precision > 90.0, (level, flavor)
            assert jump.precision > 90.0, (level, flavor)
            if full.recall < 100.0:
                incomplete_somewhere = True
    assert incomplete_somewhere
