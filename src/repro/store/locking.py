"""Cross-process advisory file locks for the artifact store.

A :class:`FileLock` serialises read-modify-write sections — index journal
appends, journal compaction, garbage collection, layout migration, corpus
build races — across every process sharing one store root.  The lock is an
``O_CREAT | O_EXCL`` lock file holding the owner's pid, its kernel start
time (so a recycled pid cannot impersonate a dead holder) and the
acquisition time, which gives three properties the store needs:

* **timeout** — acquisition polls (with exponential backoff) for up to
  ``timeout`` seconds, then raises :class:`LockTimeout` instead of hanging
  a worker forever;
* **stale-lock recovery** — a lock file whose owner pid no longer exists
  (same host) is broken immediately, and one older than ``stale_after``
  seconds is broken regardless, so a crashed or wedged writer can never
  permanently brick the store;
* **thread safety** — an in-process ``threading.Lock`` fronts the file,
  so threads of one process queue on a mutex instead of all spinning on
  the filesystem.

The lock is advisory and non-reentrant: only code paths that take it are
serialised, and a thread re-acquiring its own lock times out.  Blob and
record writes deliberately do *not* take it — they are idempotent atomic
renames (see :func:`repro.store.backend.atomic_write_bytes`) and safe to
race by content addressing.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

from repro.resilience import faults


class LockTimeout(TimeoutError):
    """Raised when a :class:`FileLock` cannot be acquired within its timeout.

    Subclasses :class:`TimeoutError`, which the default
    :class:`repro.resilience.RetryPolicy` classifies as retryable — lock
    contention is transient by construction."""


def _process_start_ticks(pid: int) -> int | None:
    """The kernel start time (clock ticks since boot) of ``pid``, or ``None``.

    Field 22 of ``/proc/<pid>/stat``; together with the pid it uniquely
    identifies a process incarnation, which is what lets the lock tell a
    dead holder from a PID-reused impostor.  The comm field (2) may
    contain spaces and parentheses, so parse from the *last* ``)``.
    Returns ``None`` off Linux or when the process is gone.
    """
    try:
        with open(f"/proc/{pid}/stat", "rb") as stream:
            stat = stream.read().decode("ascii", "replace")
        return int(stat.rsplit(")", 1)[1].split()[19])
    except (OSError, ValueError, IndexError):
        return None


class FileLock:
    """An ``O_EXCL``-based advisory lock file with staleness recovery.

    Usage::

        lock = FileLock(store_root / ".lock", timeout=30.0)
        with lock:
            ...  # exclusive across processes sharing the store

    :meth:`acquire` returns the seconds spent waiting, which the store
    aggregates into its lock-wait statistics (and the contention benchmark
    turns into percentiles).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        timeout: float = 30.0,
        stale_after: float = 120.0,
        poll_interval: float = 0.002,
    ):
        self.path = Path(path)
        self.timeout = float(timeout)
        self.stale_after = float(stale_after)
        self.poll_interval = float(poll_interval)
        #: seconds the most recent successful acquisition waited
        self.last_wait = 0.0
        self._thread_lock = threading.Lock()

    # -- acquisition ----------------------------------------------------
    def acquire(self) -> float:
        """Take the lock; returns the seconds spent waiting.

        Raises :class:`LockTimeout` when the lock cannot be taken within
        ``timeout`` seconds (counting both in-process queueing and
        cross-process polling).
        """
        faults.fire("store.lock", self.path.name, raises=LockTimeout)
        start = time.monotonic()
        if not self._thread_lock.acquire(timeout=self.timeout):
            raise LockTimeout(
                f"{self.path}: held by another thread for over {self.timeout}s"
            )
        delay = self.poll_interval
        while True:
            try:
                handle = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o666
                )
            except FileExistsError:
                self._break_if_stale()
                if time.monotonic() - start >= self.timeout:
                    self._thread_lock.release()
                    raise LockTimeout(
                        f"{self.path}: not acquired within {self.timeout}s"
                    )
                time.sleep(delay)
                delay = min(delay * 2, 0.05)
                continue
            except FileNotFoundError:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                continue
            try:
                pid = os.getpid()
                ticks = _process_start_ticks(pid)
                os.write(
                    handle,
                    f"{pid} {ticks if ticks is not None else '-'} {time.time():.3f}\n".encode(),
                )
            finally:
                os.close(handle)
            self.last_wait = time.monotonic() - start
            return self.last_wait

    def release(self) -> None:
        """Drop the lock (missing lock files are tolerated, not errors)."""
        try:
            os.unlink(self.path)
        except OSError:
            pass
        self._thread_lock.release()

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    # -- staleness ------------------------------------------------------
    def _break_if_stale(self) -> None:
        """Unlink the lock file if its owner is provably gone or too old.

        Three independent signals: a dead owner pid (same-host crash — the
        common case) breaks immediately; a live pid whose kernel start
        time differs from the one recorded at acquisition is a *PID-reused
        impostor*, not the holder, and breaks immediately too; and an age
        beyond ``stale_after`` breaks regardless, covering foreign-host
        owners and wedged processes.  Breaking races benignly: every
        breaker unlinks, then every waiter re-races on ``O_EXCL`` and
        exactly one wins.
        """
        try:
            fields = self.path.read_text().split()
            age = time.time() - self.path.stat().st_mtime
        except (OSError, ValueError):
            return  # vanished or unreadable: re-race on O_EXCL
        stale = False
        if fields and fields[0].isdigit():
            pid = int(fields[0])
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                stale = True
            except OSError:
                pass  # alive, or not ours to probe
            else:
                # pid exists — but is it the same *incarnation* that took
                # the lock?  (field 2 is "-" for pre-starttime lock files
                # and off-Linux holders: no claim, skip the check)
                if len(fields) >= 3 and fields[1].isdigit():
                    current = _process_start_ticks(pid)
                    if current is not None and current != int(fields[1]):
                        stale = True
        if not stale and age <= self.stale_after:
            return
        try:
            os.unlink(self.path)
        except OSError:
            pass
