"""``.eh_frame`` and ``.eh_frame_hdr`` section encoders.

The builder mirrors how GCC and Clang emit call-frame information: one CIE
(augmentation ``"zR"``, code alignment 1, data alignment -8, return-address
column 16, PC-relative sdata4 pointers) shared by many FDEs, each FDE covering
one contiguous code range, the whole section terminated by a zero length
entry.  The ``.eh_frame_hdr`` builder emits the binary-search table the
runtime unwinder (and our own :mod:`repro.unwind`) uses to look up FDEs.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.dwarf import constants as C
from repro.dwarf.cfi import CfiInstruction, def_cfa, encode_cfi_program, offset
from repro.dwarf.leb128 import encode_uleb128


def default_cie_instructions() -> list[CfiInstruction]:
    """The initial CFI program GCC emits: ``CFA = rsp + 8``, RA at ``CFA - 8``."""
    return [def_cfa(C.DWARF_REG_RSP, 8), offset(C.DWARF_REG_RA, -8)]




@dataclass
class FdeSpec:
    """Description of one FDE to be emitted.

    ``pc_begin`` is the absolute virtual address of the covered range and
    ``instructions`` the resolved CFI program (see :mod:`repro.dwarf.cfi`).
    """

    pc_begin: int
    pc_range: int
    instructions: list[CfiInstruction] = field(default_factory=list)


@dataclass
class _CieSpec:
    code_alignment: int
    data_alignment: int
    return_address_register: int
    fde_pointer_encoding: int
    initial_instructions: list[CfiInstruction]
    fdes: list[FdeSpec] = field(default_factory=list)


class EhFrameBuilder:
    """Accumulates CIEs/FDEs and renders the ``.eh_frame`` section bytes."""

    def __init__(self) -> None:
        self._cies: list[_CieSpec] = []

    def add_cie(
        self,
        *,
        code_alignment: int = 1,
        data_alignment: int = -8,
        return_address_register: int = C.DWARF_REG_RA,
        fde_pointer_encoding: int = C.DW_EH_PE_pcrel | C.DW_EH_PE_sdata4,
        initial_instructions: list[CfiInstruction] | None = None,
    ) -> int:
        """Register a CIE and return its handle (index)."""
        instructions = (
            list(initial_instructions)
            if initial_instructions is not None
            else default_cie_instructions()
        )
        self._cies.append(
            _CieSpec(
                code_alignment=code_alignment,
                data_alignment=data_alignment,
                return_address_register=return_address_register,
                fde_pointer_encoding=fde_pointer_encoding,
                initial_instructions=instructions,
            )
        )
        return len(self._cies) - 1

    def add_fde(
        self,
        cie_handle: int,
        pc_begin: int,
        pc_range: int,
        instructions: list[CfiInstruction] | None = None,
    ) -> None:
        """Register an FDE under the given CIE."""
        self._cies[cie_handle].fdes.append(
            FdeSpec(pc_begin=pc_begin, pc_range=pc_range, instructions=list(instructions or []))
        )

    @property
    def fde_count(self) -> int:
        return sum(len(cie.fdes) for cie in self._cies)

    # ------------------------------------------------------------------
    def build(self, section_address: int) -> bytes:
        """Render the section, assuming it will be loaded at ``section_address``."""
        out = bytearray()
        for cie in self._cies:
            cie_offset = len(out)
            out += self._encode_cie(cie)
            for fde in cie.fdes:
                out += self._encode_fde(cie, cie_offset, fde, section_address, len(out))
        # Terminator: a zero-length entry.
        out += struct.pack("<I", 0)
        return bytes(out)

    def build_header(self, hdr_address: int, eh_frame_address: int, eh_frame: bytes) -> bytes:
        """Render the ``.eh_frame_hdr`` section with its search table."""
        from repro.dwarf.parser import parse_eh_frame

        _, fdes = parse_eh_frame(eh_frame, eh_frame_address)
        entries = sorted((fde.pc_begin, eh_frame_address + fde.offset) for fde in fdes)

        out = bytearray()
        out.append(1)  # version
        out.append(C.DW_EH_PE_pcrel | C.DW_EH_PE_sdata4)  # eh_frame_ptr encoding
        out.append(C.DW_EH_PE_udata4)  # fde_count encoding
        out.append(C.DW_EH_PE_datarel | C.DW_EH_PE_sdata4)  # table encoding
        out += struct.pack("<i", eh_frame_address - (hdr_address + len(out)))
        out += struct.pack("<I", len(entries))
        for pc_begin, fde_address in entries:
            out += struct.pack("<i", pc_begin - hdr_address)
            out += struct.pack("<i", fde_address - hdr_address)
        return bytes(out)

    # ------------------------------------------------------------------
    def _encode_cie(self, cie: _CieSpec) -> bytes:
        body = bytearray()
        body += struct.pack("<I", 0)  # CIE id
        body.append(1)  # version
        body += b"zR\x00"  # augmentation
        body += encode_uleb128(cie.code_alignment)
        body += self._sleb(cie.data_alignment)
        body += encode_uleb128(cie.return_address_register)
        body += encode_uleb128(1)  # augmentation data length
        body.append(cie.fde_pointer_encoding)
        body += encode_cfi_program(
            cie.initial_instructions,
            code_alignment=cie.code_alignment,
            data_alignment=cie.data_alignment,
        )
        return self._finish_entry(body)

    def _encode_fde(
        self,
        cie: _CieSpec,
        cie_offset: int,
        fde: FdeSpec,
        section_address: int,
        entry_offset: int,
    ) -> bytes:
        body = bytearray()
        # CIE pointer: distance from this field back to the CIE start.
        cie_pointer_field_offset = entry_offset + 4
        body += struct.pack("<I", cie_pointer_field_offset - cie_offset)

        pc_begin_field_offset = entry_offset + 4 + len(body)
        encoding = cie.fde_pointer_encoding
        if encoding & 0x70 == C.DW_EH_PE_pcrel:
            pc_value = fde.pc_begin - (section_address + pc_begin_field_offset)
        else:
            pc_value = fde.pc_begin
        body += self._encode_with_format(pc_value, encoding)
        # The PC range is an unsigned length; encode it with the unsigned
        # counterpart of the CIE format so ranges >= 2**31 stay representable
        # (byte-identical to the signed encoding for smaller ranges).
        body += self._encode_with_format(fde.pc_range, C.unsigned_pointer_format(encoding))
        body += encode_uleb128(0)  # augmentation data length
        body += encode_cfi_program(
            fde.instructions,
            code_alignment=cie.code_alignment,
            data_alignment=cie.data_alignment,
        )
        return self._finish_entry(body)

    @staticmethod
    def _encode_with_format(value: int, encoding: int) -> bytes:
        fmt = encoding & 0x0F
        if fmt == C.DW_EH_PE_sdata4:
            return struct.pack("<i", value)
        if fmt == C.DW_EH_PE_udata4:
            return struct.pack("<I", value & 0xFFFFFFFF)
        if fmt == C.DW_EH_PE_sdata8:
            return struct.pack("<q", value)
        if fmt == C.DW_EH_PE_udata8 or fmt == C.DW_EH_PE_absptr:
            return struct.pack("<Q", value & 0xFFFFFFFFFFFFFFFF)
        raise ValueError(f"unsupported pointer encoding {encoding:#04x}")

    @staticmethod
    def _sleb(value: int) -> bytes:
        from repro.dwarf.leb128 import encode_sleb128

        return encode_sleb128(value)

    @staticmethod
    def _finish_entry(body: bytearray) -> bytes:
        """Pad the entry to 8-byte alignment and prepend the length field."""
        while (len(body) + 4) % 8:
            body.append(C.DW_CFA_nop)
        return struct.pack("<I", len(body)) + bytes(body)
