"""Result structures shared by the disassembly-based analyses."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.x86.instruction import Instruction


@dataclass
class DisassembledFunction:
    """The instructions discovered for one detected function.

    ``instructions`` maps instruction address to the decoded instruction for
    every address reached by intra-procedural control flow from ``start``.
    """

    start: int
    instructions: dict[int, Instruction] = field(default_factory=dict)
    #: addresses of direct call targets found inside this function
    call_targets: set[int] = field(default_factory=set)
    #: jump instructions (conditional or unconditional) inside this function
    jumps: list[Instruction] = field(default_factory=list)
    #: whether exploration hit a decoding error
    had_decode_error: bool = False

    @property
    def addresses(self) -> set[int]:
        return set(self.instructions)

    @property
    def end(self) -> int:
        """One past the highest byte claimed by this function's instructions."""
        if not self.instructions:
            return self.start
        return max(insn.end for insn in self.instructions.values())

    def contains(self, address: int) -> bool:
        return address in self.instructions

    def covers_address(self, address: int) -> bool:
        """Whether ``address`` falls inside any instruction of this function."""
        return self.start <= address < self.end

    @property
    def sorted_instructions(self) -> list[Instruction]:
        return [self.instructions[a] for a in sorted(self.instructions)]


@dataclass
class DisassemblyResult:
    """Aggregate result of (recursive) disassembly over a binary."""

    functions: dict[int, DisassembledFunction] = field(default_factory=dict)
    #: every decoded instruction, keyed by address (across all functions)
    instructions: dict[int, Instruction] = field(default_factory=dict)
    #: all direct call targets observed
    call_targets: set[int] = field(default_factory=set)
    #: constants (immediates / RIP-relative targets) seen in decoded code
    code_constants: set[int] = field(default_factory=set)

    @property
    def function_starts(self) -> set[int]:
        return set(self.functions)

    def is_instruction_start(self, address: int) -> bool:
        return address in self.instructions

    def is_inside_instruction(self, address: int) -> bool:
        """True when ``address`` falls strictly inside a decoded instruction."""
        if address in self.instructions:
            return False
        for delta in range(1, 15):
            insn = self.instructions.get(address - delta)
            if insn is not None and insn.end > address:
                return True
        return False

    def function_containing(self, address: int) -> DisassembledFunction | None:
        """The detected function whose instruction set includes ``address``."""
        for function in self.functions.values():
            if address in function.instructions:
                return function
        return None
