"""Multi-process store contention: concurrent writers, nothing lost.

Forks several writer processes that hammer one shared store with mixed
``put_blob`` / ``save_result`` / ``save_detection`` traffic (and a tiny
index-journal budget, so compaction races the appenders), then audits
from the parent: every record loads back intact and the manifest index
agrees with the object tree.  This is the tier-1 sibling of
``benchmarks/bench_store_contention.py`` — same traffic shape, sized to
stay fast.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from pathlib import Path

import pytest

from repro.eval.metrics import BinaryMetrics
from repro.store import ArtifactStore, blob_digest

WRITERS = 4
OPS = 18


class _StubBinary:
    """Digest-only stand-in for a SyntheticBinary (see ``binary_digest``)."""

    def __init__(self, name: str, payload: bytes):
        self.name = name
        self._store_elf_digest = blob_digest(payload)


def _payload(writer: int, op: int) -> bytes:
    return f"contention {writer}:{op} ".encode() * 16


def _metrics(writer: int, op: int) -> BinaryMetrics:
    return BinaryMetrics(
        binary_name=f"w{writer}-op{op}",
        true_count=op + 1,
        detected_count=op,
        false_positives={writer},
        false_negatives={op},
    )


def _writer_main(root: str, writer: int, done_path: str) -> None:
    store = ArtifactStore(root, journal_limit_bytes=2048)
    for op in range(OPS):
        payload = _payload(writer, op)
        kind = op % 3
        if kind == 0:
            store.put_blob(payload)
        elif kind == 1:
            stub = _StubBinary(f"w{writer}-op{op}", payload)
            store.save_result(stub, "fetch", "test-options", _metrics(writer, op))
        else:
            key = store.detection_key(blob_digest(payload), "fetch", "test-options")
            store.save_detection(
                key, {"writer": writer, "op": op, "function_starts": [op]}
            )
    Path(done_path).write_text(json.dumps({"lock_waits": len(store.lock_waits)}))


@pytest.mark.parametrize("writers", [WRITERS])
def test_forked_writers_lose_nothing(tmp_path, writers):
    root = tmp_path / "shared-store"
    context = multiprocessing.get_context("fork")
    done_paths = [str(tmp_path / f"done-{index}.json") for index in range(writers)]
    processes = [
        context.Process(target=_writer_main, args=(str(root), index, done_paths[index]))
        for index in range(writers)
    ]
    for process in processes:
        process.start()
    deadline = time.monotonic() + 60
    for process in processes:
        process.join(timeout=max(0.0, deadline - time.monotonic()))
    assert all(process.exitcode == 0 for process in processes), (
        f"writer exit codes: {[process.exitcode for process in processes]}"
    )

    store = ArtifactStore(root)
    for writer in range(writers):
        assert Path(done_paths[writer]).exists()
        for op in range(OPS):
            payload = _payload(writer, op)
            kind = op % 3
            if kind == 0:
                assert store.get_blob(blob_digest(payload)) == payload
            elif kind == 1:
                stub = _StubBinary(f"w{writer}-op{op}", payload)
                loaded = store.load_result(stub, "fetch", "test-options")
                assert loaded == _metrics(writer, op)
            else:
                key = store.detection_key(
                    blob_digest(payload), "fetch", "test-options"
                )
                loaded = store.load_detection(key)
                assert loaded is not None
                assert (loaded["writer"], loaded["op"]) == (writer, op)

    # the index survived concurrent appends and compactions intact
    indexed = set(store.index.entries())
    tree = {(namespace, key) for namespace, key, *_ in store.backend.iter_entries()}
    assert indexed == tree


def test_concurrent_corpus_builders_share_one_build(tmp_path):
    """Racing builders arbitrate on the build lock: both corpora load, and
    the store ends up with exactly one manifest."""
    from repro.synth import build_scenario_corpus

    root = tmp_path / "corpus-store"
    params = {"programs": 1, "scale": 0.1, "seed": 55}

    def build(out_path: str) -> None:
        store = ArtifactStore(root)
        corpus = build_scenario_corpus("vanilla", store=store, **params)
        Path(out_path).write_text(json.dumps([binary.name for binary in corpus]))

    context = multiprocessing.get_context("fork")
    out_paths = [str(tmp_path / f"names-{index}.json") for index in range(2)]
    processes = [
        context.Process(target=build, args=(out_path,)) for out_path in out_paths
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
    assert all(process.exitcode == 0 for process in processes)

    names = [json.loads(Path(out_path).read_text()) for out_path in out_paths]
    assert names[0] == names[1]
    assert len(ArtifactStore(root).corpus_manifests()) == 1
