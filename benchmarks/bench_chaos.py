"""Chaos benchmark — the detection service under an injected fault storm.

Runs the same corpus twice through :class:`~repro.service.DetectionService`:
once fault-free (the reference), once under a seeded
:class:`~repro.resilience.faults.FaultPlan` that raises transient detector
errors, SIGKILL-kills worker threads mid-dispatch, tears artifact-store
writes and delays lock acquisitions.  The run then proves the resilience
contract rather than sampling it:

* **zero lost entries** — every submitted (binary × detector) unit produces
  a result under chaos;
* **zero failed units** — the detector-fault budget (``max`` injections)
  is set below the retry budget, so every transient burst is survivable
  by construction;
* **byte-identical survivors** — each chaos result's ``function_starts``
  equals the fault-free run's.

``BENCH_chaos.json`` records both wall clocks, the recovery overhead ratio,
the per-site injection counts actually fired, and the service's resilience
counters (retries, worker restarts, requeues, degraded store operations).

Knobs: ``REPRO_CHAOS_SEED`` (default 2021) seeds the fault plan;
``REPRO_BENCH_CHAOS_BINARIES`` (default 6) sizes the corpus.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.resilience import faults
from repro.resilience.policy import ResilienceConfig
from repro.service import DetectionService
from repro.store import ArtifactStore
from repro.synth import build_selfbuilt_corpus

BENCH_DIRECTORY = Path(__file__).resolve().parent.parent

_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "2021"))
_BINARIES = max(2, int(os.environ.get("REPRO_BENCH_CHAOS_BINARIES", "6")))

#: retry budget given to the chaos service
_DETECT_ATTEMPTS = 4

#: The storm. The detector-raise budget (max=3) is strictly below the
#: retry budget (attempts=4), so no unit can exhaust its retries even if
#: every injection lands on the same unit's consecutive attempts — zero
#: failed units is guaranteed by construction, and asserted.  Worker kills
#: and store faults carry no budget: supervision requeues killed tasks and
#: store failures degrade to cache misses, neither can lose a unit.
_PLAN = (
    f"seed={_SEED};"
    "detect:raise:rate=0.35,max=3;"
    "worker:kill:rate=0.4;"
    "store.write:torn:rate=0.5;"
    "store.lock:delay:rate=0.3,seconds=0.002"
)


def _run_service(corpus, *, store=None, resilience=None):
    started = time.perf_counter()
    with DetectionService(workers=3, store=store, resilience=resilience) as service:
        handle = service.submit(corpus)
        results = list(handle.results(timeout=600))
        stats = service.stats()
    return results, stats, time.perf_counter() - started


def test_chaos_storm_loses_nothing(tmp_path):
    corpus = build_selfbuilt_corpus(scale=0.3, max_binaries=_BINARIES, seed=2021)

    clean_results, _, clean_seconds = _run_service(corpus)
    clean = {(r.name, r.detector): r.function_starts for r in clean_results}

    resilience = ResilienceConfig(
        detect_attempts=_DETECT_ATTEMPTS, store_attempts=3, backoff_base=0.001
    )
    store = ArtifactStore(tmp_path / "chaos-store")
    with faults.injected(_PLAN) as injector:
        chaos_results, stats, chaos_seconds = _run_service(
            corpus, store=store, resilience=resilience
        )
    injections = injector.injection_counts()

    # -- the contract ---------------------------------------------------
    observed = {(r.name, r.detector): r for r in chaos_results}
    lost = sorted(set(clean) - set(observed))
    assert not lost, f"entries lost under chaos: {lost}"
    assert len(chaos_results) == len(clean_results)

    failed = sorted(key for key, r in observed.items() if not r.ok)
    assert not failed, f"units failed despite the survivable budget: {failed}"

    mismatched = sorted(
        key
        for key, r in observed.items()
        if r.function_starts != clean[key]
    )
    assert not mismatched, f"chaos results diverge from fault-free run: {mismatched}"

    # the storm must actually have hit, or this proves nothing: transient
    # detector faults, worker kills and store faults must all have fired
    assert injections.get("detect:raise", 0) > 0, "no detector faults fired"
    assert injections.get("worker:kill", 0) > 0, "no worker kills fired"
    assert injections.get("store.write:torn", 0) > 0, "no torn writes fired"
    assert stats["resilience"]["worker_restarts"] == injections["worker:kill"]

    record = {
        "benchmark": "chaos",
        "plan": _PLAN,
        "binaries": len(corpus),
        "entries": len(clean),
        "lost_entries": len(lost),
        "failed_units": len(failed),
        "mismatched_survivors": len(mismatched),
        "seconds_clean": round(clean_seconds, 3),
        "seconds_chaos": round(chaos_seconds, 3),
        "recovery_overhead": round(chaos_seconds / max(clean_seconds, 1e-9), 3),
        "injections": injections,
        "resilience": stats["resilience"],
    }
    path = BENCH_DIRECTORY / "BENCH_chaos.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"\nchaos: {json.dumps(record, indent=2, sort_keys=True)}")
