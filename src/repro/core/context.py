"""Shared per-binary analysis state: decode-once caching across detectors.

Running the paper's evaluation means pointing many detectors — the FETCH
pipeline plus nine baseline tool models, each at several strategy-ladder
rungs — at the *same* binary.  Every one of those runs decodes largely the
same instructions, evaluates the same CFI programs and rescans the same data
sections.  :class:`AnalysisContext` is the per-:class:`BinaryImage` object
that owns all of that derived state, in the spirit of angr's knowledge base
or Ghidra's program database:

* a memoized instruction-decode cache keyed by virtual address (the decode of
  an address is a pure function of the image bytes, so the cache is safe to
  share between arbitrary consumers);
* memoized calling-convention verdicts (§IV-E entry checks);
* evaluated CFA row tables per FDE (§V-B stack heights);
* standalone noreturn facts per function start;
* the image-wide scan products the gap probers reuse: the §IV-E sliding
  window pointer super-set over data sections, the aligned pointer sweep, and
  per-pattern prologue match positions over the executable sections;
* memoized ROP-gadget counts and stack-height analyses.

Only state that is *order-independent* — a pure function of the image — is
cached here, which is what guarantees that a detector produces byte-identical
results with a shared context and with a fresh one (enforced by
``tests/test_analysis_context.py``).  Per-run state such as recursive
traversal worklists stays inside the consumers.

A context is not thread-safe; the parallel corpus evaluation in
:mod:`repro.eval.runner` keeps one context per binary and never shares one
binary between workers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.dwarf.cfa_table import CfaTable, build_cfa_table
from repro.dwarf.structs import FdeRecord
from repro.elf.image import BinaryImage
from repro.x86.disassembler import decode_block
from repro.x86.instruction import (
    _F_CALL,
    _F_COND_JUMP,
    _F_RET,
    _F_TERMINATOR,
    _F_UNCOND_JUMP,
    Instruction,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.recursive import RecursiveDisassembler

#: Span decode stops wherever the recursive traversal can break a
#: fall-through run: terminators end a span, and so do calls (a noreturn
#: callee stops the walk mid-stream).  Bounding spans this way is what makes
#: the bulk span-at-a-time traversal byte-identical to the per-instruction
#: loop: within a span, only conditional jumps need individual attention.
_SPAN_STOP = _F_TERMINATOR | _F_CALL

#: Default decode budget per span build; bounds the decode overshoot when a
#: consumer abandons a span early (the calling-convention walk additionally
#: caps builds by its remaining instruction budget).
_SPAN_COUNT = 64

#: Escape hatch: ``REPRO_SPAN_CACHE=0`` disables the decoded-span layer and
#: routes every consumer through the per-address paths (used by the parity
#: tests to prove byte-identical detector output).
_SPANS_ENABLED = os.environ.get("REPRO_SPAN_CACHE", "1") != "0"

#: Shared singletons for spans without conditional jumps / without constants
#: (a large fraction of all spans) — read-only to every consumer.
_NO_COND_JUMPS: tuple = ()
_NO_CONSTANTS: frozenset[int] = frozenset()


class DecodedSpan:
    """One decoded fall-through run: a ``decode_block`` result plus the
    per-instruction facts the analysis walks would otherwise recompute.

    A span covers consecutive instructions up to (and including) the first
    call or terminator, or up to the decode budget / first undecodable byte.
    All bulk-consumption facts are produced by the single indexing pass of
    :meth:`AnalysisContext._build_span` — ``map`` feeds ``dict.update``
    during bulk traversal, ``cond_jumps`` lists the interior conditional
    jumps (the only control flow a span can contain) as ``(position,
    instruction)``, and ``constants`` applies exactly the rule of
    :attr:`repro.analysis.result.DisassembledFunction.code_constants` to the
    span's instructions.  Only :meth:`cc_summary` stays lazy: callconv facts
    are needed for the fraction of spans that sit at checked entry points.
    """

    __slots__ = ("insns", "map", "cond_jumps", "constants", "last_addr", "failed", "cc")

    def __init__(self, insns: list[Instruction], failed: bool):
        self.insns = insns
        self.failed = failed
        self.last_addr = insns[-1].address
        self.cc: tuple[list[int], int, int, int] | None = None

    def cc_summary(self) -> tuple[list[int], int, int, int]:
        """``(masked, need_total, writes_total, kind)`` for the §IV-E walk.

        ``masked[k]`` is the k-th checked instruction's read-set minus
        everything written earlier in the span (and minus ``push``'d
        registers); an entry violates iff ``masked[k] & ~initialized``.
        ``kind`` 0: the span terminal accepts the walk (ret/call/ud2/hlt —
        its own reads are never checked), 1: ends in an unconditional jump
        (checked, then followed), 2: plain truncation (walk continues at the
        span end).
        """
        cc = self.cc
        if cc is None:
            from repro.analysis.callconv import _STOP_MNEMONICS, adjusted_entry_masks

            insns = self.insns
            last = insns[-1]
            lflags = last._flags
            if lflags & (_F_RET | _F_CALL) or (
                lflags & _F_TERMINATOR
                and not lflags & _F_UNCOND_JUMP
                and last.mnemonic in _STOP_MNEMONICS
            ):
                kind = 0
                checked = insns[:-1]
            elif lflags & _F_UNCOND_JUMP:
                kind = 1
                checked = insns
            else:
                kind = 2
                checked = insns
            masked: list[int] = []
            append = masked.append
            written = 0
            need_total = 0
            for insn in checked:
                masks = adjusted_entry_masks(insn)
                need = (masks >> 16) & ~written
                append(need)
                need_total |= need
                written |= masks & 0xFFFF
            cc = self.cc = (masked, need_total, written, kind)
        return cc


class DecodeCache(dict):
    """``address -> Instruction | None`` map with hit/miss counters.

    ``None`` records a remembered decode failure.  All dict operations stay
    at C speed — the counters are maintained explicitly by
    :meth:`AnalysisContext.decode`, the bookkeeping access path; bulk
    consumers (recursive traversal, linear sweeps) share the dict directly
    and show up in :attr:`AnalysisContext.stats` via the cache size instead.
    """

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        super().__init__()
        self.hits = 0
        self.misses = 0


@dataclass
class ContextStats:
    """Aggregate cache statistics, for benchmark records and tests."""

    decode_hits: int = 0
    decode_misses: int = 0
    cached_instructions: int = 0
    cached_functions: int = 0
    cached_cfa_tables: int = 0
    cached_callconv_checks: int = 0
    cached_noreturn_facts: int = 0
    cached_spans: int = 0

    @property
    def decode_hit_ratio(self) -> float:
        total = self.decode_hits + self.decode_misses
        return self.decode_hits / total if total else 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "decode_hits": self.decode_hits,
            "decode_misses": self.decode_misses,
            "decode_hit_ratio": round(self.decode_hit_ratio, 4),
            "cached_instructions": self.cached_instructions,
            "cached_functions": self.cached_functions,
            "cached_cfa_tables": self.cached_cfa_tables,
            "cached_callconv_checks": self.cached_callconv_checks,
            "cached_noreturn_facts": self.cached_noreturn_facts,
            "cached_spans": self.cached_spans,
        }


class AnalysisContext:
    """Memoized analysis state for one :class:`BinaryImage`."""

    def __init__(self, image: BinaryImage):
        self.image = image
        #: the shared decode memo; safe to hand to ``decode_instruction(cache=...)``
        self.decode_cache = DecodeCache()
        #: canonical fully-explored functions, keyed by start address.  Only
        #: assumption-free (order-independent) explorations are stored here —
        #: see :class:`repro.analysis.recursive.RecursiveDisassembler`.
        self.function_cache: dict[int, object] = {}
        #: noreturn facts for every entry of :attr:`function_cache`
        self.noreturn_facts: dict[int, bool] = {}
        self._callconv: dict[tuple[int, int], bool] = {}
        self._cfa_tables: dict[tuple[int, int], CfaTable] = {}
        self._noreturn: dict[int, bool] = {}
        self._data_pointers: set[int] | None = None
        self._aligned_pointers: set[int] | None = None
        self._text_matches: dict[tuple[bytes, ...], dict[bytes, list[int]]] = {}
        self._gadget_counts: dict[tuple[int, int], int] = {}
        self._stack_heights: dict[tuple[str, int, frozenset[int]], dict[int, int | None]] = {}
        self._last_exec_section = None
        self._last_exec_lo = 0
        self._last_exec_hi = 0
        #: decoded-span index, keyed by span *start* address only.  ``None``
        #: when ``REPRO_SPAN_CACHE=0`` disables the span layer.  Interior
        #: span addresses need no index entries: every instruction of a
        #: built span sits in :attr:`decode_cache`, so "decoded but not a
        #: span start" is detected by a cache probe and handled by the
        #: per-instruction paths — indexing all ~10 interior addresses of
        #: every span cost more than it ever saved.
        self._span_index: dict[int, DecodedSpan] | None = (
            {} if _SPANS_ENABLED else None
        )
        self._span_builds = 0

    # ------------------------------------------------------------------
    # Instruction decoding
    # ------------------------------------------------------------------
    def decode(self, address: int) -> Instruction | None:
        """Decode the instruction at ``address``, memoized.

        Returns ``None`` both for undecodable bytes and for addresses outside
        executable sections — the distinction never matters to consumers, all
        of which treat either case as "not code".
        """
        cache = self.decode_cache
        try:
            hit = cache[address]
        except KeyError:
            pass
        else:
            cache.hits += 1
            return hit
        cache.misses += 1
        if self._span_index is not None:
            span = self._build_span(address)
            if span is None:
                # A decode failure was stored as ``None`` by decode_block;
                # non-executable addresses were recorded by _build_span.
                return cache.get(address)
            return span.insns[0]
        # Code queries cluster heavily within one section, so remember the
        # last executable section before falling back to the binary search.
        section = self._last_exec_section
        if section is None or not (self._last_exec_lo <= address < self._last_exec_hi):
            section = self.image.section_containing(address)
            if section is None or not section.is_executable:
                cache[address] = None
                return None
            self._last_exec_section = section
            self._last_exec_lo = section.address
            self._last_exec_hi = section.end_address
        # Fill the cache a block at a time: straight-line successors of this
        # address are almost always queried next.  A decode failure at
        # ``address`` is stored as ``None`` by decode_block itself.
        decode_block(
            section.data,
            address - section.address,
            address,
            16,
            cache=cache,
            stop_at_terminator=True,
        )
        return cache[address]

    def _build_span(self, address: int, count: int = _SPAN_COUNT) -> DecodedSpan | None:
        """Decode a new span starting at ``address`` and index it.

        Returns ``None`` when ``address`` is outside executable code (a
        ``None`` decode verdict is then cached) or undecodable at the first
        instruction (decode_block already cached the failure).
        """
        cache = self.decode_cache
        section = self._last_exec_section
        if section is None or not (self._last_exec_lo <= address < self._last_exec_hi):
            section = self.image.section_containing(address)
            if section is None or not section.is_executable:
                cache.setdefault(address, None)
                return None
            self._last_exec_section = section
            self._last_exec_lo = section.address
            self._last_exec_hi = section.end_address
        insns, failed = decode_block(
            section.data,
            address - section.address,
            address,
            count,
            cache=cache,
            stop_flags=_SPAN_STOP,
        )
        if not insns:
            return None
        span = DecodedSpan(insns, failed)
        # One pass over the fresh instructions produces every
        # bulk-consumption fact at once; a second walk per fact was a
        # measurable share of span-build time.  The per-instruction constant
        # contribution comes precomputed off ``Instruction._consts``, and the
        # shared empty singletons avoid allocating a list and a set for the
        # many spans that carry neither conditional jumps nor constants.
        span.map = span_map = {}
        span.cond_jumps = cond_jumps = _NO_COND_JUMPS
        span.constants = constants = _NO_CONSTANTS
        for i, insn in enumerate(insns):
            span_map[insn.address] = insn
            if insn._flags & _F_COND_JUMP:
                if cond_jumps is _NO_COND_JUMPS:
                    span.cond_jumps = cond_jumps = []
                cond_jumps.append((i, insn))
            c = insn._consts
            if c is not None:
                if constants is _NO_CONSTANTS:
                    span.constants = constants = set()
                if c.__class__ is int:
                    constants.add(c)
                else:
                    constants.update(c)
        self._span_index[address] = span
        self._span_builds += 1
        return span

    def span_at(self, address: int, count: int = _SPAN_COUNT) -> DecodedSpan | None:
        """The span starting exactly at ``address``, building one on a miss.

        Returns ``None`` when ``address`` is already decoded but is not a
        span start (an interior span address — consumers walk those through
        :attr:`decode_cache` per instruction), when it lies outside
        executable code, or when its bytes do not decode.

        Requires the span layer to be enabled (``_span_index is not None``).
        """
        cache = self.decode_cache
        span = self._span_index.get(address)
        if span is not None:
            cache.hits += 1
            return span
        if address in cache:
            cache.hits += 1
            return None
        cache.misses += 1
        return self._build_span(address, count)

    # ------------------------------------------------------------------
    # Pure per-address facts
    # ------------------------------------------------------------------
    def calling_convention_ok(
        self, address: int, *, max_instructions: int | None = None
    ) -> bool:
        """Memoized §IV-E calling-convention check at ``address``."""
        from repro.analysis.callconv import _DEFAULT_LIMIT, check_entry_convention

        if max_instructions is None:
            max_instructions = _DEFAULT_LIMIT
        key = (address, max_instructions)
        verdict = self._callconv.get(key)
        if verdict is None:
            if self._span_index is not None:
                verdict = self._convention_via_spans(address, max_instructions)
            else:
                verdict = check_entry_convention(
                    self.image,
                    address,
                    max_instructions=max_instructions,
                    decode=self.decode,
                    cache=self.decode_cache,
                )
            self._callconv[key] = verdict
        return verdict

    def _convention_via_spans(self, address: int, max_instructions: int) -> bool:
        """Span-summary §IV-E walk, equivalent to ``check_entry_convention``.

        Spans whose entry is span-aligned are judged from their memoized
        ``cc_summary`` — O(1) when no prefix-masked read can violate.  A jump
        into the middle of a span falls back to the per-instruction reference
        walk with the accumulated ``initialized``/budget/``jump_targets``
        state, so the verdict is identical by construction.
        """
        from repro.analysis.callconv import _ENTRY_INITIALIZED_MASK, _convention_walk

        initialized = _ENTRY_INITIALIZED_MASK
        budget = max_instructions
        jump_targets: set[int] | None = None
        span_at = self.span_at
        current = address
        while True:
            if budget <= 0:
                return True
            # Span builds are capped by the remaining budget so
            # callconv-initiated decodes never overshoot the instructions the
            # reference walk would have decoded.
            span = span_at(current, budget)
            if span is None:
                # Interior span address, non-code, or undecodable: finish
                # with the per-instruction reference walk, which handles all
                # three identically to the pre-span pipeline.
                return _convention_walk(
                    self.decode,
                    self.decode_cache.get,
                    current,
                    initialized,
                    budget,
                    jump_targets if jump_targets is not None else set(),
                )
            masked, need_total, writes_total, kind = span.cc_summary()
            checked = len(masked)
            if need_total & ~initialized:
                limit = budget if budget < checked else checked
                for k in range(limit):
                    if masked[k] & ~initialized:
                        return False
            if budget <= checked:
                return True
            initialized |= writes_total
            budget -= checked
            if kind == 0:
                return True
            last = span.insns[-1]
            if kind == 1:
                target = last.branch_target
                if target is None:
                    return True
                if jump_targets is None:
                    jump_targets = set()
                if target in jump_targets:
                    return True
                jump_targets.add(target)
                current = target
                continue
            current = last.end

    def filter_invalid_entries(self, seeds: Iterable[int]) -> set[int]:
        """Seed addresses that *fail* the §IV-E calling-convention check.

        The pipeline's stage-1 filter; verdicts share the per-address memo
        with every other consumer.
        """
        convention_ok = self.calling_convention_ok
        return {address for address in seeds if not convention_ok(address)}

    def cfa_table(self, fde: FdeRecord) -> CfaTable:
        """The evaluated CFI row table of ``fde``, memoized per PC range."""
        key = (fde.pc_begin, fde.pc_end)
        table = self._cfa_tables.get(key)
        if table is None:
            table = build_cfa_table(fde)
            self._cfa_tables[key] = table
        return table

    def is_noreturn(self, start: int) -> bool:
        """Standalone noreturn fact for the function starting at ``start``.

        Each query runs on a fresh disassembler (decoding and canonical
        functions still come from this context), so the answer never depends
        on what was queried before.  Only assumption-free facts — functions
        off call cycles — are memoized; a cycle member's verdict depends on
        where its exploration entered the cycle, so it is recomputed from
        the same fresh state every time instead of being frozen.
        """
        fact = self.noreturn_facts.get(start)
        if fact is not None:
            return fact
        fact = self._noreturn.get(start)
        if fact is not None:
            return fact
        from repro.analysis.recursive import RecursiveDisassembler

        disassembler = RecursiveDisassembler(self.image, context=self)
        fact = disassembler.is_noreturn(start)
        if start not in disassembler._tainted:
            self._noreturn[start] = fact
        return fact

    def gadget_count(self, address: int, *, window: int | None = None) -> int:
        """Memoized ROP-gadget count at ``address`` (§V-A measurement)."""
        from repro.analysis.gadgets import _MAX_WINDOW, count_rop_gadgets

        if window is None:
            window = _MAX_WINDOW
        key = (address, window)
        count = self._gadget_counts.get(key)
        if count is None:
            count = count_rop_gadgets(
                self.image, address, window=window, cache=self.decode_cache
            )
            self._gadget_counts[key] = count
        return count

    def stack_heights(self, flavor: str, function) -> dict[int, int | None]:
        """Memoized stack-height analysis of a disassembled function.

        The key includes the exact instruction address set: instructions at
        given addresses are a pure function of the image bytes, so two
        functions with the same start and address set analyse identically.
        """
        from repro.analysis.stackheight import StackHeightAnalysis

        key = (flavor, function.start, frozenset(function.instructions))
        heights = self._stack_heights.get(key)
        if heights is None:
            heights = StackHeightAnalysis(flavor).analyze(function)
            self._stack_heights[key] = heights
        return heights

    # ------------------------------------------------------------------
    # Image-wide scan products
    # ------------------------------------------------------------------
    def data_pointer_candidates(self) -> set[int]:
        """The §IV-E sliding-window pointer super-set over data sections.

        Every consecutive 8 bytes of every data section, kept when the value
        lands in executable code.  This is the image-only part of
        :func:`repro.analysis.xrefs.collect_potential_pointers`.
        """
        if self._data_pointers is None:
            self._data_pointers = scan_data_pointers(self.image)
        return self._data_pointers

    def aligned_data_pointers(self) -> set[int]:
        """Executable targets of 8-byte-aligned data-section slots.

        The conservative pointer sweep the IDA- and Binary-Ninja-style
        baselines run, before their per-run filtering.
        """
        if self._aligned_pointers is None:
            self._aligned_pointers = scan_aligned_pointers(self.image)
        return self._aligned_pointers

    def text_pattern_matches(
        self, patterns: Iterable[bytes]
    ) -> dict[bytes, list[int]]:
        """All occurrences of byte ``patterns`` in the executable sections.

        Returns ``{pattern: sorted addresses}`` where each occurrence lies
        fully inside one section.  Shared by whole-text signature scanners
        (BAP/ByteWeight models) and, filtered down to gaps, by
        :func:`repro.analysis.prologue.match_prologues`.
        """
        key = tuple(patterns)
        matches = self._text_matches.get(key)
        if matches is None:
            matches = {pattern: [] for pattern in key}
            for section in self.image.executable_sections:
                data = section.data
                for pattern in key:
                    offset = data.find(pattern)
                    while offset != -1:
                        matches[pattern].append(section.address + offset)
                        offset = data.find(pattern, offset + 1)
            for positions in matches.values():
                positions.sort()
            self._text_matches[key] = matches
        return matches

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> ContextStats:
        return ContextStats(
            decode_hits=self.decode_cache.hits,
            decode_misses=self.decode_cache.misses,
            cached_instructions=len(self.decode_cache),
            cached_functions=len(self.function_cache),
            cached_cfa_tables=len(self._cfa_tables),
            cached_callconv_checks=len(self._callconv),
            cached_noreturn_facts=len(self.noreturn_facts) + len(self._noreturn),
            cached_spans=self._span_builds,
        )


def scan_pointer_windows(
    data: bytes, begin: int, end: int, image: BinaryImage, candidates: set[int]
) -> None:
    """Add every 8-byte-window value of ``data[begin:end+7]`` that is an
    executable address to ``candidates``.

    Window start offsets run over ``[begin, end)``; semantically this is the
    plain per-offset ``int.from_bytes`` + bounds-check loop.  When the
    executable ranges collapse to one span (the overwhelmingly common
    single-``.text`` case), every address in ``[lo, hi)`` shares the same
    high bytes — the bytes above the span's varying part — so a qualifying
    window must contain that exact byte suffix.  The scan then jumps between
    suffix occurrences with ``bytes.find`` at C speed and only decodes the
    handful of offsets that can possibly land in code; because the suffix is
    anchored on a non-zero byte for any realistic load address, zero-filled
    padding is skipped outright rather than matched.
    """
    add = candidates.add
    bounds = image._executable_bounds
    if len(bounds) == 1:
        lo, hi = bounds[0]
        if hi <= lo:
            return
        # Number of low bytes in which [lo, hi) addresses can differ; all
        # higher bytes are fixed and become the search pattern.
        nvar = ((lo ^ (hi - 1)).bit_length() + 7) // 8
        if nvar <= 5:
            pattern = (lo >> (8 * nvar)).to_bytes(8 - nvar, "little")
            find = data.find
            last = end - 1 + nvar
            p = find(pattern, begin + nvar)
            while -1 < p <= last:
                offset = p - nvar
                value = int.from_bytes(data[offset : offset + 8], "little")
                if lo <= value < hi:
                    add(value)
                p = find(pattern, p + 1)
            return
    is_executable = image.is_executable_address
    for offset in range(begin, end):
        value = int.from_bytes(data[offset : offset + 8], "little")
        if is_executable(value):
            add(value)


def scan_data_pointers(image: BinaryImage) -> set[int]:
    """Sliding-window scan: every 8-byte window of every data section whose
    value lands in executable code (§IV-E's deliberately exhaustive
    super-set)."""
    candidates: set[int] = set()
    for section in image.data_sections:
        data = section.data
        scan_pointer_windows(data, 0, max(len(data) - 7, 0), image, candidates)
    return candidates


def scan_aligned_pointers(image: BinaryImage) -> set[int]:
    """Executable targets of 8-byte-aligned data-section slots."""
    pointers: set[int] = set()
    for section in image.data_sections:
        data = section.data
        for offset in range(0, len(data) - 7, 8):
            value = int.from_bytes(data[offset : offset + 8], "little")
            if image.is_executable_address(value):
                pointers.add(value)
    return pointers


def context_for(image: BinaryImage, context: AnalysisContext | None) -> AnalysisContext:
    """Return ``context`` when given, else a fresh context for ``image``.

    The helper every ``detect(image, context=None)`` entry point uses, with a
    guard against accidentally mixing state across binaries.
    """
    if context is None:
        return AnalysisContext(image)
    if context.image is not image:
        raise ValueError(
            f"context was built for {context.image.name!r}, not {image.name!r}"
        )
    return context
