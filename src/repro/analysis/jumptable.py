"""Conservative jump-table resolution.

Safe recursive disassembly (§IV-C of the paper) only follows indirect jumps
when they match a well-understood jump-table idiom; everything else is
skipped.  The pattern recognised here is the one the synthetic compiler (and
GCC/Clang for non-PIE switches) emits::

    cmp   idx, N-1
    ja    default
    lea   base, [rip + table]
    jmp   [base + idx*8]

The resolver walks backwards over the instructions of the current path to
recover the table base and the bound, reads the table from the read-only data
section, and accepts an entry only if it points into executable code.
"""

from __future__ import annotations

from repro.elf.image import BinaryImage
from repro.x86.instruction import Instruction
from repro.x86.operands import Imm, Mem
from repro.x86.registers import Register

_MAX_TABLE_ENTRIES = 512
_LOOKBACK = 24


def resolve_jump_table(
    image: BinaryImage, path: list[Instruction], jump: Instruction
) -> list[int] | None:
    """Resolve an indirect jump into its concrete targets.

    Args:
        image: the binary being analysed.
        path: instructions decoded on the current path, in order, ending just
            before ``jump``.
        jump: the indirect ``jmp`` instruction.

    Returns:
        The list of targets, or ``None`` when the jump does not match the
        supported jump-table idiom.
    """
    memory = jump.memory_operand
    if memory is None or jump.mnemonic != "jmp":
        return None
    if memory.scale != 8 or memory.index is None:
        return None

    recent = path[-_LOOKBACK:]
    table_address = _find_table_base(recent, memory)
    if table_address is None:
        return None
    bound = _find_bound(recent, memory.index)
    if bound is None:
        return None
    entry_count = bound + 1
    if entry_count <= 0 or entry_count > _MAX_TABLE_ENTRIES:
        return None

    targets: list[int] = []
    for index in range(entry_count):
        try:
            raw = image.read(table_address + memory.disp + index * 8, 8)
        except ValueError:
            return None
        target = int.from_bytes(raw, "little")
        if not image.is_executable_address(target):
            return None
        targets.append(target)
    return targets


def _find_table_base(recent: list[Instruction], memory: Mem) -> int | None:
    """Find the table base loaded into the jump's base register."""
    base = memory.base
    if base is None:
        # jmp [disp32 + idx*8] — the displacement itself is the table address.
        return 0 if memory.disp else None
    for insn in reversed(recent):
        if insn.mnemonic == "lea" and insn.operands and insn.operands[0] == base:
            target = insn.rip_target
            if target is not None:
                return target
            return None
        if insn.mnemonic == "mov" and insn.operands and insn.operands[0] == base:
            src = insn.operands[1]
            if isinstance(src, Imm):
                return src.value
            return None
        # Any other write to the base register makes the table unknown.
        if insn.operands and insn.operands[0] == base and insn.mnemonic not in ("cmp", "test"):
            return None
    return None


def _find_bound(recent: list[Instruction], index_register: Register) -> int | None:
    """Find the bound established by ``cmp index, N`` + ``ja/jae``."""
    saw_above_branch = False
    for insn in reversed(recent):
        if insn.mnemonic in ("ja", "jae"):
            saw_above_branch = True
            continue
        if insn.mnemonic == "cmp" and insn.operands:
            target, value = insn.operands[0], insn.operands[1]
            if target == index_register and isinstance(value, Imm) and saw_above_branch:
                bound = value.value
                return bound if insn.mnemonic else bound
        # A write to the index register between the cmp and the jump breaks
        # the correspondence between the bound and the index.
        if insn.operands and insn.operands[0] == index_register and insn.mnemonic in (
            "mov", "lea", "add", "sub", "imul", "xor", "movsxd", "movzx",
        ):
            return None
    return None
