"""Ground-truth records produced alongside every synthetic binary.

The paper obtains ground truth by intercepting the compiler; our synthetic
compiler simply records what it generated.  The ground truth distinguishes
*true function starts* (one per source-level function) from FDE/symbol starts
of non-contiguous cold parts, which are exactly the false positives §V of the
paper studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FunctionInfo:
    """Everything known about one generated function."""

    name: str
    address: int
    size: int
    kind: str = "normal"
    #: "call" | "indirect" | "tailcall" | "entry" | "unreachable"
    reachable_via: str = "call"
    has_fde: bool = True
    has_symbol: bool = True
    frame: str = "rsp"
    is_noreturn: bool = False
    #: addresses of this function's non-contiguous cold parts
    cold_part_addresses: list[int] = field(default_factory=list)
    #: whether the function's entry violates the conservative calling
    #: convention check (deliberately, to model hand-written assembly)
    violates_callconv: bool = False
    #: when non-zero, the hand-written FDE's PC begin is shifted by this many
    #: bytes from the true start (the paper's Figure 6b case)
    bad_fde_offset: int = 0
    #: bytes of patchable-function-entry NOP padding at the entry point
    entry_padding: int = 0
    #: symbol names folded onto this body by identical-code folding
    folded_aliases: list[str] = field(default_factory=list)


@dataclass
class GroundTruth:
    """Ground truth for one synthetic binary."""

    #: program name, e.g. "coreutils-like-3:gcc:O2"
    name: str
    functions: list[FunctionInfo] = field(default_factory=list)
    #: the binary scenario the program was built for ("vanilla", "pie", ...)
    scenario: str = "vanilla"

    # ------------------------------------------------------------------
    @property
    def function_starts(self) -> set[int]:
        """True function start addresses (one per source-level function)."""
        return {f.address for f in self.functions}

    @property
    def cold_part_starts(self) -> set[int]:
        """Start addresses of non-contiguous cold parts (NOT function starts)."""
        return {addr for f in self.functions for addr in f.cold_part_addresses}

    @property
    def function_count(self) -> int:
        return len(self.functions)

    def by_address(self, address: int) -> FunctionInfo | None:
        for info in self.functions:
            if info.address == address:
                return info
        return None

    def by_name(self, name: str) -> FunctionInfo | None:
        for info in self.functions:
            if info.name == name:
                return info
        return None

    # ------------------------------------------------------------------
    def functions_of_kind(self, kind: str) -> list[FunctionInfo]:
        return [f for f in self.functions if f.kind == kind]

    def functions_reachable_via(self, how: str) -> list[FunctionInfo]:
        return [f for f in self.functions if f.reachable_via == how]

    @property
    def functions_without_fde(self) -> list[FunctionInfo]:
        return [f for f in self.functions if not f.has_fde]
