"""Shared machinery for the baseline tool models."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.analysis.gaps import compute_gaps
from repro.analysis.prologue import match_prologues
from repro.analysis.recursive import RecursiveDisassembler
from repro.analysis.result import DisassemblyResult
from repro.core.results import DetectionResult
from repro.elf.image import BinaryImage


class BaselineTool(ABC):
    """A function-start detector modelled after an existing tool."""

    #: short name used in tables (overridden by subclasses)
    name: str = "baseline"

    @abstractmethod
    def detect(self, image: BinaryImage) -> DetectionResult:
        """Detect function starts in ``image``."""

    # ------------------------------------------------------------------
    # Shared building blocks
    # ------------------------------------------------------------------
    def _recursive(
        self, image: BinaryImage, seeds: set[int]
    ) -> tuple[RecursiveDisassembler, DisassemblyResult, set[int]]:
        """Run recursive disassembly and return the grown start set."""
        disassembler = RecursiveDisassembler(image)
        seeds = {s for s in seeds if image.is_executable_address(s)}
        result = disassembler.disassemble(seeds)
        starts = set(seeds)
        starts |= {
            t for t in result.call_targets if image.is_executable_address(t)
        }
        return disassembler, result, starts

    def _grow_from_matches(
        self,
        image: BinaryImage,
        disassembler: RecursiveDisassembler,
        result: DisassemblyResult,
        matches: set[int],
    ) -> set[int]:
        """Recursively disassemble from heuristic matches, merging state."""
        new_starts = {m for m in matches if image.is_executable_address(m)}
        if not new_starts:
            return set()
        extension = disassembler.disassemble(new_starts)
        result.functions.update(extension.functions)
        result.instructions.update(extension.instructions)
        result.call_targets.update(extension.call_targets)
        grown = set(new_starts)
        grown |= {
            t for t in extension.call_targets if image.is_executable_address(t)
        }
        return grown

    @staticmethod
    def _gaps(image: BinaryImage, result: DisassemblyResult) -> list[tuple[int, int]]:
        return compute_gaps(image, result)

    @staticmethod
    def _prologue_matches(
        image: BinaryImage, gaps: list[tuple[int, int]]
    ) -> set[int]:
        return match_prologues(image, gaps)

    @staticmethod
    def _reference_targets(result: DisassemblyResult) -> set[int]:
        """Addresses referenced by any decoded call or jump."""
        targets: set[int] = set()
        for insn in result.instructions.values():
            target = insn.branch_target
            if target is not None:
                targets.add(target)
        return targets

    @staticmethod
    def _symbol_starts(image: BinaryImage) -> set[int]:
        return {s.address for s in image.function_symbols}

    @staticmethod
    def _fde_starts(image: BinaryImage) -> set[int]:
        return {fde.pc_begin for fde in image.fdes}
