"""Calling-convention validation.

The rule from §IV-E of the paper: at a legitimate function entry, every
register other than the System-V integer-argument registers (``rdi``,
``rsi``, ``rdx``, ``rcx``, ``r8``, ``r9``) must be initialised before it is
used.  Saving a callee-saved register with ``push`` does not count as a use,
and a ``call`` re-defines the caller-saved registers.  The check walks a
bounded number of instructions of straight-line + direct-jump flow from the
candidate entry and reports a violation as soon as an uninitialised register
is read; undecodable bytes are also violations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.elf.image import BinaryImage
from repro.x86.disassembler import DecodeError, decode_instruction
from repro.x86.instruction import Instruction
from repro.x86.registers import (
    ARGUMENT_REGISTERS,
    CALLER_SAVED_REGISTERS,
    RAX,
    RBP,
    RSP,
)
from repro.x86.semantics import registers_read, registers_written

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.context import AnalysisContext

_DEFAULT_LIMIT = 48


def satisfies_calling_convention(
    image: BinaryImage,
    address: int,
    *,
    max_instructions: int = _DEFAULT_LIMIT,
    context: "AnalysisContext | None" = None,
) -> bool:
    """Whether code starting at ``address`` looks like a function entry.

    With a ``context`` the verdict is memoized per address (the check is a
    pure function of the image bytes) and decoding goes through the shared
    decode cache.
    """
    if context is not None:
        return context.calling_convention_ok(address, max_instructions=max_instructions)
    return check_entry_convention(image, address, max_instructions=max_instructions)


def check_entry_convention(
    image: BinaryImage,
    address: int,
    *,
    max_instructions: int = _DEFAULT_LIMIT,
    decode: Callable[[int], Instruction | None] | None = None,
) -> bool:
    """The uncached convention walk; ``decode`` overrides instruction access."""
    initialized = set(ARGUMENT_REGISTERS) | {RSP, RBP}
    visited: set[int] = set()
    current = address

    for _ in range(max_instructions):
        if current in visited:
            return True
        visited.add(current)

        if decode is not None:
            insn = decode(current)
            if insn is None:
                return False
        else:
            section = image.section_containing(current)
            if section is None or not section.is_executable:
                return False
            try:
                insn = decode_instruction(section.data, current - section.address, current)
            except DecodeError:
                return False

        if insn.is_ret or insn.mnemonic in ("ud2", "hlt"):
            return True
        if insn.is_call:
            # Reaching a call without a violation is good enough; the callee
            # re-establishes its own conventions.
            return True

        reads = registers_read(insn)
        if insn.mnemonic == "push":
            # Saving a register is not a use of its value in the ABI sense.
            reads = reads - set(insn.operands) if insn.operands else reads
        if any(reg not in initialized for reg in reads if reg not in (RSP, RBP)):
            return False
        initialized |= registers_written(insn)
        if insn.is_call:
            initialized |= set(CALLER_SAVED_REGISTERS) | {RAX}

        if insn.is_unconditional_jump:
            target = insn.branch_target
            if target is None:
                return True
            current = target
            continue
        if insn.is_conditional_jump:
            # Follow the fall-through edge; one clean path is sufficient for
            # this conservative check.
            current = insn.end
            continue
        current = insn.end
    return True
