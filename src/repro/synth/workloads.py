"""Program planning: from a build profile to a :class:`ProgramPlan`.

The planner decides, deterministically from a seed, how many functions a
program has, how they call each other, and which functions exhibit the
constructs the paper's experiments revolve around (cold splits, tail calls,
jump tables, assembly functions without FDEs, indirect-only targets,
noreturn functions, hand-written CFI errors, data-in-text).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.synth.plan import FunctionPlan, ProgramPlan
from repro.synth.profiles import BuildProfile, CompilerFamily, profile_for_scenario

#: Binary scenarios the planner knows how to produce.  "vanilla" is the
#: classic static executable every pre-existing corpus uses; the rest widen
#: coverage to the messy real-world cases the paper's claim must survive.
SCENARIO_NAMES: tuple[str, ...] = (
    "vanilla",        # plain ET_EXEC executable, symbols + .eh_frame
    "pie",            # ET_DYN shared-object-style executable with PLT stubs
    "cet",            # -fcf-protection: endbr64 landing pad on every entry
    "icf",            # identical-code folding: aliased symbols on one body
    "padded",         # -fpatchable-function-entry style NOP-padded entries
    "stripped-noeh",  # no symbols and no .eh_frame at all
)

#: External names given PLT stubs in the "pie" scenario.
_PLT_EXTERNALS = ("memcpy", "memset", "strlen", "malloc", "free", "printf")


@dataclass(frozen=True)
class WorkloadTraits:
    """Per-project traits that modulate the build profile.

    Real projects differ much more than optimisation levels do: only a few
    projects carry hand-written assembly (OpenSSL, glibc, Nginx) and cold
    splitting concentrates in large C++ code bases.  These traits let the
    corpus builder reproduce that concentration, which is what gives the
    "binaries with full coverage / full accuracy" counts their shape.
    """

    #: multiplier on the profile's cold-split rate (0 disables splitting)
    cold_split_multiplier: float = 1.0
    #: whether the project contains hand-written assembly functions
    has_assembly: bool = False
    #: whether the project uses function pointers / callbacks heavily
    uses_function_pointers: bool = True
    #: whether the project is C++ (affects exception-style cold paths)
    is_cpp: bool = False
    #: average number of source functions per program
    mean_functions: int = 120


def plan_program(
    name: str,
    profile: BuildProfile,
    *,
    seed: int | str,
    traits: WorkloadTraits | None = None,
    function_count: int | None = None,
    stripped: bool = False,
    emit_eh_frame: bool = True,
    scenario: str = "vanilla",
) -> ProgramPlan:
    """Plan a synthetic program.

    Args:
        name: program name (used in symbol names and the ground truth).
        profile: compiler/optimisation profile.
        seed: RNG seed; the same seed always yields the same plan.
        traits: per-project traits; defaults to a plain C project.
        function_count: override the number of ordinary functions.
        stripped: drop the symbol table from the output.
        emit_eh_frame: emit the ``.eh_frame`` section (always true for
            System-V x64 compilers; disabled only for synthetic negatives).
        scenario: binary scenario to model (one of :data:`SCENARIO_NAMES`);
            ``"vanilla"`` reproduces the historical planner output exactly.
    """
    if scenario not in SCENARIO_NAMES:
        raise ValueError(f"unknown scenario {scenario!r}; expected one of {SCENARIO_NAMES}")
    profile = profile_for_scenario(profile, scenario)
    if scenario == "stripped-noeh":
        stripped = True
        emit_eh_frame = False

    traits = traits or WorkloadTraits()
    rng = random.Random(f"plan:{name}:{seed}")
    count = function_count or max(12, int(rng.gauss(traits.mean_functions, traits.mean_functions * 0.25)))

    plan = ProgramPlan(
        name=name,
        profile=profile,
        stripped=stripped,
        emit_eh_frame=emit_eh_frame,
        scenario=scenario,
    )

    runtime = _plan_runtime(profile, traits)
    ordinary = _plan_ordinary_functions(profile, traits, rng, count)
    specials = _plan_special_functions(profile, traits, rng, count)

    plan.functions = runtime + ordinary + specials
    _wire_call_graph(plan, profile, traits, rng, runtime, ordinary, specials)
    _interleave_noreturn_neighbours(plan, rng)
    _plan_data_in_text(plan, profile, traits, rng, count)
    _apply_scenario(plan, rng, ordinary)
    return plan


# ----------------------------------------------------------------------
# Scenario shaping
# ----------------------------------------------------------------------

def _apply_scenario(plan: ProgramPlan, rng: random.Random, ordinary: list[FunctionPlan]) -> None:
    """Apply the scenario-specific program shape after normal planning.

    Runs *after* the call-graph wiring so the vanilla plan for a given seed
    is bit-identical whether or not scenarios exist; every scenario only adds
    structure on top.
    """
    scenario = plan.scenario
    if scenario == "pie":
        # A position-independent executable: low load bias, ET_DYN, and
        # lazy-binding PLT stubs for a handful of external functions.
        plan.pie = True
        plan.text_address = 0x1000
        stub_count = rng.randrange(3, len(_PLT_EXTERNALS) + 1)
        plan.plt_stubs = list(_PLT_EXTERNALS[:stub_count])
        for stub in plan.plt_stubs:
            for caller in rng.sample(ordinary, min(len(ordinary), rng.randrange(1, 4))):
                caller.callees.append(f"{stub}@plt")
    elif scenario == "icf":
        # Identical-code folding: several source functions share one body;
        # the folded names survive as extra symbols and as call targets.
        fold_count = max(2, len(ordinary) // 10)
        for index in range(fold_count):
            canonical = rng.choice(ordinary)
            alias = f"{canonical.name}__icf{index}"
            canonical.icf_aliases.append(alias)
            rng.choice(ordinary).callees.append(alias)
    elif scenario == "padded":
        # -fpatchable-function-entry=N: NOP runs at the entry point push the
        # recognisable prologue N bytes past the true function start.
        for function in ordinary:
            if rng.random() < 0.6:
                function.entry_padding = rng.choice((8, 16))


# ----------------------------------------------------------------------
# Function populations
# ----------------------------------------------------------------------

def _plan_runtime(profile: BuildProfile, traits: WorkloadTraits) -> list[FunctionPlan]:
    """Runtime support functions every program carries."""
    runtime = [
        FunctionPlan(
            name="_start",
            kind="entry",
            reachable_via="entry",
            frame="rsp",
            arg_count=0,
            body_statements=3,
            callees=["main"],
            noreturn_callee="exit_impl",
            emits_endbr=profile.emits_endbr,
            alignment=profile.function_alignment,
        ),
        FunctionPlan(
            name="exit_impl",
            kind="noreturn",
            is_noreturn=True,
            arg_count=1,
            body_statements=3,
            emits_endbr=profile.emits_endbr,
            alignment=profile.function_alignment,
        ),
        FunctionPlan(
            name="abort_impl",
            kind="noreturn",
            is_noreturn=True,
            arg_count=0,
            body_statements=2,
            emits_endbr=profile.emits_endbr,
            alignment=profile.function_alignment,
        ),
        FunctionPlan(
            name="main",
            kind="normal",
            arg_count=2,
            frame_size=32,
            saved_registers=2,
            body_statements=12,
            emits_endbr=profile.emits_endbr,
            alignment=profile.function_alignment,
        ),
    ]
    if profile.compiler is CompilerFamily.CLANG and traits.is_cpp:
        runtime.append(
            FunctionPlan(
                name="__clang_call_terminate",
                kind="terminate",
                has_fde=False,
                arg_count=0,
                callees=["abort_impl"],
                alignment=4,
            )
        )
    return runtime


def _plan_ordinary_functions(
    profile: BuildProfile, traits: WorkloadTraits, rng: random.Random, count: int
) -> list[FunctionPlan]:
    functions: list[FunctionPlan] = []
    cold_rate = profile.cold_split_rate * traits.cold_split_multiplier
    for index in range(count):
        frame = "rbp" if rng.random() < profile.frame_pointer_rate else "rsp"
        cold_split = rng.random() < cold_rate
        frame_size = rng.choice((0, 0, 16, 24, 32, 48, 64))
        saved = rng.choice((0, 0, 1, 1, 2, 3))
        if cold_split and frame_size == 0 and saved == 0:
            # Keep the cold branch at a non-zero stack height so that the
            # connecting jump can never look like a tail call.
            frame_size = 16
        jump_table = rng.random() < profile.jump_table_rate
        plan = FunctionPlan(
            name=f"fn_{index:04d}",
            frame=frame,
            arg_count=max(1, rng.randrange(0, 5)) if jump_table else rng.randrange(0, 5),
            frame_size=frame_size,
            saved_registers=saved,
            jump_table_cases=rng.randrange(3, 9) if jump_table else 0,
            cold_split=cold_split,
            cold_callees=["abort_impl"] if (cold_split and rng.random() < 0.7) else [],
            body_statements=rng.randrange(4, 22),
            emits_endbr=profile.emits_endbr,
            alignment=profile.function_alignment,
        )
        if rng.random() < profile.bad_fde_rate:
            # A hand-written FDE whose PC Begin points into the middle of the
            # prologue (the paper's Figure 6b case); offset 3 lands inside the
            # `mov rbp, rsp` encoding, so the block fails validation.
            plan.frame = "rbp"
            plan.bad_fde_offset = 3
        functions.append(plan)
    return functions


def _plan_special_functions(
    profile: BuildProfile, traits: WorkloadTraits, rng: random.Random, count: int
) -> list[FunctionPlan]:
    """Assembly functions, indirect-only targets, tail-call-only targets."""
    specials: list[FunctionPlan] = []

    def per_hundred(density: float) -> int:
        expected = density * count / 100.0
        value = int(expected)
        if rng.random() < (expected - value):
            value += 1
        return value

    if traits.has_assembly:
        for index in range(per_hundred(profile.asm_function_density)):
            specials.append(
                FunctionPlan(
                    name=f"asm_{index:03d}",
                    kind="asm",
                    has_fde=False,
                    symbol_type="notype",
                    frame="rbp",
                    arg_count=2,
                    saved_registers=rng.randrange(0, 3),
                    body_statements=rng.randrange(3, 10),
                    alignment=16,
                )
            )
        for index in range(per_hundred(profile.unreachable_density)):
            specials.append(
                FunctionPlan(
                    name=f"asm_unreachable_{index:03d}",
                    kind="asm",
                    has_fde=False,
                    symbol_type="notype",
                    reachable_via="unreachable",
                    frame="rbp",
                    arg_count=0,
                    body_statements=rng.randrange(2, 6),
                    alignment=16,
                )
            )
        for index in range(per_hundred(profile.tailcall_only_density)):
            # Half of these satisfy the conservative calling-convention check
            # (Algorithm 1 discovers them as tail-call targets); the other
            # half read a scratch register on entry, which makes the check
            # fail and models the paper's harmless misses.
            violates = rng.random() < 0.5
            specials.append(
                FunctionPlan(
                    name=f"asm_tail_{index:03d}",
                    kind="asm",
                    has_fde=False,
                    symbol_type="notype",
                    reachable_via="tailcall",
                    violates_callconv=violates,
                    arg_count=2,
                    body_statements=rng.randrange(3, 8),
                    alignment=16,
                )
            )
        for index in range(per_hundred(profile.indirect_only_density)):
            specials.append(
                FunctionPlan(
                    name=f"asm_indirect_{index:03d}",
                    kind="asm",
                    has_fde=False,
                    symbol_type="notype",
                    reachable_via="indirect",
                    address_taken_via=rng.choice(("table", "immediate")),
                    arg_count=1,
                    body_statements=rng.randrange(3, 10),
                    alignment=16,
                )
            )

    if traits.uses_function_pointers:
        # Callback / virtual-method style functions: they have FDEs (so
        # FDE-based detection finds them) but are only ever reached through
        # function pointers, which is what non-FDE tools tend to miss.
        callback_density = 9.0 if traits.is_cpp else 4.0
        for index in range(max(1, per_hundred(callback_density))):
            specials.append(
                FunctionPlan(
                    name=f"callback_{index:03d}",
                    kind="normal",
                    reachable_via="indirect",
                    address_taken_via="table",
                    arg_count=2,
                    frame_size=rng.choice((0, 16, 32)),
                    body_statements=rng.randrange(3, 12),
                    emits_endbr=profile.emits_endbr,
                    alignment=profile.function_alignment,
                )
            )

    # Tail-call-only targets *with* call frames: when the conservative
    # calling-convention check fails for them, Algorithm 1 merges them into
    # their caller — the paper's 161 harmless false negatives.
    for index in range(per_hundred(profile.tailcall_only_density * 0.5)):
        specials.append(
            FunctionPlan(
                name=f"tail_helper_{index:03d}",
                kind="normal",
                reachable_via="tailcall",
                violates_callconv=True,
                arg_count=2,
                body_statements=rng.randrange(3, 9),
                # Compiled code: under CET these still get landing pads.
                emits_endbr=profile.emits_endbr,
                alignment=profile.function_alignment,
            )
        )
    return specials


# ----------------------------------------------------------------------
# Call graph
# ----------------------------------------------------------------------

def _wire_call_graph(
    plan: ProgramPlan,
    profile: BuildProfile,
    traits: WorkloadTraits,
    rng: random.Random,
    runtime: list[FunctionPlan],
    ordinary: list[FunctionPlan],
    specials: list[FunctionPlan],
) -> None:
    """Make every call-reachable function reachable from ``main``."""
    main = next(f for f in runtime if f.name == "main")
    callable_functions = [f for f in ordinary]

    # Every ordinary function gets at least one direct caller that precedes it
    # (main for the first few), producing an acyclic, fully-reachable graph.
    for index, function in enumerate(callable_functions):
        if index < 4:
            caller = main
        else:
            caller = callable_functions[rng.randrange(0, index)]
        caller.callees.append(function.name)

    # Extra forward edges for a denser graph.
    for index, caller in enumerate(callable_functions):
        extra = rng.randrange(0, 3)
        for _ in range(extra):
            if index + 1 >= len(callable_functions):
                break
            callee = callable_functions[rng.randrange(index + 1, len(callable_functions))]
            if callee.name not in caller.callees:
                caller.callees.append(callee.name)

    # Noreturn call sites.
    for function in callable_functions:
        if rng.random() < profile.noreturn_call_rate:
            function.noreturn_callee = rng.choice(("abort_impl", "exit_impl"))

    # Ordinary tail calls to shared (also directly-called) functions.
    for index, function in enumerate(callable_functions):
        if rng.random() < profile.tail_call_rate and index + 1 < len(callable_functions):
            target = callable_functions[rng.randrange(index + 1, len(callable_functions))]
            if function.noreturn_callee is None and not function.cold_split:
                function.tail_call_to = target.name

    # Direct-called assembly functions.
    for special in specials:
        if special.kind == "asm" and special.reachable_via == "call":
            caller = rng.choice(callable_functions)
            caller.callees.append(special.name)
        elif special.kind == "terminate":
            caller = rng.choice(callable_functions)
            caller.callees.append(special.name)

    # clang's terminate helper is invoked on an unlikely error path (the call
    # never returns, so it must not sit mid-body in front of live code).
    terminate = next((f for f in runtime if f.kind == "terminate"), None)
    if terminate is not None:
        candidates = [f for f in callable_functions if f.noreturn_callee is None]
        host = rng.choice(candidates) if candidates else callable_functions[0]
        host.noreturn_callee = terminate.name

    # Tail-call-only targets: exactly one referencing jump, in one function.
    for special in specials:
        if special.reachable_via != "tailcall":
            continue
        candidates = [
            f
            for f in callable_functions
            if f.tail_call_to is None and f.noreturn_callee is None and not f.cold_split
        ]
        caller = rng.choice(candidates) if candidates else main
        caller.tail_call_to = special.name

    # Indirect-only targets: address taken through a data slot or an
    # immediate, called through a function pointer by some ordinary function.
    for special in specials:
        if special.reachable_via != "indirect":
            continue
        caller = rng.choice(callable_functions)
        if special.address_taken_via == "immediate":
            caller.address_refs.append(special.name)
            # A second site performs the indirect call through a slot so the
            # function is genuinely invoked.
            slot = f"fptr_{special.name}"
            plan.data_pointers[slot] = special.name
            rng.choice(callable_functions).indirect_call_slots.append(slot)
        else:
            slot = f"fptr_{special.name}"
            plan.data_pointers[slot] = special.name
            caller.indirect_call_slots.append(slot)


def _interleave_noreturn_neighbours(plan: ProgramPlan, rng: random.Random) -> None:
    """Place some indirect-only functions right after noreturn call sites.

    This is the layout situation GHIDRA's control-flow repairing mishandles:
    the function after the noreturn call has no incoming direct control flow,
    so the heuristic removes its (FDE-provided) start.
    """
    functions = plan.functions
    indirect_only = [f for f in functions if f.reachable_via == "indirect"]
    noreturn_enders = [
        f for f in functions if f.is_noreturn or f.kind in ("noreturn", "terminate")
    ]
    rng.shuffle(indirect_only)
    moved = 0
    for ender, victim in zip(noreturn_enders, indirect_only):
        if rng.random() > 0.45 or moved >= 2:
            continue
        functions.remove(victim)
        functions.insert(functions.index(ender) + 1, victim)
        moved += 1


def _plan_data_in_text(
    plan: ProgramPlan,
    profile: BuildProfile,
    traits: WorkloadTraits,
    rng: random.Random,
    count: int,
) -> None:
    """Embed data blobs in .text, some containing prologue look-alikes."""
    blob_count = max(1, int(profile.data_in_text_density * count / 100.0))
    for _ in range(blob_count):
        size = rng.randrange(24, 96)
        blob = bytearray(rng.randrange(0, 256) for _ in range(size))
        if rng.random() < 0.85:
            # A byte sequence that matches the classic push rbp; mov rbp, rsp
            # prologue — bait for signature-matching heuristics.
            offset = rng.randrange(0, size - 8)
            blob[offset : offset + 4] = b"\x55\x48\x89\xe5"
        plan.data_in_text.append(bytes(blob))
