"""Shared thread/process fan-out used by the CLI, the corpus evaluator and
the detection service.

Two primitives live here:

* :func:`parallel_map` — the one-shot fan-out that used to be duplicated
  between ``repro.cli`` and :class:`repro.eval.runner.CorpusEvaluator`: a
  process pool when real CPU parallelism is requested (``workers``), a
  thread pool when only I/O-and-GIL-bound concurrency is wanted (``jobs``),
  and a plain serial loop otherwise.  Results always come back in input
  order.
* :class:`ShardedWorkerPool` — the long-lived counterpart used by
  :class:`repro.service.DetectionService`: worker threads that persist
  across batches, each draining its own FIFO queue, with a deterministic
  task-key → worker mapping so all work for one key (a binary content
  digest) lands on one thread in submission order.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, TypeVar

_Item = TypeVar("_Item")


def parallel_map(
    fn: Callable[[_Item], Any],
    items: Iterable[_Item],
    *,
    jobs: int = 1,
    workers: int = 0,
    pool: Executor | None = None,
) -> list[Any]:
    """Ordered ``map(fn, items)`` over the selected backend.

    ``workers > 1`` (with more than one item) selects the process backend:
    ``fn`` and the items must be picklable.  A persistent ``pool`` may be
    supplied to amortise worker start-up across calls — it is *not* shut
    down here; without one a pool is created and torn down per call.
    Otherwise ``jobs > 1`` fans out over a thread pool, and anything else
    runs serially.

    Thread safety: ``parallel_map`` itself is safe to call concurrently from
    several threads (each call owns its pool, or shares an externally-owned
    ``pool`` whose ``map`` is thread-safe); it is ``fn`` that must tolerate
    concurrent invocation when ``jobs``/``workers`` exceed one.
    """
    items = list(items)
    if workers > 1 and len(items) > 1:
        if pool is not None:
            return list(pool.map(fn, items))
        with ProcessPoolExecutor(max_workers=workers) as process_pool:
            return list(process_pool.map(fn, items))
    if jobs > 1 and len(items) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as thread_pool:
            return list(thread_pool.map(fn, items))
    return [fn(item) for item in items]


#: Queue sentinel telling a :class:`ShardedWorkerPool` worker to exit.
_STOP = object()


class ShardedWorkerPool:
    """Long-lived worker threads, each draining its own FIFO task queue.

    :func:`parallel_map` spins its pool up and down per call, which is right
    for one-shot batch evaluation but wrong for a process that stays up: a
    persistent service wants warm workers and a *stable* routing of related
    work.  Tasks are submitted with a shard key (any int, or a hex string
    such as a content digest); :meth:`shard_of` maps the key onto one of the
    ``workers`` threads, so every task sharing a key executes on the same
    thread in submission order.  The detection service shards by binary
    content digest, which serialises duplicate binaries behind each other —
    by the time the second copy runs, the first has already populated the
    cache.

    Tasks are bare callables and own their error handling: a task that
    raises is recorded in :attr:`task_errors` (most recent last, bounded)
    and the worker moves on.  The service never lets exceptions reach the
    pool — failures are folded into per-entry results instead.

    Thread safety: :meth:`submit` may be called from any thread, including
    from tasks already running on the pool; :meth:`close` must be called
    exactly once, after which further submissions raise ``RuntimeError``.
    """

    #: how many unexpected task exceptions to keep for diagnosis
    MAX_TASK_ERRORS = 32

    def __init__(self, workers: int, *, name: str = "shard-worker"):
        self.workers = max(1, int(workers))
        self.task_errors: list[BaseException] = []
        self._closed = False
        self._lock = threading.Lock()
        self._queues: list[queue.SimpleQueue] = [
            queue.SimpleQueue() for _ in range(self.workers)
        ]
        self._threads = [
            threading.Thread(
                target=self._drain, args=(task_queue,), name=f"{name}-{index}", daemon=True
            )
            for index, task_queue in enumerate(self._queues)
        ]
        for thread in self._threads:
            thread.start()

    def shard_of(self, key: int | str) -> int:
        """The worker index ``key`` routes to (stable for the pool's life)."""
        if isinstance(key, str):
            # hex digests route by their leading 64 bits; anything else by hash
            try:
                key = int(key[:16], 16)
            except ValueError:
                key = hash(key)
        return key % self.workers

    def submit(self, shard_key: int | str, task: Callable[[], Any]) -> int:
        """Queue ``task`` on the worker owning ``shard_key``; returns the shard."""
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot submit to a closed ShardedWorkerPool")
            shard = self.shard_of(shard_key)
            self._queues[shard].put(task)
        return shard

    def _drain(self, task_queue: queue.SimpleQueue) -> None:
        while True:
            task = task_queue.get()
            if task is _STOP:
                return
            try:
                task()
            except BaseException as error:  # noqa: BLE001 - tasks own their errors
                self.task_errors.append(error)
                del self.task_errors[: -self.MAX_TASK_ERRORS]

    def close(self, *, wait: bool = True) -> None:
        """Stop accepting work; with ``wait``, drain queues and join workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for task_queue in self._queues:
                task_queue.put(_STOP)
        if wait:
            for thread in self._threads:
                thread.join()

    def __enter__(self) -> "ShardedWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
