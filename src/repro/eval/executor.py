"""Shared thread/process fan-out used by the CLI, the corpus evaluator and
the detection service.

Two primitives live here:

* :func:`parallel_map` — the one-shot fan-out that used to be duplicated
  between ``repro.cli`` and :class:`repro.eval.runner.CorpusEvaluator`: a
  process pool when real CPU parallelism is requested (``workers``), a
  thread pool when only I/O-and-GIL-bound concurrency is wanted (``jobs``),
  and a plain serial loop otherwise.  Results always come back in input
  order.  The process backend *survives a broken pool*: when a child is
  killed (OOM, SIGKILL, an injected ``pool.child`` fault) the pool is
  respawned — via ``pool_factory`` when the caller owns a persistent pool —
  and only the unfinished items are retried, up to ``max_respawns`` times.
* :class:`ShardedWorkerPool` — the long-lived counterpart used by
  :class:`repro.service.DetectionService`: worker threads that persist
  across batches, each draining its own FIFO queue, with a deterministic
  task-key → worker mapping so all work for one key (a binary content
  digest) lands on one thread in submission order.  Workers are
  *supervised*: a thread that dies (a :class:`~repro.resilience.faults.
  WorkerKilled` injection, or any ``BaseException`` escaping a task) is
  restarted in place, and a task that was queued-but-not-started when the
  worker died is requeued at the front of its shard — exactly-once for
  unstarted tasks, at-most-once for started ones.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Any, Callable, Iterable, TypeVar

from repro.resilience import faults

_Item = TypeVar("_Item")

#: Environment variable carrying the pool-respawn generation.  Forked
#: process-pool children key their ``pool.child`` fault draws on it, so a
#: respawned pool re-rolls instead of deterministically re-killing itself
#: on the same item forever.
FAULT_EPOCH_VAR = "REPRO_FAULT_EPOCH"

_respawn_lock = threading.Lock()
#: process pools respawned after breaking, process-wide (chaos-bench telemetry)
POOL_RESPAWNS = 0


def _bump_fault_epoch() -> None:
    global POOL_RESPAWNS
    with _respawn_lock:
        POOL_RESPAWNS += 1
        epoch = int(os.environ.get(FAULT_EPOCH_VAR, "0")) + 1
        os.environ[FAULT_EPOCH_VAR] = str(epoch)


def parallel_map(
    fn: Callable[[_Item], Any],
    items: Iterable[_Item],
    *,
    jobs: int = 1,
    workers: int = 0,
    pool: Executor | None = None,
    pool_factory: Callable[[], Executor] | None = None,
    max_respawns: int = 2,
) -> list[Any]:
    """Ordered ``map(fn, items)`` over the selected backend.

    ``workers > 1`` (with more than one item) selects the process backend:
    ``fn`` and the items must be picklable.  A persistent ``pool`` may be
    supplied to amortise worker start-up across calls — it is *not* shut
    down here unless it breaks; without one a pool is created and torn down
    per call.  Otherwise ``jobs > 1`` fans out over a thread pool, and
    anything else runs serially.

    When a process-pool child dies the executor raises ``BrokenExecutor``
    for every in-flight future.  Finished results are kept, the pool is
    replaced (``pool_factory()`` when given — the owner's hook to also
    retire its broken persistent pool — else a fresh owned pool), and only
    the unfinished items are resubmitted, at most ``max_respawns`` times
    before the breakage propagates.  Items must therefore tolerate
    at-most-one re-execution (detector runs are pure, so they do).

    Thread safety: ``parallel_map`` itself is safe to call concurrently from
    several threads (each call owns its pool, or shares an externally-owned
    ``pool`` whose methods are thread-safe); it is ``fn`` that must tolerate
    concurrent invocation when ``jobs``/``workers`` exceed one.
    """
    items = list(items)
    if workers > 1 and len(items) > 1:
        return _process_map(
            fn,
            items,
            workers=workers,
            pool=pool,
            pool_factory=pool_factory,
            max_respawns=max_respawns,
        )
    if jobs > 1 and len(items) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as thread_pool:
            return list(thread_pool.map(fn, items))
    return [fn(item) for item in items]


def _submit_round(
    pool: Executor,
    fn: Callable[[_Item], Any],
    items: list[_Item],
    pending: list[int],
    results: list[Any],
) -> list[int]:
    """One submit/collect pass; returns indices lost to a broken pool.

    Task exceptions (``fn`` raising) propagate to the caller exactly as the
    plain ``pool.map`` path used to — only *pool* failures are absorbed.
    """
    futures: list[tuple[int, Any]] = []
    unfinished: list[int] = []
    try:
        for index in pending:
            futures.append((index, pool.submit(fn, items[index])))
    except (BrokenExecutor, RuntimeError):
        submitted = {index for index, _ in futures}
        unfinished.extend(index for index in pending if index not in submitted)
    for index, future in futures:
        try:
            results[index] = future.result()
        except BrokenExecutor:
            unfinished.append(index)
    return sorted(unfinished)


def _process_map(
    fn: Callable[[_Item], Any],
    items: list[_Item],
    *,
    workers: int,
    pool: Executor | None,
    pool_factory: Callable[[], Executor] | None,
    max_respawns: int,
) -> list[Any]:
    results: list[Any] = [None] * len(items)
    owned: list[Executor] = []
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        owned.append(pool)
    respawns = 0
    try:
        pending = list(range(len(items)))
        while pending:
            pending = _submit_round(pool, fn, items, pending, results)
            if not pending:
                break
            if respawns >= max_respawns:
                raise BrokenExecutor(
                    f"process pool still broken after {respawns} respawns; "
                    f"{len(pending)} of {len(items)} items unfinished"
                )
            respawns += 1
            _bump_fault_epoch()
            pool.shutdown(wait=False)
            if pool_factory is not None:
                pool = pool_factory()
            else:
                pool = ProcessPoolExecutor(max_workers=max(2, workers))
                owned.append(pool)
        return results
    finally:
        for executor in owned:
            executor.shutdown(wait=False)


#: Queue sentinel telling a :class:`ShardedWorkerPool` worker to exit.
_STOP = object()


class _ShardQueue:
    """Unbounded FIFO with a front-of-queue lane for requeued tasks.

    ``queue.SimpleQueue`` has no way to put an item back *ahead* of later
    submissions, which worker supervision needs: a task requeued after its
    worker died must run before tasks submitted after it, or the per-key
    ordering contract breaks.
    """

    def __init__(self) -> None:
        self._items: deque = deque()
        self._cond = threading.Condition()

    def put(self, item: Any) -> None:
        with self._cond:
            self._items.append(item)
            self._cond.notify()

    def put_front(self, item: Any) -> None:
        with self._cond:
            self._items.appendleft(item)
            self._cond.notify()

    def get(self) -> Any:
        with self._cond:
            while not self._items:
                self._cond.wait()
            return self._items.popleft()


class ShardedWorkerPool:
    """Long-lived, supervised worker threads, each draining its own queue.

    :func:`parallel_map` spins its pool up and down per call, which is right
    for one-shot batch evaluation but wrong for a process that stays up: a
    persistent service wants warm workers and a *stable* routing of related
    work.  Tasks are submitted with a shard key (any int, or a hex string
    such as a content digest); :meth:`shard_of` maps the key onto one of the
    ``workers`` threads, so every task sharing a key executes on the same
    thread in submission order.  The detection service shards by binary
    content digest, which serialises duplicate binaries behind each other —
    by the time the second copy runs, the first has already populated the
    cache.

    Tasks are bare callables and own their error handling: a task that
    raises an ``Exception`` is recorded in :attr:`task_errors` (most recent
    last, bounded) and the worker moves on.  A ``BaseException`` — notably
    an injected :class:`~repro.resilience.faults.WorkerKilled` — unwinds
    the worker thread instead, and the supervisor takes over: the thread is
    restarted in place (:attr:`worker_restarts`) and, when the death struck
    *before* the dequeued task started, that task is requeued at the front
    of its shard (:attr:`requeued_tasks`) so it is never lost and never run
    twice.  A death mid-task does **not** requeue — the task may have had
    side effects, and the service layer's retry policy owns that case.

    Thread safety: :meth:`submit` may be called from any thread, including
    from tasks already running on the pool; :meth:`close` must be called
    exactly once, after which further submissions raise ``RuntimeError``.
    """

    #: how many unexpected task exceptions to keep for diagnosis
    MAX_TASK_ERRORS = 32

    def __init__(self, workers: int, *, name: str = "shard-worker"):
        self.workers = max(1, int(workers))
        self.name = name
        self.task_errors: list[BaseException] = []
        #: dead worker threads restarted by the supervisor
        self.worker_restarts = 0
        #: in-flight tasks requeued after their worker died pre-start
        self.requeued_tasks = 0
        self._closed = False
        self._lock = threading.Lock()
        self._queues: list[_ShardQueue] = [_ShardQueue() for _ in range(self.workers)]
        #: per-shard task dequeued but not yet started (requeue on death)
        self._current: list[Any] = [None] * self.workers
        self._threads: list[threading.Thread] = [
            self._spawn(index, generation=0) for index in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    def _spawn(self, shard: int, *, generation: int) -> threading.Thread:
        suffix = f"-{shard}" if generation == 0 else f"-{shard}r{generation}"
        return threading.Thread(
            target=self._run, args=(shard,), name=f"{self.name}{suffix}", daemon=True
        )

    def shard_of(self, key: int | str) -> int:
        """The worker index ``key`` routes to (stable for the pool's life)."""
        if isinstance(key, str):
            # hex digests route by their leading 64 bits; anything else by hash
            try:
                key = int(key[:16], 16)
            except ValueError:
                key = hash(key)
        return key % self.workers

    def submit(self, shard_key: int | str, task: Callable[[], Any]) -> int:
        """Queue ``task`` on the worker owning ``shard_key``; returns the shard."""
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot submit to a closed ShardedWorkerPool")
            shard = self.shard_of(shard_key)
            self._queues[shard].put(task)
        return shard

    # -- worker loop + supervision --------------------------------------
    def _run(self, shard: int) -> None:
        try:
            self._drain(shard)
        except BaseException:  # noqa: BLE001 - worker death, supervised below
            self._revive(shard)

    def _drain(self, shard: int) -> None:
        task_queue = self._queues[shard]
        while True:
            task = task_queue.get()
            if task is _STOP:
                return
            # Window where a worker death must requeue: the task is ours
            # but has not started.  The ``worker`` fault site fires inside
            # this window, so an injected kill exercises exactly the
            # requeue path and can never double-execute the task.
            self._current[shard] = task
            faults.fire("worker", str(shard))
            try:
                self._current[shard] = None
                task()
            except Exception as error:  # tasks own their errors
                self.task_errors.append(error)
                del self.task_errors[: -self.MAX_TASK_ERRORS]

    def _revive(self, shard: int) -> None:
        with self._lock:
            self.worker_restarts += 1
            task = self._current[shard]
            self._current[shard] = None
            if task is not None:
                self._queues[shard].put_front(task)
                self.requeued_tasks += 1
            thread = self._spawn(shard, generation=self.worker_restarts)
            # start before publishing: close() joins whatever _threads holds,
            # and joining a never-started thread raises
            thread.start()
            self._threads[shard] = thread

    def close(self, *, wait: bool = True) -> None:
        """Stop accepting work; with ``wait``, drain queues and join workers.

        The join tolerates supervision: if a worker dies (and is replaced)
        while draining its remaining queue, the replacement is joined too —
        ``_STOP`` is re-consumed by whichever incarnation reaches it.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for task_queue in self._queues:
                task_queue.put(_STOP)
        if wait:
            for shard in range(self.workers):
                while True:
                    with self._lock:
                        thread = self._threads[shard]
                    thread.join()
                    with self._lock:
                        if self._threads[shard] is thread:
                            break

    def __enter__(self) -> "ShardedWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
