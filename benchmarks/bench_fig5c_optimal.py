"""Figure 5c — the optimal strategies culminating in full FETCH."""

from repro.eval import run_figure5c
from repro.eval.tables import render_strategy_outcomes


def test_figure5c_optimal_strategies(
    benchmark, selfbuilt_corpus, report_writer, make_evaluator
):
    evaluator = make_evaluator(selfbuilt_corpus)
    outcomes = benchmark.pedantic(
        lambda: evaluator.timed(
            "ladder", run_figure5c, selfbuilt_corpus, evaluator=evaluator
        ),
        rounds=1,
        iterations=1,
    )
    evaluator.write_bench("figure5c_optimal")
    report_writer(
        "figure5c_optimal",
        render_strategy_outcomes("Figure 5c — optimal strategies (FETCH)", outcomes),
    )
    by_label = {o.label: o for o in outcomes}

    # Safe recursion and pointer validation monotonically improve coverage
    # without hurting accuracy.
    assert by_label["FDE+Rec"].full_coverage >= by_label["FDE"].full_coverage
    assert by_label["FDE+Rec+Xref"].full_coverage >= by_label["FDE+Rec"].full_coverage
    assert by_label["FDE+Rec+Xref"].full_accuracy >= by_label["FDE"].full_accuracy
    # Algorithm 1 is what delivers accuracy, at a marginal coverage cost (the
    # merged tail-call-only helpers; equivalent to inlining, hence harmless).
    final = by_label["FDE+Rec+Xref+Tcall"]
    assert final.full_accuracy > by_label["FDE+Rec+Xref"].full_accuracy
    coverage_drop = by_label["FDE+Rec+Xref"].full_coverage - final.full_coverage
    assert coverage_drop <= max(2, int(0.15 * len(selfbuilt_corpus)))
    # The coverage cost never exceeds the accuracy gain.
    assert (
        final.full_accuracy - by_label["FDE+Rec+Xref"].full_accuracy >= coverage_drop
    )
