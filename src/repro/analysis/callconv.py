"""Calling-convention validation.

The rule from §IV-E of the paper: at a legitimate function entry, every
register other than the System-V integer-argument registers (``rdi``,
``rsi``, ``rdx``, ``rcx``, ``r8``, ``r9``) must be initialised before it is
used.  Saving a callee-saved register with ``push`` does not count as a use,
and a ``call`` re-defines the caller-saved registers.  The check walks a
bounded number of instructions of straight-line + direct-jump flow from the
candidate entry and reports a violation as soon as an uninitialised register
is read; undecodable bytes are also violations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.elf.image import BinaryImage
from repro.x86.disassembler import DecodeError, decode_instruction
from repro.x86.instruction import (
    _F_CALL,
    _F_RET,
    _F_TERMINATOR,
    _F_UNCOND_JUMP,
    Instruction,
)
from repro.x86.registers import (
    ARGUMENT_REGISTERS,
    RBP,
    RSP,
    Register,
)
from repro.x86.semantics import entry_masks, register_mask

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.context import AnalysisContext

_DEFAULT_LIMIT = 48

#: Registers a caller is allowed to leave live at a function entry, as the
#: bit mask the walk tracks (bit ``n`` = register encoding number ``n``).
_ENTRY_INITIALIZED_MASK = register_mask(ARGUMENT_REGISTERS) | register_mask((RSP, RBP))

#: Non-ret terminators that end the walk with a clean verdict.
_STOP_MNEMONICS = frozenset({"ud2", "hlt"})

#: decode-cache probe sentinel ("address not yet decoded")
_UNCACHED = object()


def satisfies_calling_convention(
    image: BinaryImage,
    address: int,
    *,
    max_instructions: int = _DEFAULT_LIMIT,
    context: "AnalysisContext | None" = None,
) -> bool:
    """Whether code starting at ``address`` looks like a function entry.

    With a ``context`` the verdict is memoized per address (the check is a
    pure function of the image bytes) and decoding goes through the shared
    decode cache.
    """
    if context is not None:
        return context.calling_convention_ok(address, max_instructions=max_instructions)
    return check_entry_convention(image, address, max_instructions=max_instructions)


def adjusted_entry_masks(insn: Instruction) -> int:
    """:func:`entry_masks` with the walk's push adjustment applied statically.

    Returns ``(reads << 16) | writes`` where the read of a ``push``'d
    register has been removed — saving a register is not a use of its value.
    The walk only applies the adjustment after spotting a violation, but the
    outcome is the same either way (the adjusted set is a subset), which
    lets span summaries precompute one mask per instruction.
    """
    masks = entry_masks(insn)
    if insn.mnemonic == "push" and insn.operands:
        for operand in insn.operands:
            if operand.__class__ is Register:
                masks &= ~(1 << (operand.number + 16))
    return masks


def check_entry_convention(
    image: BinaryImage,
    address: int,
    *,
    max_instructions: int = _DEFAULT_LIMIT,
    decode: Callable[[int], Instruction | None] | None = None,
    cache: dict[int, Instruction | None] | None = None,
) -> bool:
    """The uncached convention walk; ``decode`` overrides instruction access.

    ``cache`` (a shared decode memo, ``address -> Instruction | None``) lets
    the walk probe already-decoded instructions directly at dict speed;
    ``decode`` is then only invoked for addresses the cache has never seen.
    """
    if decode is None:
        def decode(current: int) -> Instruction | None:
            section = image.section_containing(current)
            if section is None or not section.is_executable:
                return None
            try:
                return decode_instruction(section.data, current - section.address, current)
            except DecodeError:
                return None

    cache_get = cache.get if cache is not None else None
    return _convention_walk(
        decode, cache_get, address, _ENTRY_INITIALIZED_MASK, max_instructions, set()
    )


def _convention_walk(
    decode: Callable[[int], Instruction | None],
    cache_get,
    address: int,
    initialized: int,
    max_instructions: int,
    jump_targets: set[int],
) -> bool:
    """The per-instruction convention walk from an arbitrary mid-walk state.

    This is the reference implementation of the §IV-E check;
    :meth:`repro.core.context.AnalysisContext.calling_convention_ok` runs an
    equivalent span-summary walk and falls back to this one (with the
    accumulated ``initialized``/budget/``jump_targets`` state) whenever a
    jump leaves the span-aligned fast path.
    """
    # ``initialized`` always contains RSP/RBP, so the violation test reduces
    # to a plain subset check over the read-set; both sets are tracked as bit
    # masks keyed by register encoding number.  Cycles require at least one
    # backward unconditional jump (fall-through addresses strictly increase),
    # so loop detection only has to remember jump targets — and a re-walked
    # instruction can never produce a new violation because ``initialized``
    # only grows, so detecting the cycle one lap late keeps the verdict.
    current = address

    for _ in range(max_instructions):
        if cache_get is not None:
            insn = cache_get(current, _UNCACHED)
            if insn is _UNCACHED:
                insn = decode(current)
        else:
            insn = decode(current)
        if insn is None:
            return False

        flags = insn._flags
        if flags:
            if flags & (_F_RET | _F_CALL):
                # A ret ends the walk cleanly; reaching a call without a
                # violation is good enough — the callee re-establishes its
                # own conventions.
                return True
            if (
                flags & _F_TERMINATOR
                and not flags & _F_UNCOND_JUMP
                and insn.mnemonic in _STOP_MNEMONICS
            ):
                return True

        masks = entry_masks(insn)
        reads = masks >> 16
        if reads & ~initialized:
            if insn.mnemonic == "push" and insn.operands:
                # Saving a register is not a use of its value in the ABI sense.
                for operand in insn.operands:
                    if operand.__class__ is Register:
                        reads &= ~(1 << operand.number)
            if reads & ~initialized:
                return False
        initialized |= masks & 0xFFFF

        if flags & _F_UNCOND_JUMP:
            target = insn.branch_target
            if target is None or target in jump_targets:
                return True
            jump_targets.add(target)
            current = target
            continue
        # Conditional jumps follow the fall-through edge; one clean path is
        # sufficient for this conservative check.
        current = insn.end
    return True
