"""Table V — average time to analyse one binary, per tool."""

from repro.eval import run_timing_study
from repro.eval.tables import render_table5


def test_table5_timing(
    benchmark, selfbuilt_corpus_small, report_writer, make_evaluator
):
    evaluator = make_evaluator(selfbuilt_corpus_small, jobs=1)
    timings = benchmark.pedantic(
        lambda: evaluator.timed(
            "timing_study",
            run_timing_study,
            selfbuilt_corpus_small,
            evaluator=evaluator,
        ),
        rounds=1,
        iterations=1,
    )
    evaluator.timings.update({f"per_binary_{k}": v for k, v in timings.items()})
    evaluator.write_bench("table5_timing")
    report_writer("table5_timing", render_table5(timings))

    # FETCH's runtime is of the same order as the fastest tools — the paper
    # reports ~3.3 s per (much larger) binary, comparable to DYNINST and
    # NUCLEUS and far below BAP.
    assert timings["fetch"] < 5 * max(timings["dyninst"], timings["nucleus"])
    assert timings["fetch"] < timings["bap"] * 3
