"""Cold single-binary detection latency (the service's first-request cost).

Protocol ("true cold"): the ELF container is parsed once, then every
iteration constructs a fresh :class:`BinaryImage` and analysis context and
runs the FETCH detector end to end — so each timed run pays eh_frame
parsing, decoding and the full pipeline, exactly like the first request for
a binary the service has never seen.  Wall clock is the best of
``ITERATIONS`` runs per binary; a fixed-work calibration loop converts
seconds into machine-independent "units" so records from different hosts
can be compared.

The corpus is pinned (``scale=1.0, seed=2021``, top ``TOP_BINARIES`` by
function count) independently of ``REPRO_BENCH_SCALE`` so the committed
``BENCH_cold_latency.json`` is reproducible anywhere.

With ``REPRO_COLD_GATE=1`` the run additionally fails if any binary's
cold latency (in calibration units) regressed more than
``GATE_TOLERANCE`` against the committed ``BENCH_cold_latency.json`` —
this is the CI regression gate for the cold path.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core import FetchDetector
from repro.core.context import AnalysisContext
from repro.elf.image import BinaryImage
from repro.synth import build_selfbuilt_corpus
from repro.x86.disassembler import DECODE_STATS, decode_block

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_cold_latency.json"

COLD_SCALE = 1.0
COLD_SEED = 2021
TOP_BINARIES = 4
ITERATIONS = 7
GATE_TOLERANCE = 0.15

#: Pre-rewrite reference, measured at the seed commit (6b8b503) with this
#: exact protocol: same machine/day as the committed post numbers, six
#: order-rotated interleaved rounds (pre-PR-5 / pre-PR-9 / current rotating
#: first position each round), best iteration across rounds.  The decode
#: counts are deterministic facts of the seed-commit code.  Kept here so the
#: achieved speedup is part of the record even after the pre-PR code is gone.
PRE_PR_BASELINE = {
    "mysqld-like-0:clang:O3": {"cold_seconds": 0.120710, "cold_units": 0.706,
                               "raw_decodes": 6740},
    "binutils-like-0:clang:Ofast": {"cold_seconds": 0.111620, "cold_units": 0.653,
                                    "raw_decodes": 6195},
    "mysqld-like-0:gcc:Os": {"cold_seconds": 0.107750, "cold_units": 0.630,
                             "raw_decodes": 6163},
    "mysqld-like-0:gcc:O2": {"cold_seconds": 0.108280, "cold_units": 0.633,
                             "raw_decodes": 5997},
}


def _calibrate() -> float:
    """Seconds for a fixed 2M-iteration integer loop (best of 3)."""
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        total = 0
        for i in range(2_000_000):
            total += i ^ (i >> 3)
        best = min(best, time.perf_counter() - start)
    return best


def _measure_binary(binary, calibration: float) -> dict:
    elf = binary.image.elf
    best = float("inf")
    decodes = 0
    for _ in range(ITERATIONS):
        before = DECODE_STATS.raw_decodes
        start = time.perf_counter()
        image = BinaryImage(elf=elf, name=binary.name)
        FetchDetector().detect(image, AnalysisContext(image))
        elapsed = time.perf_counter() - start
        decodes = DECODE_STATS.raw_decodes - before
        best = min(best, elapsed)
    return {
        "cold_seconds": round(best, 6),
        "cold_units": round(best / calibration, 3),
        "raw_decodes": decodes,
        "functions": binary.ground_truth.function_count,
    }


def _decoder_throughput(binary) -> dict:
    """Linear-sweep batch decode of the whole ``.text`` (decode cost only)."""
    text = next(s for s in binary.image.elf.sections if s.name == ".text")
    data, address = text.data, text.address

    def sweep() -> int:
        pos = 0
        total = 0
        n = len(data)
        while pos < n:
            out, failed = decode_block(data, pos, address + pos, 1 << 30)
            total += len(out)
            # Resume after the last decoded instruction; an undecodable byte
            # (jump-table data, padding) is skipped one byte at a time.
            pos = out[-1].end - address if out else pos + 1
        return total

    best = float("inf")
    count = 0
    for _ in range(5):
        start = time.perf_counter()
        count = sweep()
        best = min(best, time.perf_counter() - start)
    return {
        "instructions": count,
        "seconds": round(best, 6),
        "minsn_per_second": round(count / best / 1e6, 3),
    }


def _render(record: dict) -> str:
    lines = ["Cold single-binary detection latency (true-cold, best of "
             f"{ITERATIONS})", "-" * 76]
    lines.append(f"{'binary':<30} {'cold ms':>9} {'units':>7} {'pre units':>10} "
                 f"{'speedup':>8}")
    for name, row in record["binaries"].items():
        pre = PRE_PR_BASELINE.get(name, {}).get("cold_units")
        speedup = f"{pre / row['cold_units']:.2f}x" if pre else "-"
        lines.append(
            f"{name:<30} {row['cold_seconds'] * 1e3:>9.2f} {row['cold_units']:>7.3f} "
            f"{pre if pre is not None else '-':>10} {speedup:>8}"
        )
    decoder = record["decoder"]
    lines.append(
        f"decoder sweep: {decoder['instructions']} insns in "
        f"{decoder['seconds'] * 1e3:.2f} ms = {decoder['minsn_per_second']} M insn/s"
    )
    return "\n".join(lines)


def test_cold_latency(artifact_store, report_writer):
    committed = None
    if BENCH_PATH.exists():
        committed = json.loads(BENCH_PATH.read_text())

    corpus = build_selfbuilt_corpus(scale=COLD_SCALE, seed=COLD_SEED, store=artifact_store)
    ranked = sorted(corpus, key=lambda b: b.ground_truth.function_count, reverse=True)
    targets = ranked[:TOP_BINARIES]

    calibration = _calibrate()
    rows = {binary.name: _measure_binary(binary, calibration) for binary in targets}

    # The regression gate: compare against the *committed* record in
    # calibration units so a slower CI host does not fail the build.  An
    # over-limit reading is re-measured (fresh calibration too) before it
    # counts as a regression — single best-of-N readings carry scheduling
    # noise that retries absorb but a hard threshold would not.
    if os.environ.get("REPRO_COLD_GATE") and committed is not None:
        by_name = {binary.name: binary for binary in targets}
        for name, reference in committed["binaries"].items():
            if name not in rows:
                continue
            limit = reference["cold_units"] * (1 + GATE_TOLERANCE)
            for _ in range(2):
                if rows[name]["cold_units"] <= limit:
                    break
                retry = _measure_binary(by_name[name], _calibrate())
                if retry["cold_units"] < rows[name]["cold_units"]:
                    rows[name] = retry
            assert rows[name]["cold_units"] <= limit, (
                f"cold latency regression on {name}: {rows[name]['cold_units']} "
                f"units > {limit:.3f} (committed {reference['cold_units']} + "
                f"{GATE_TOLERANCE:.0%})"
            )

    record = {
        "bench": "cold_latency",
        "created_unix": round(time.time(), 3),
        "protocol": {
            "definition": "fresh BinaryImage + context per iteration; "
                          f"best of {ITERATIONS}; corpus scale={COLD_SCALE} "
                          f"seed={COLD_SEED}, top {TOP_BINARIES} by function count",
            "calibration": "2M-iteration integer loop, best of 3",
        },
        "calibration_seconds": round(calibration, 6),
        "binaries": rows,
        "decoder": _decoder_throughput(targets[0]),
        "pre_pr_baseline": PRE_PR_BASELINE,
        "speedup_units": {
            name: round(PRE_PR_BASELINE[name]["cold_units"] / row["cold_units"], 2)
            for name, row in rows.items()
            if name in PRE_PR_BASELINE
        },
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    report_writer("cold_latency", _render(record))

    # Sanity floor on the rewrite itself: the cold path must stay well ahead
    # of the pre-PR baseline (measured ~3.0-3.3x; 2x leaves noise headroom).
    for name, speedup in record["speedup_units"].items():
        assert speedup >= 2.0, f"{name}: cold speedup fell to {speedup}x vs pre-PR"
