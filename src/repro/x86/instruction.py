"""Decoded / assembled instruction model.

An :class:`Instruction` is a plain value object: mnemonic, operands, the
address it was decoded at (or will be placed at) and its raw encoding.  The
classification helpers (``is_call``, ``is_conditional_jump`` ...) are the
vocabulary used throughout the analysis and detection layers, so they live
here rather than in the semantics module.

The class is ``__slots__``-backed and classification is a single bit test
against a per-mnemonic flag word computed once at import: the decoder
allocates an :class:`Instruction` for every decoded address, and the
per-instance ``cached_property`` dicts of the previous dataclass design were
one of the dominant costs of the cold decode path.  Derived facts that the
traversal layers query constantly (``end``, ``branch_target``,
``rip_target``) are precomputed in the constructor.
"""

from __future__ import annotations

from repro.x86.operands import Imm, Mem
from repro.x86.registers import Register

#: Conditional jump mnemonics, keyed by condition-code nibble.
CONDITION_CODES = {
    0x0: "jo",
    0x1: "jno",
    0x2: "jb",
    0x3: "jae",
    0x4: "je",
    0x5: "jne",
    0x6: "jbe",
    0x7: "ja",
    0x8: "js",
    0x9: "jns",
    0xA: "jp",
    0xB: "jnp",
    0xC: "jl",
    0xD: "jge",
    0xE: "jle",
    0xF: "jg",
}

CONDITIONAL_JUMPS = frozenset(CONDITION_CODES.values())

#: Mnemonics that never fall through to the next instruction.
_NO_FALLTHROUGH = frozenset({"jmp", "ret", "ud2", "hlt"})

#: Mnemonics treated as padding / alignment filler by compilers.
PADDING_MNEMONICS = frozenset({"nop", "int3"})

Operand = Register | Imm | Mem

# Classification flag bits (per mnemonic, composed once below).
_F_CALL = 0x001
_F_RET = 0x002
_F_UNCOND_JUMP = 0x004
_F_COND_JUMP = 0x008
_F_NOP = 0x010
_F_PADDING = 0x020
_F_TERMINATOR = 0x040
_F_INVALID = 0x080
#: per-instance bit: a call/jump through a register or memory operand
_F_INDIRECT = 0x100

_F_JUMP = _F_UNCOND_JUMP | _F_COND_JUMP
_F_BRANCH = _F_JUMP | _F_CALL | _F_RET
_F_CALL_OR_JUMP = _F_CALL | _F_JUMP
#: any instruction that can redirect or end control flow
_F_CONTROL = _F_BRANCH | _F_TERMINATOR

#: mnemonic -> classification flags, the lookup table behind every helper.
_MNEMONIC_FLAGS: dict[str, int] = {name: _F_COND_JUMP for name in CONDITIONAL_JUMPS}
_MNEMONIC_FLAGS["jmp"] = _F_UNCOND_JUMP | _F_TERMINATOR
_MNEMONIC_FLAGS["call"] = _F_CALL
_MNEMONIC_FLAGS["ret"] = _F_RET | _F_TERMINATOR
_MNEMONIC_FLAGS["ud2"] = _F_TERMINATOR
_MNEMONIC_FLAGS["hlt"] = _F_TERMINATOR
_MNEMONIC_FLAGS["nop"] = _F_NOP | _F_PADDING
_MNEMONIC_FLAGS["endbr64"] = _F_NOP
_MNEMONIC_FLAGS["int3"] = _F_PADDING
_MNEMONIC_FLAGS["(bad)"] = _F_INVALID


class Instruction:
    """A single decoded or assembled x86-64 instruction.

    Equality and hashing cover the value fields (``comment`` is excluded,
    matching the ``compare=False`` of the original dataclass).
    """

    __slots__ = (
        "mnemonic",
        "operands",
        "address",
        "data",
        "operand_size",
        "comment",
        "end",
        "branch_target",
        "rip_target",
        "_flags",
        "_memory_operand",
        # Precomputed code-constant contribution (``None`` | int | tuple):
        # the >=4-byte immediates of a non-branch instruction plus any
        # RIP-relative target, i.e. exactly what
        # ``DisassembledFunction.code_constants`` collects per instruction.
        "_consts",
        # Lazily-filled memo slots for repro.x86.semantics (left unset until
        # first use; the semantics helpers are pure per-instruction facts).
        "_regs_read",
        "_regs_written",
    )

    def __init__(
        self,
        mnemonic: str,
        operands: tuple[Operand, ...] = (),
        address: int = 0,
        data: bytes = b"",
        operand_size: int = 8,
        comment: str = "",
    ):
        self.mnemonic = mnemonic
        self.operands = operands
        self.address = address
        self.data = data
        self.operand_size = operand_size
        self.comment = comment
        #: Address of the byte following this instruction.
        end = address + len(data)
        self.end = end

        flags = _MNEMONIC_FLAGS.get(mnemonic, 0)
        target = None
        mem = None
        consts = None
        if operands:
            first = operands[0]
            if flags & _F_CALL_OR_JUMP:
                if first.__class__ is Imm:
                    target = first.value
                else:
                    flags |= _F_INDIRECT
            if flags & _F_BRANCH:
                if first.__class__ is Mem:
                    mem = first
                else:
                    for position in range(1, len(operands)):
                        operand = operands[position]
                        if operand.__class__ is Mem:
                            mem = operand
                            break
            else:
                # Same walk also harvests the address-sized immediates so no
                # analysis pass ever re-scans the operand tuple.
                for operand in operands:
                    cls = operand.__class__
                    if cls is Mem:
                        if mem is None:
                            mem = operand
                    elif cls is Imm and operand.size >= 4:
                        value = operand.value
                        if consts is None:
                            consts = value
                        elif consts.__class__ is tuple:
                            consts = consts + (value,)
                        else:
                            consts = (consts, value)
        self._flags = flags
        #: Absolute target of a direct call/jump, else ``None``.
        self.branch_target = target
        self._memory_operand = mem
        #: Absolute address referenced through a RIP-relative operand.
        if mem is not None and mem.rip_relative:
            rip = end + mem.disp
            self.rip_target = rip
            if consts is None:
                consts = rip
            elif consts.__class__ is tuple:
                consts = consts + (rip,)
            else:
                consts = (consts, rip)
        else:
            self.rip_target = None
        self._consts = consts

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Encoded length in bytes."""
        return len(self.data)

    @property
    def is_call(self) -> bool:
        return (self._flags & _F_CALL) != 0

    @property
    def is_ret(self) -> bool:
        return (self._flags & _F_RET) != 0

    @property
    def is_unconditional_jump(self) -> bool:
        return (self._flags & _F_UNCOND_JUMP) != 0

    @property
    def is_conditional_jump(self) -> bool:
        return (self._flags & _F_COND_JUMP) != 0

    @property
    def is_jump(self) -> bool:
        """Any jump (conditional or unconditional), excluding calls."""
        return (self._flags & _F_JUMP) != 0

    @property
    def is_branch(self) -> bool:
        """Any control transfer: jumps, calls and returns."""
        return (self._flags & _F_BRANCH) != 0

    @property
    def is_direct_branch(self) -> bool:
        """A call/jump whose target is an immediate operand."""
        return self.branch_target is not None

    @property
    def is_indirect_branch(self) -> bool:
        """A call/jump through a register or memory operand."""
        return (self._flags & _F_INDIRECT) != 0

    @property
    def is_nop(self) -> bool:
        return (self._flags & _F_NOP) != 0

    @property
    def is_padding(self) -> bool:
        """Whether compilers use this instruction as inter-function filler."""
        return (self._flags & _F_PADDING) != 0

    @property
    def is_terminator(self) -> bool:
        """Whether execution never falls through to the next instruction."""
        return (self._flags & _F_TERMINATOR) != 0

    @property
    def is_invalid(self) -> bool:
        return (self._flags & _F_INVALID) != 0

    @property
    def memory_operand(self) -> Mem | None:
        """The memory operand of this instruction, if any."""
        return self._memory_operand

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Instruction:
            return NotImplemented
        return (
            self.mnemonic == other.mnemonic
            and self.operands == other.operands
            and self.address == other.address
            and self.data == other.data
            and self.operand_size == other.operand_size
        )

    def __hash__(self) -> int:
        return hash((self.mnemonic, self.operands, self.address, self.data, self.operand_size))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Instruction(mnemonic={self.mnemonic!r}, operands={self.operands!r}, "
            f"address={self.address!r}, data={self.data!r}, "
            f"operand_size={self.operand_size!r})"
        )

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __str__(self) -> str:  # pragma: no cover - display helper
        ops = ", ".join(str(op) for op in self.operands)
        text = f"{self.address:#x}: {self.mnemonic}"
        if ops:
            text += f" {ops}"
        return text
