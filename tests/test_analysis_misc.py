"""Tests for calling-convention validation, gaps, xrefs, prologue matching,
linear scan, stack-height analysis and gadget counting."""

from repro.analysis import (
    RecursiveDisassembler,
    StackHeightAnalysis,
    collect_potential_pointers,
    compute_gaps,
    count_rop_gadgets,
    linear_scan_gaps,
    match_prologues,
    satisfies_calling_convention,
    validate_function_pointer,
)
from repro.core.fde_source import extract_fde_starts
from repro.dwarf.cfa_table import build_cfa_table


def disassemble(binary):
    disassembler = RecursiveDisassembler(binary.image)
    return disassembler.disassemble(extract_fde_starts(binary.image))


# ----------------------------------------------------------------------
# Calling convention validation
# ----------------------------------------------------------------------

def test_true_function_entries_satisfy_calling_conventions(rich_binary):
    image = rich_binary.image
    for info in rich_binary.ground_truth.functions:
        if info.violates_callconv or info.kind == "terminate":
            continue
        assert satisfies_calling_convention(image, info.address), info.name


def test_callconv_violating_functions_are_rejected(gcc_o2_profile):
    from repro.synth import compile_program
    from repro.synth.plan import FunctionPlan, ProgramPlan

    plan = ProgramPlan(name="violators", profile=gcc_o2_profile)
    plan.functions = [
        FunctionPlan(name="_start", kind="entry", callees=["clean", "dirty"], body_statements=2),
        FunctionPlan(name="clean", arg_count=2, body_statements=4),
        FunctionPlan(name="dirty", arg_count=2, body_statements=4, violates_callconv=True),
    ]
    binary = compile_program(plan)
    clean = binary.ground_truth.by_name("clean")
    dirty = binary.ground_truth.by_name("dirty")
    assert satisfies_calling_convention(binary.image, clean.address)
    assert not satisfies_calling_convention(binary.image, dirty.address)


def test_data_addresses_fail_validation(rich_binary):
    image = rich_binary.image
    rodata = image.section(".rodata")
    assert not satisfies_calling_convention(image, rodata.address)


# ----------------------------------------------------------------------
# Gaps
# ----------------------------------------------------------------------

def test_gaps_do_not_overlap_disassembled_instructions(rich_binary):
    result = disassemble(rich_binary)
    gaps = compute_gaps(rich_binary.image, result)
    covered = {a for insn in result.instructions.values() for a in range(insn.address, insn.end)}
    for start, end in gaps:
        assert start < end
        assert not (covered & set(range(start, min(end, start + 64))))


def test_gaps_cover_data_in_text_blobs(rich_binary):
    result = disassemble(rich_binary)
    gaps = compute_gaps(rich_binary.image, result)
    total_gap_bytes = sum(end - start for start, end in gaps)
    blob_bytes = sum(len(blob) for blob in rich_binary.plan.data_in_text)
    assert total_gap_bytes >= blob_bytes


# ----------------------------------------------------------------------
# Pointer collection and validation (§IV-E)
# ----------------------------------------------------------------------

def test_pointer_collection_finds_data_slot_targets(rich_binary):
    result = disassemble(rich_binary)
    pointers = collect_potential_pointers(rich_binary.image, result)
    for slot_target in rich_binary.plan.data_pointers.values():
        info = rich_binary.ground_truth.by_name(slot_target)
        assert info.address in pointers, slot_target


def test_pointer_validation_accepts_indirect_only_functions(rich_binary):
    image = rich_binary.image
    result = disassemble(rich_binary)
    detected = set(result.functions) | result.call_targets
    accepted = 0
    for info in rich_binary.ground_truth.functions:
        if info.reachable_via == "indirect" and not info.has_fde and not info.violates_callconv:
            assert validate_function_pointer(image, info.address, result, detected), info.name
            accepted += 1
    assert accepted >= 0  # presence depends on the fixture's RNG draw


def test_pointer_validation_rejects_existing_and_mid_instruction_addresses(rich_binary):
    image = rich_binary.image
    result = disassemble(rich_binary)
    detected = set(result.functions) | result.call_targets
    some_start = next(iter(result.functions))
    assert not validate_function_pointer(image, some_start, result, detected)
    # One byte into an existing instruction stream is an overlap error.
    function = result.functions[some_start]
    insn = next(i for i in function.instructions.values() if i.size >= 2)
    assert not validate_function_pointer(image, insn.address + 1, result, detected)


def test_pointer_validation_rejects_data_blobs(rich_binary):
    image = rich_binary.image
    result = disassemble(rich_binary)
    detected = set(result.functions) | result.call_targets
    gaps = compute_gaps(image, result)
    # Candidate addresses inside gap blobs should overwhelmingly be rejected.
    rejected = accepted = 0
    for start, end in gaps:
        middle = start + (end - start) // 2
        if validate_function_pointer(image, middle, result, detected):
            accepted += 1
        else:
            rejected += 1
    assert rejected > accepted


# ----------------------------------------------------------------------
# Prologue matching and linear scan
# ----------------------------------------------------------------------

def test_prologue_matching_stays_inside_gaps(rich_binary):
    result = disassemble(rich_binary)
    gaps = compute_gaps(rich_binary.image, result)
    matches = match_prologues(rich_binary.image, gaps)
    for address in matches:
        assert any(start <= address < end for start, end in gaps)


def test_linear_scan_reports_starts_inside_gaps_only(rich_binary):
    result = disassemble(rich_binary)
    gaps = compute_gaps(rich_binary.image, result)
    starts = linear_scan_gaps(rich_binary.image, gaps)
    truth = rich_binary.ground_truth.function_starts
    for address in starts:
        assert any(start <= address < end for start, end in gaps)
    # Linear scanning of gaps must produce at least some spurious starts
    # (that is the entire point of §IV-D).
    assert starts - truth


# ----------------------------------------------------------------------
# Stack height analysis (Table IV machinery)
# ----------------------------------------------------------------------

def _reference_heights(binary, function, fde):
    table = build_cfa_table(fde)
    return {
        address: table.stack_height_at(address)
        for address in function.instructions
        if fde.covers(address)
    }


def test_stack_height_analysis_matches_cfi_on_simple_functions(plain_binary):
    image = plain_binary.image
    result = disassemble(plain_binary)
    fdes = {f.pc_begin: f for f in image.fdes}
    analysis = StackHeightAnalysis("dyninst")
    compared = 0
    for info in plain_binary.ground_truth.functions:
        if info.frame != "rsp" or not info.has_fde or info.kind != "normal":
            continue
        function = result.functions.get(info.address)
        fde = fdes.get(info.address)
        if function is None or fde is None:
            continue
        table = build_cfa_table(fde)
        if not table.has_complete_stack_height:
            continue
        heights = analysis.analyze(function)
        reference = _reference_heights(plain_binary, function, fde)
        for address, expected in reference.items():
            observed = heights.get(address)
            if observed is not None:
                assert observed == expected, (info.name, hex(address))
                compared += 1
    assert compared > 50


def test_angr_flavor_gives_up_on_indirect_jumps(rich_binary):
    result = disassemble(rich_binary)
    truth = rich_binary.ground_truth
    table_plans = [p for p in rich_binary.plan.functions if p.jump_table_cases]
    assert table_plans
    analysis = StackHeightAnalysis("angr")
    info = truth.by_name(table_plans[0].name)
    function = result.functions[info.address]
    heights = analysis.analyze(function)
    assert all(value is None for value in heights.values())


def test_stack_height_unknown_after_untracked_writes():
    from repro.analysis.result import DisassembledFunction
    from repro.x86.assembler import Assembler
    from repro.x86.disassembler import decode_instruction
    from repro.x86.registers import RBP, RSP

    asm = Assembler()
    blob = asm.push(RBP) + asm.mov_rr(RBP, RSP) + asm.sub_ri(RSP, 32) + asm.leave() + asm.ret()
    function = DisassembledFunction(start=0x1000)
    offset = 0
    while offset < len(blob):
        insn = decode_instruction(blob, offset, 0x1000 + offset)
        function.instructions[insn.address] = insn
        offset += insn.size
    heights = StackHeightAnalysis("dyninst").analyze(function)
    # Known before `leave`, unknown after (the frame-pointer epilogue is not
    # modelled by the static analysis — the imperfection Table IV quantifies).
    assert heights[0x1000] == 0
    assert heights[0x1000 + 1] == 8
    ret_address = max(function.instructions)
    assert heights[ret_address] is None


# ----------------------------------------------------------------------
# ROP gadget counting
# ----------------------------------------------------------------------

def test_gadget_counting_finds_ret_terminated_sequences(plain_binary):
    image = plain_binary.image
    counted = 0
    for info in plain_binary.ground_truth.functions:
        if info.kind == "normal":
            counted += count_rop_gadgets(image, info.address, window=256)
    assert counted > 0


def test_gadget_counting_zero_without_ret(plain_binary):
    image = plain_binary.image
    info = plain_binary.ground_truth.by_name("exit_impl")
    assert count_rop_gadgets(image, info.address, window=8) == 0
