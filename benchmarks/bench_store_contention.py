"""Artifact-store contention — N processes hammering one store.

Forks ``REPRO_BENCH_CONTENTION_WRITERS`` writer processes (default 4) that
concurrently drive mixed ``put_blob`` / ``save_result`` / ``save_detection``
traffic into one shared store, with a deliberately tiny index-journal
budget so compaction races the appenders.  The parent then audits every
write: each blob, detector result and detection record must load back
byte-intact, and the manifest index must account for every unique entry —
**zero lost and zero corrupt entries** is an assertion, not a statistic.

``BENCH_store_contention.json`` records aggregate write throughput and the
p50/p90/p99 of the per-acquisition cross-process lock waits (the store's
:attr:`lock_waits` samples, pooled across writers).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from pathlib import Path

from repro.eval.metrics import BinaryMetrics
from repro.store import ArtifactStore, blob_digest

BENCH_DIRECTORY = Path(__file__).resolve().parent.parent

_WRITERS = max(2, int(os.environ.get("REPRO_BENCH_CONTENTION_WRITERS", "4")))
_OPS = max(9, int(os.environ.get("REPRO_BENCH_CONTENTION_OPS", "60")))
#: tiny journal budget: compaction must trigger repeatedly under load
_JOURNAL_LIMIT = 4096


class _StubBinary:
    """A digest-only stand-in for :class:`SyntheticBinary`.

    ``save_result`` keys on the binary's content digest, memoized on the
    ``_store_elf_digest`` attribute — carrying the digest directly lets the
    benchmark measure store contention without synthesising real ELFs.
    """

    def __init__(self, name: str, payload: bytes):
        self.name = name
        self._store_elf_digest = blob_digest(payload)


def _blob_payload(writer: int, op: int) -> bytes:
    return f"contention-blob {writer}:{op} ".encode() * 64


def _metrics_for(writer: int, op: int) -> BinaryMetrics:
    return BinaryMetrics(
        binary_name=f"writer{writer}-op{op}",
        true_count=op + 1,
        detected_count=op,
        false_positives={writer},
        false_negatives={op},
        cold_part_false_positives=set(),
    )


def _detection_record(writer: int, op: int) -> dict:
    return {
        "path": f"writer{writer}/op{op}",
        "detector": "fetch",
        "function_starts": [0x1000 + op, 0x2000 + writer],
        "stages": {"fde": [0x1000 + op]},
        "removed_by_stage": {},
        "merged_parts": {},
    }


def _writer(root: str, writer: int, ops: int, out_path: str) -> None:
    """One writer process: mixed traffic, then dump its lock-wait samples."""
    store = ArtifactStore(root, journal_limit_bytes=_JOURNAL_LIMIT)
    start = time.perf_counter()
    for op in range(ops):
        kind = op % 3
        if kind == 0:
            store.put_blob(_blob_payload(writer, op))
        elif kind == 1:
            stub = _StubBinary(f"writer{writer}-op{op}", _blob_payload(writer, op))
            store.save_result(stub, "fetch", "bench-options", _metrics_for(writer, op))
        else:
            key = store.detection_key(
                blob_digest(_blob_payload(writer, op)), "fetch", "bench-options"
            )
            store.save_detection(key, _detection_record(writer, op))
    seconds = time.perf_counter() - start
    Path(out_path).write_text(
        json.dumps({"seconds": seconds, "lock_waits": store.lock_waits})
    )


def _percentile(samples: list[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _audit(store: ArtifactStore, writers: int, ops: int) -> tuple[int, int]:
    """Verify every write survived intact; returns (checked, unique_keys)."""
    unique: set[tuple[str, str]] = set()
    checked = 0
    for writer in range(writers):
        for op in range(ops):
            payload = _blob_payload(writer, op)
            kind = op % 3
            if kind == 0:
                assert store.get_blob(blob_digest(payload)) == payload, (
                    f"blob {writer}:{op} lost or corrupt"
                )
                unique.add(("objects", blob_digest(payload)))
            elif kind == 1:
                stub = _StubBinary(f"writer{writer}-op{op}", payload)
                loaded = store.load_result(stub, "fetch", "bench-options")
                assert loaded == _metrics_for(writer, op), (
                    f"result {writer}:{op} lost or corrupt"
                )
                unique.add(
                    ("results", store._result_key(stub, "fetch", "bench-options"))
                )
            else:
                key = store.detection_key(
                    blob_digest(payload), "fetch", "bench-options"
                )
                loaded = store.load_detection(key)
                assert loaded is not None, f"detection {writer}:{op} lost"
                assert loaded["path"] == f"writer{writer}/op{op}", (
                    f"detection {writer}:{op} corrupt"
                )
                unique.add(("detections", key))
            checked += 1
    return checked, len(unique)


def test_store_contention(tmp_path_factory, report_writer):
    directory = tmp_path_factory.mktemp("store-contention")
    root = directory / "store"

    context = multiprocessing.get_context("fork")
    outputs = [str(directory / f"writer-{index}.json") for index in range(_WRITERS)]
    processes = [
        context.Process(target=_writer, args=(str(root), index, _OPS, outputs[index]))
        for index in range(_WRITERS)
    ]
    wall_start = time.perf_counter()
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
    wall_seconds = time.perf_counter() - wall_start
    assert all(process.exitcode == 0 for process in processes), (
        f"writer crashed: {[process.exitcode for process in processes]}"
    )

    lock_waits: list[float] = []
    writer_seconds: list[float] = []
    for out_path in outputs:
        payload = json.loads(Path(out_path).read_text())
        lock_waits.extend(payload["lock_waits"])
        writer_seconds.append(payload["seconds"])

    store = ArtifactStore(root)
    checked, unique_keys = _audit(store, _WRITERS, _OPS)
    assert checked == _WRITERS * _OPS

    # the index must account for every unique entry without a tree walk
    assert store.index.has_data()
    indexed = store.index.entries()
    tree = {(namespace, key) for namespace, key, *_ in store.backend.iter_entries()}
    assert set(indexed) == tree, "index drifted from the object tree"

    total_ops = _WRITERS * _OPS
    record = {
        "bench": "store_contention",
        "created_unix": round(time.time(), 3),
        "writers": _WRITERS,
        "ops_per_writer": _OPS,
        "unique_entries": unique_keys,
        "lost_entries": 0,
        "corrupt_entries": 0,
        "timings_seconds": {
            "wall": round(wall_seconds, 6),
            "slowest_writer": round(max(writer_seconds), 6),
        },
        "throughput_ops_per_second": round(total_ops / wall_seconds, 3),
        "lock_waits": {
            "acquisitions": len(lock_waits),
            "p50_seconds": round(_percentile(lock_waits, 0.50), 6),
            "p90_seconds": round(_percentile(lock_waits, 0.90), 6),
            "p99_seconds": round(_percentile(lock_waits, 0.99), 6),
            "max_seconds": round(max(lock_waits), 6) if lock_waits else 0.0,
        },
        "index": store.index.stats(),
    }
    path = BENCH_DIRECTORY / "BENCH_store_contention.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    report_writer(
        "store_contention",
        "\n".join(
            [
                "Artifact store — multi-process write contention",
                f"  writers x ops      : {_WRITERS} x {_OPS} = {total_ops}",
                f"  unique entries     : {unique_keys} (0 lost, 0 corrupt)",
                f"  wall time          : {wall_seconds:.3f}s "
                f"({total_ops / wall_seconds:.0f} ops/s)",
                f"  lock acquisitions  : {len(lock_waits)}",
                "  lock wait p50/p90/p99: "
                f"{_percentile(lock_waits, 0.5) * 1000:.2f} / "
                f"{_percentile(lock_waits, 0.9) * 1000:.2f} / "
                f"{_percentile(lock_waits, 0.99) * 1000:.2f} ms",
            ]
        ),
    )
