"""Table III — FETCH against the eight baseline tools, per optimisation level."""

from repro.eval import run_tool_comparison
from repro.eval.tables import render_table3


def test_table3_tool_comparison(benchmark, selfbuilt_corpus, report_writer):
    results = benchmark.pedantic(
        run_tool_comparison, args=(selfbuilt_corpus,), rounds=1, iterations=1
    )
    report_writer("table3_comparison", render_table3(results))

    average = results["Avg."]
    fetch = average["fetch"]
    # FETCH has the lowest combined error of all tools, and its error counts
    # are a tiny fraction of the function population (paper: best in every
    # column except Ofast accuracy).
    fetch_error = fetch.false_positives + fetch.false_negatives
    for name, cell in average.items():
        if name == "fetch":
            continue
        assert fetch_error <= cell.false_positives + cell.false_negatives, name
    assert fetch_error <= 0.01 * fetch.functions
    # The pattern-based tools show the paper's characteristic error profile:
    # BAP worst on false positives, the FDE-based tools (ghidra/angr) close to
    # FETCH on coverage but carrying the FDE cold-part false positives, which
    # FETCH alone fixes.
    assert average["bap"].false_positives >= average["ida"].false_positives
    assert average["ghidra"].false_positives >= fetch.false_positives
    assert average["angr"].false_positives >= fetch.false_positives
    assert average["angr"].false_negatives <= average["dyninst"].false_negatives
