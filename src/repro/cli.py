"""Command-line interface: ``fetch-detect``.

Analyses one or more x86-64 ELF binaries with any registered detector
(FETCH by default) and prints the detected function starts, optionally
comparing them against each binary's symbol table.  With several binaries,
``--jobs N`` / ``--workers N`` analyse them in parallel; output stays in
argument order.  ``--json`` switches to machine-readable output (per-binary
starts, per-stage attribution, timings); the default text output is
unchanged.  With a store (``--store`` or ``REPRO_STORE_DIR``), detection
runs are cached by file content and reused.

``fetch-detect corpus build|info`` manages the content-addressed corpus
store used by the evaluation stack, and ``fetch-detect store
gc|stats|migrate`` maintains the store itself: size/age-budgeted garbage
collection, index-backed statistics (no tree walk) and on-disk layout
migration.  ``fetch-detect serve`` runs the
persistent detection service over a stdin/stdout JSON-lines protocol (see
:mod:`repro.service.protocol`), and ``fetch-detect submit`` is its one-shot
batch client: it submits paths through a :class:`DetectionService`, streams
results as they complete and reports the run's cache hit/miss counters — a
warm re-submission of an already-evaluated corpus performs zero detector
invocations.  ``fetch-detect profile`` runs one cold detection under
cProfile and prints the hottest functions (see :mod:`repro.eval.profiling`).
"""

from __future__ import annotations

import argparse
import functools
import json
import os
import sys
import time

from repro.core import AnalysisContext, FetchOptions
from repro.core.registry import create_detector, detector_info, detectors
from repro.elf.image import BinaryImage
from repro.eval.executor import parallel_map
from repro.store import ArtifactStore, blob_digest, options_digest


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fetch-detect",
        description=(
            "Detect function starts in an x86-64 System-V ELF binary using "
            "exception-handling information (FETCH, DSN 2021)."
        ),
        epilog=(
            "corpus store management: 'fetch-detect corpus build|info'; "
            "store maintenance: 'fetch-detect store gc|stats|migrate'; "
            "persistent detection service: 'fetch-detect serve' (JSON-lines "
            "protocol) and 'fetch-detect submit' (one-shot batch client); "
            "cold-path profiling: 'fetch-detect profile <binary>'"
        ),
    )
    parser.add_argument(
        "binary", nargs="?", help="path to the ELF binary to analyse"
    )
    parser.add_argument(
        "more_binaries",
        nargs="*",
        metavar="binary",
        help="additional binaries to analyse (see --jobs)",
    )
    parser.add_argument(
        "--detector",
        default="fetch",
        metavar="NAME",
        help="registered detector to run (default: fetch; see --list-detectors)",
    )
    parser.add_argument(
        "--list-detectors",
        action="store_true",
        help="list the registered detectors and exit",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyse up to N binaries in parallel threads (default: 1)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "analyse up to N binaries in parallel worker processes "
            "(bypasses the GIL; takes precedence over --jobs)"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON document instead of text",
    )
    parser.add_argument(
        "--store",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help=(
            "cache detection results in an artifact store (default directory "
            "from REPRO_STORE_DIR, else .repro-store)"
        ),
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="disable the artifact store even when REPRO_STORE_DIR is set",
    )
    parser.add_argument(
        "--no-recursion",
        action="store_true",
        help="only report FDE PC-Begin addresses (the paper's Q1 baseline)",
    )
    parser.add_argument(
        "--no-xref",
        action="store_true",
        help="skip function-pointer collection and validation",
    )
    parser.add_argument(
        "--no-tailcall",
        action="store_true",
        help="skip Algorithm 1 (tail-call detection and part merging)",
    )
    parser.add_argument(
        "--use-symbols",
        action="store_true",
        help="also seed detection from function symbols when present",
    )
    parser.add_argument(
        "--compare-symbols",
        action="store_true",
        help="report agreement between detected starts and function symbols",
    )
    parser.add_argument(
        "--stages",
        action="store_true",
        help="show which pipeline stage contributed each detection",
    )
    _add_faults_argument(parser)
    return parser


def _add_faults_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "install a deterministic fault-injection plan, e.g. "
            "'seed=7;detect:raise:rate=0.2,max=5;worker:kill:rate=0.1' "
            "(also honoured from REPRO_FAULTS; see repro.resilience.faults)"
        ),
    )


def _apply_faults(args: argparse.Namespace, parser: argparse.ArgumentParser) -> None:
    """Install the ``--faults`` plan (validated; bad specs are usage errors)."""
    spec = getattr(args, "faults", None)
    if not spec:
        return
    from repro.resilience import faults

    try:
        faults.install(spec)
    except ValueError as error:
        parser.error(f"--faults: {error}")


def _make_detector(args: argparse.Namespace):
    """Instantiate the requested detector (FETCH honours the stage flags)."""
    if args.detector == "fetch":
        options = FetchOptions(
            use_symbols=args.use_symbols,
            use_recursion=not args.no_recursion,
            use_pointer_validation=not args.no_xref,
            use_tail_call_analysis=not args.no_tailcall,
        )
        return create_detector("fetch", options)
    return create_detector(args.detector)


def _resolve_store(args: argparse.Namespace) -> ArtifactStore | None:
    """The artifact store selected by ``--store``/``--no-store``/environment."""
    if args.no_store:
        return None
    if args.store is not None:
        return ArtifactStore(args.store or None)
    if os.environ.get("REPRO_STORE_DIR"):
        return ArtifactStore()
    return None


def _analyse_one(path: str, args: argparse.Namespace) -> tuple[int, list[str], list[str], dict]:
    """Analyse ``path``; returns (exit code, stdout lines, stderr lines, record)."""
    out: list[str] = []
    err: list[str] = []
    record: dict = {"path": path, "detector": args.detector}
    timings: dict[str, float] = {}
    record["timings_seconds"] = timings

    start = time.perf_counter()
    try:
        with open(path, "rb") as stream:
            data = stream.read()
        image = BinaryImage.from_bytes(data, name=path)
    except (OSError, ValueError) as error:
        err.append(f"error: cannot load {path}: {error}")
        record["error"] = str(error)
        return 1, out, err, record
    timings["load"] = time.perf_counter() - start

    warnings: list[str] = []
    if not image.has_eh_frame:
        warnings.append(
            "warning: binary has no .eh_frame section; FDE-based detection "
            "will find nothing"
        )
    err.extend(warnings)
    record["warnings"] = warnings

    detector = _make_detector(args)
    store = _resolve_store(args)
    detection_key = None
    cached = None
    if store is not None:
        # shared with the detection service: a corpus analysed here is warm
        # for `fetch-detect submit` and vice versa
        detection_key = store.detection_key(
            blob_digest(data), args.detector, options_digest(detector)
        )
        cached = store.load_detection(detection_key)

    start = time.perf_counter()
    if cached is not None:
        starts = cached["function_starts"]
        stages = cached["stages"]
        removed = cached["removed_by_stage"]
        merged = {int(part): parent for part, parent in cached["merged_parts"].items()}
    else:
        result = detector.detect(image, AnalysisContext(image))
        starts = sorted(result.function_starts)
        stages = {name: sorted(added) for name, added in result.added_by_stage.items()}
        removed = {name: sorted(gone) for name, gone in result.removed_by_stage.items()}
        merged = dict(result.merged_parts)
        if store is not None and detection_key is not None:
            store.save_detection(
                detection_key,
                {
                    "path": path,
                    "detector": args.detector,
                    "function_starts": starts,
                    "stages": stages,
                    "removed_by_stage": removed,
                    "merged_parts": {str(part): parent for part, parent in merged.items()},
                },
            )
    timings["detect"] = time.perf_counter() - start

    record.update(
        {
            "cached": cached is not None,
            "count": len(starts),
            "function_starts": list(starts),
            "stages": stages,
            "removed_by_stage": removed,
            "merged_parts": {hex(part): hex(parent) for part, parent in sorted(merged.items())},
        }
    )
    symbol_comparison: dict[str, int] | None = None
    if args.compare_symbols and image.has_symbols:
        symbol_starts = {s.address for s in image.function_symbols}
        detected = set(starts)
        symbol_comparison = {
            "symbol_count": len(symbol_starts),
            "detected_count": len(detected),
            "symbols_not_detected": len(symbol_starts - detected),
            "detected_not_in_symbols": len(detected - symbol_starts),
        }
        record["symbols"] = symbol_comparison

    if not args.json:
        out.extend(_render_text(path, starts, stages, merged, args, symbol_comparison))
    return 0, out, err, record


def _render_text(
    path: str,
    starts: list[int],
    stages: dict[str, list[int]],
    merged_parts: dict[int, int],
    args: argparse.Namespace,
    symbol_comparison: dict[str, int] | None,
) -> list[str]:
    lines: list[str] = []
    lines.append(f"# {len(starts)} function starts detected in {path}")
    stage_of: dict[int, str] = {}
    if args.stages:
        for stage, added in stages.items():
            for address in added:
                stage_of.setdefault(address, stage)
    for address in starts:
        if args.stages:
            lines.append(f"{address:#x}\t{stage_of.get(address, '?')}")
        else:
            lines.append(f"{address:#x}")

    if merged_parts:
        lines.append(f"# merged {len(merged_parts)} non-contiguous part(s):")
        for part, parent in sorted(merged_parts.items()):
            lines.append(f"#   {part:#x} -> part of function {parent:#x}")

    if symbol_comparison is not None:
        lines.append(
            f"# symbols: {symbol_comparison['symbol_count']}, "
            f"detected: {symbol_comparison['detected_count']}"
        )
        lines.append(
            f"#   symbols not detected : {symbol_comparison['symbols_not_detected']}"
        )
        lines.append(
            f"#   detected not in symbols: {symbol_comparison['detected_not_in_symbols']}"
        )
    return lines


def _render_detector_list() -> list[str]:
    lines = [f"{'name':<12} {'options':<16} {'eh_frame':>8} {'cet':>4}  description"]
    for info in detectors():
        options = info.options_cls.__name__ if info.options_cls else "-"
        lines.append(
            f"{info.name:<12} {options:<16} "
            f"{'yes' if info.needs_eh_frame else 'no':>8} "
            f"{'yes' if info.cet_aware else 'no':>4}  {info.description}"
        )
    return lines


#: second-level words that route a two-word subcommand family
_SUBCOMMAND_WORDS = {
    "corpus": ("build", "info", "-h", "--help"),
    "store": ("gc", "stats", "migrate", "-h", "--help"),
}


def _subcommand(argv: list[str]) -> str | None:
    """The subcommand ``argv`` invokes
    (``corpus``/``store``/``serve``/``submit``/``profile``), if any.

    A binary that happens to be *named* like a subcommand can still be
    analysed: an existing file of that name wins, the subcommand routes
    only otherwise.  For ``corpus`` and ``store``, additionally only a
    recognised subcommand word after it routes there.
    """
    if not argv or argv[0] not in ("corpus", "store", "serve", "submit", "profile"):
        return None
    word, rest = argv[0], argv[1:]
    if word in _SUBCOMMAND_WORDS:
        if rest and rest[0] in _SUBCOMMAND_WORDS[word]:
            return word
        # bare "fetch-detect corpus|store": prefer an existing file of that
        # name, otherwise show the subcommand usage error
        return word if not rest and not os.path.exists(word) else None
    return word if not os.path.exists(word) else None


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    subcommand = _subcommand(argv)
    if subcommand == "corpus":
        return corpus_main(argv[1:])
    if subcommand == "store":
        return store_main(argv[1:])
    if subcommand == "serve":
        return serve_main(argv[1:])
    if subcommand == "submit":
        return submit_main(argv[1:])
    if subcommand == "profile":
        return profile_main(argv[1:])

    parser = build_parser()
    args = parser.parse_args(argv)
    _apply_faults(args, parser)

    if args.list_detectors:
        for line in _render_detector_list():
            print(line)
        return 0
    if args.binary is None:
        parser.error("the following arguments are required: binary")
    try:
        detector_info(args.detector)
    except KeyError as error:
        parser.error(str(error))

    paths = [args.binary, *args.more_binaries]
    analyse = functools.partial(_analyse_one, args=args)
    outcomes = parallel_map(
        analyse, paths, jobs=max(1, args.jobs), workers=max(0, args.workers)
    )

    status = 0
    records = []
    for code, out, err, record in outcomes:
        status = max(status, code)
        records.append(record)
        for line in err:
            print(line, file=sys.stderr)
        if not args.json:
            for line in out:
                print(line)
    if args.json:
        print(json.dumps({"binaries": records, "status": status}, indent=2, sort_keys=True))
    return status


# ----------------------------------------------------------------------
# fetch-detect corpus build|info
# ----------------------------------------------------------------------

def build_corpus_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fetch-detect corpus",
        description="Build and inspect the content-addressed corpus store.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    build = subparsers.add_parser(
        "build", help="build a corpus and persist it in the store"
    )
    build.add_argument(
        "--kind",
        choices=("scenario-matrix", "selfbuilt", "wild"),
        default="scenario-matrix",
        help="which corpus to build (default: scenario-matrix)",
    )
    build.add_argument("--seed", type=int, default=2021)
    build.add_argument("--scale", type=float, default=1.0)
    build.add_argument(
        "--programs", type=int, default=4, help="binaries per scenario row"
    )
    build.add_argument(
        "--max-binaries", type=int, default=None, help="cap the corpus size"
    )
    build.add_argument("--store", default=None, metavar="DIR")

    info = subparsers.add_parser("info", help="list the corpora in the store")
    info.add_argument("--store", default=None, metavar="DIR")
    return parser


def corpus_main(argv: list[str]) -> int:
    args = build_corpus_parser().parse_args(argv)
    store = ArtifactStore(args.store) if args.store else ArtifactStore()

    if args.command == "info":
        manifests = store.corpus_manifests()
        print(f"# store {store.root} — {len(manifests)} corpus manifest(s)")
        for manifest in manifests:
            binaries = manifest.get("binaries", [])
            functions = sum(
                len(row["ground_truth"]["functions"]) for row in binaries
            )
            params = manifest.get("params", {})
            brief = ", ".join(
                f"{key}={params[key]}"
                for key in ("scenario", "seed", "scale", "programs", "max_binaries")
                if key in params and params[key] is not None
            )
            print(
                f"{manifest['key'][:12]}  {manifest.get('kind', '?'):<16} "
                f"{len(binaries):>4} binaries {functions:>6} functions  [{brief}]"
            )
        return 0

    from repro.synth import (
        build_scenario_matrix_corpora,
        build_selfbuilt_corpus,
        build_wild_corpus,
    )

    before = store.stats_snapshot()
    if args.kind == "scenario-matrix":
        corpora = build_scenario_matrix_corpora(
            seed=args.seed, scale=args.scale, programs=args.programs, store=store
        )
        rows = {name: len(binaries) for name, binaries in corpora.items()}
    elif args.kind == "selfbuilt":
        corpus = build_selfbuilt_corpus(
            seed=args.seed, scale=args.scale, max_binaries=args.max_binaries, store=store
        )
        rows = {"selfbuilt": len(corpus)}
    else:
        corpus = build_wild_corpus(
            seed=args.seed, scale=args.scale, max_binaries=args.max_binaries, store=store
        )
        rows = {"wild": len(corpus)}
    after = store.stats_snapshot()

    reused = after["corpus_hits"] - before["corpus_hits"]
    built = after["corpus_misses"] - before["corpus_misses"]
    for name, count in rows.items():
        print(f"{name}: {count} binaries")
    print(f"# store {store.root}: {reused} corpus manifest(s) reused, {built} built")
    return 0


# ----------------------------------------------------------------------
# fetch-detect store gc|stats|migrate
# ----------------------------------------------------------------------

def build_store_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fetch-detect store",
        description=(
            "Maintain an artifact store: garbage-collect by age/size budget, "
            "report index-backed statistics, migrate the on-disk layout."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    gc = subparsers.add_parser(
        "gc", help="evict derived artifacts by age and/or size budget"
    )
    gc.add_argument("--store", default=None, metavar="DIR")
    gc.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="evict oldest evictable entries until the footprint fits N bytes",
    )
    gc.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        metavar="D",
        help="evict evictable entries not written for more than D days",
    )
    gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be evicted without deleting anything",
    )
    gc.add_argument("--json", action="store_true")

    stats = subparsers.add_parser(
        "stats", help="report store statistics from the index (no tree walk)"
    )
    stats.add_argument("--store", default=None, metavar="DIR")
    stats.add_argument(
        "--rebuild",
        action="store_true",
        help="rebuild the index from the object tree first (one slow walk)",
    )
    stats.add_argument("--json", action="store_true")

    migrate = subparsers.add_parser(
        "migrate",
        help=(
            "migrate the on-disk layout to the current version and rebuild "
            "the index (keys are unchanged: every cached artifact stays warm)"
        ),
    )
    migrate.add_argument("--store", default=None, metavar="DIR")
    migrate.add_argument("--json", action="store_true")
    return parser


def store_main(argv: list[str]) -> int:
    args = build_store_parser().parse_args(argv)
    store = ArtifactStore(args.store) if args.store else ArtifactStore()

    if args.command == "migrate":
        report = store.migrate()
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(
                f"# store {store.root}: layout "
                f"v{report['from_layout']} -> v{report['to_layout']}, "
                f"{report['moved']} file(s) moved, "
                f"{report['already_placed']} already placed, "
                f"{report['entries']} indexed"
            )
        return 0

    if args.command == "stats":
        if args.rebuild:
            store.rebuild_index()
        elif not store.index.has_data():
            # a pre-index (legacy) store: build the index once so stats
            # answer from it — and keep answering from it next time
            store.rebuild_index()
        description = store.describe()
        if args.json:
            print(json.dumps(description, indent=2, sort_keys=True))
            return 0
        index = description["index"]
        print(
            f"# store {store.root} (layout v{description['layout']}): "
            f"{index['entries']} entries, {index['bytes']} bytes"
        )
        for namespace, bucket in sorted(index["namespaces"].items()):
            print(
                f"{namespace:<12} {bucket['entries']:>8} entries "
                f"{bucket['bytes']:>12} bytes"
            )
        print(
            f"# index: journal {index['journal_bytes']} bytes, "
            f"snapshot {'yes' if index['compacted'] else 'no'}"
        )
        return 0

    max_age_seconds = (
        args.max_age_days * 86400.0 if args.max_age_days is not None else None
    )
    report = store.gc(
        max_bytes=args.max_bytes,
        max_age_seconds=max_age_seconds,
        dry_run=args.dry_run,
    )
    record = report.as_dict()
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    verb = "would evict" if args.dry_run else "evicted"
    print(
        f"# store {store.root}: {verb} {record['evicted']} entries "
        f"({record['evicted_bytes']} bytes), kept {record['kept']} "
        f"({record['kept_bytes']} bytes)"
    )
    for namespace, bucket in sorted(record["by_namespace"].items()):
        print(
            f"{namespace:<12} {verb} {bucket['evicted']:>6} "
            f"({bucket['evicted_bytes']} bytes), kept {bucket['kept']}"
        )
    return 0


# ----------------------------------------------------------------------
# fetch-detect profile — cProfile the cold detection path
# ----------------------------------------------------------------------

def build_profile_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fetch-detect profile",
        description=(
            "Run one cold detection of a binary under cProfile and print the "
            "hottest functions — the driver used to pick (and verify) the "
            "cold-path optimisation targets."
        ),
    )
    parser.add_argument("binary", help="path to the ELF binary to profile")
    parser.add_argument(
        "--detector",
        default="fetch",
        metavar="NAME",
        help="registered detector to profile (default: fetch)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=25,
        metavar="N",
        help="number of functions to print (default: 25)",
    )
    parser.add_argument(
        "--sort",
        choices=("cumulative", "tottime", "calls"),
        default="cumulative",
        help="pstats sort order (default: cumulative)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the top-N hotspots as a JSON record instead of the "
             "pstats table (ncalls / tottime / cumtime per function)",
    )
    return parser


def profile_main(argv: list[str]) -> int:
    from repro.eval.profiling import (
        profile_cold_detection,
        profile_cold_detection_record,
    )

    parser = build_profile_parser()
    args = parser.parse_args(argv)
    try:
        detector_info(args.detector)
    except KeyError as error:
        parser.error(str(error))
    try:
        with open(args.binary, "rb") as stream:
            data = stream.read()
    except OSError as error:
        print(f"error: cannot load {args.binary}: {error}", file=sys.stderr)
        return 1
    try:
        if args.json:
            record = profile_cold_detection_record(
                data,
                name=args.binary,
                detector=args.detector,
                top=args.top,
                sort=args.sort,
            )
            print(json.dumps(record, indent=2))
            return 0
        report = profile_cold_detection(
            data,
            name=args.binary,
            detector=args.detector,
            top=args.top,
            sort=args.sort,
        )
    except ValueError as error:
        print(f"error: cannot analyse {args.binary}: {error}", file=sys.stderr)
        return 1
    print(report, end="")
    return 0


# ----------------------------------------------------------------------
# fetch-detect serve / submit — the persistent detection service
# ----------------------------------------------------------------------

def _add_service_arguments(parser: argparse.ArgumentParser) -> None:
    """The service knobs shared by ``serve`` and ``submit``."""
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="long-lived worker threads in the service pool (default: 2)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        metavar="N",
        help="max binaries queued or running at once; 0 = unbounded (default: 256)",
    )
    parser.add_argument(
        "--backpressure",
        choices=("block", "reject"),
        default="block",
        help=(
            "what a full queue does to a submission: admit entries as "
            "capacity frees (block) or refuse the whole batch (reject)"
        ),
    )
    parser.add_argument("--store", nargs="?", const="", default=None, metavar="DIR")
    parser.add_argument("--no-store", action="store_true")
    _add_faults_argument(parser)


def _make_service(args: argparse.Namespace):
    from repro.service import DetectionService

    return DetectionService(
        workers=max(1, args.workers),
        queue_limit=max(0, args.queue_limit),
        backpressure=args.backpressure,
        store=_resolve_store(args),
    )


def _parse_endpoint(value: str, parser: argparse.ArgumentParser, flag: str) -> tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        parser.error(f"{flag} expects HOST:PORT, got {value!r}")
    return host, int(port)


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fetch-detect serve",
        description=(
            "Run the persistent detection service over a stdin/stdout "
            "JSON-lines protocol (one request per input line, one event per "
            "output line; see repro.service.protocol for the schema), or — "
            "with --tcp HOST:PORT — as a multi-client network server "
            "(one session per connection, same protocol on every line)."
        ),
    )
    parser.add_argument(
        "--tcp",
        default=None,
        metavar="HOST:PORT",
        help="serve many concurrent clients on a TCP socket (PORT 0 = ephemeral)",
    )
    parser.add_argument(
        "--token",
        default=None,
        metavar="SECRET",
        help="require a shared-token handshake ({'op': 'auth', ...}) per connection",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="close a TCP connection after this long without a request",
    )
    parser.add_argument(
        "--submit-quota",
        type=int,
        default=0,
        metavar="N",
        help="max submissions per connection; 0 = unlimited (default)",
    )
    parser.add_argument(
        "--max-line-bytes",
        type=int,
        default=None,
        metavar="N",
        help="reject request lines longer than this (default: 1 MiB)",
    )
    _add_service_arguments(parser)
    return parser


def serve_main(argv: list[str]) -> int:
    from repro.service import DEFAULT_MAX_LINE_BYTES, DetectionServer, ServeSession

    parser = build_serve_parser()
    args = parser.parse_args(argv)
    _apply_faults(args, parser)
    if args.tcp is None:
        with _make_service(args) as service:
            return ServeSession(service, sys.stdin, sys.stdout).run()

    host, port = _parse_endpoint(args.tcp, parser, "--tcp")
    with _make_service(args) as service:
        server = DetectionServer(
            service,
            host,
            port,
            auth_token=args.token,
            idle_timeout=args.idle_timeout,
            submit_quota=max(0, args.submit_quota),
            max_line_bytes=args.max_line_bytes or DEFAULT_MAX_LINE_BYTES,
        )
        try:
            host, port = server.start()
            print(f"listening on {host}:{port}", flush=True)
            while True:
                time.sleep(1)
        except KeyboardInterrupt:
            print("draining: in-flight jobs finish, new submissions refused",
                  file=sys.stderr)
        finally:
            server.shutdown(drain=True)
    return 0


def build_submit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fetch-detect submit",
        description=(
            "Submit a batch of binaries through the detection service and "
            "stream results as they complete.  The summary reports the "
            "run's cache hit/miss counters: a warm re-submission of an "
            "already-evaluated corpus performs zero detector invocations."
        ),
    )
    parser.add_argument("paths", nargs="+", metavar="binary", help="ELF binaries to analyse")
    parser.add_argument(
        "--detector",
        action="append",
        default=None,
        metavar="NAME",
        help="detector(s) to run, repeatable (default: fetch)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON document instead of text",
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help=(
            "submit to a running 'fetch-detect serve --tcp' server instead "
            "of an in-process service (the service knobs are then ignored)"
        ),
    )
    parser.add_argument(
        "--token",
        default=None,
        metavar="SECRET",
        help="shared auth token for --connect",
    )
    _add_service_arguments(parser)
    return parser


def _submit_remote(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """``fetch-detect submit --connect``: drive a running TCP server."""
    from repro.service import ServerError, ServiceClient

    host, port = _parse_endpoint(args.connect, parser, "--connect")
    records: list[dict] = []
    errors = 0
    try:
        with ServiceClient.connect(host, port, token=args.token) as client:
            job = client.submit(args.paths, detectors=args.detector)
            for event in client.results(job):
                records.append({key: event[key] for key in event if key != "event"})
                if "error" in event:
                    errors += 1
                    print(
                        f"error: {event['name']} [{event['detector']}]: "
                        f"{event['error']}",
                        file=sys.stderr,
                    )
                elif not args.json:
                    cached = " (cached)" if event.get("cached") else ""
                    print(f"{event['name']}\t{event['detector']}\t"
                          f"{event['count']} starts{cached}")
            stats = {
                key: value
                for key, value in client.stats().items()
                if key != "event"
            }
            summary = client.summary(job) or {}
    except (ConnectionError, TimeoutError, ServerError, OSError) as error:
        print(f"error: {type(error).__name__}: {error}", file=sys.stderr)
        return 1

    status = 1 if errors else 0
    if args.json:
        print(json.dumps(
            {"results": records, "stats": stats, "status": status},
            indent=2, sort_keys=True,
        ))
        return status
    print(
        f"# job {job}: {summary.get('ok', 0)}/{summary.get('ok', 0) + summary.get('errors', 0)} "
        f"units ok, {sum(1 for r in records if r.get('cached'))} cached (this batch)"
    )
    return status


def submit_main(argv: list[str]) -> int:
    parser = build_submit_parser()
    args = parser.parse_args(argv)
    _apply_faults(args, parser)
    for name in args.detector or ():
        try:
            detector_info(name)
        except KeyError as error:
            parser.error(str(error))
    if args.connect is not None:
        return _submit_remote(args, parser)

    records: list[dict] = []
    errors = 0
    with _make_service(args) as service:
        job = service.submit(args.paths, detectors=args.detector)
        for result in job.results():
            record = {
                "name": result.name,
                "detector": result.detector,
                "cached": result.cached,
                "count": len(result.function_starts),
                "function_starts": list(result.function_starts),
                "seconds": round(result.seconds, 6),
                "error": result.error,
            }
            records.append(record)
            if not result.ok:
                errors += 1
                print(f"error: {result.name} [{result.detector}]: {result.error}",
                      file=sys.stderr)
            elif not args.json:
                cached = " (cached)" if result.cached else ""
                print(
                    f"{result.name}\t{result.detector}\t"
                    f"{len(result.function_starts)} starts{cached}"
                )
        stats = service.stats()

    status = 1 if errors else 0
    if args.json:
        print(json.dumps(
            {"results": records, "stats": stats, "status": status},
            indent=2, sort_keys=True,
        ))
        return status

    done, total = job.progress()
    print(
        f"# job {job.job_id}: {done - errors}/{total} units ok, "
        f"{stats['cache_hits']} cached, {stats['detector_runs']} detector runs"
    )
    store_stats = stats.get("store")
    if store_stats is not None:
        print(
            "# store: "
            f"{store_stats.get('detection_hits', 0)} detection hits, "
            f"{store_stats.get('detection_misses', 0)} misses"
        )
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
