"""Tests for the resilience substrate: the deterministic fault-injection
plane, the recovery policies, and the supervised execution paths that
consume them (worker pool, process pool, store, detection service)."""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

import pytest

from repro.core.results import DetectionResult
from repro.eval import executor
from repro.eval.executor import ShardedWorkerPool, parallel_map
from repro.resilience import faults
from repro.resilience.faults import FaultInjected, FaultPlan, WorkerKilled
from repro.resilience.policy import (
    CircuitBreaker,
    DetectorTimeout,
    ResilienceConfig,
    RetryPolicy,
    call_with_timeout,
)
from repro.service import DetectionService
from repro.store.locking import FileLock, LockTimeout


@pytest.fixture(autouse=True)
def _no_leaked_faults():
    """Every test leaves the process with no fault plan installed."""
    yield
    faults.uninstall()


# ----------------------------------------------------------------------
# The fault plan and injector
# ----------------------------------------------------------------------

class TestFaultPlan:
    def test_spec_round_trips(self):
        spec = "seed=42;detect:raise:rate=0.3,max=10;worker:kill:rate=0.1;store.lock:delay"
        plan = FaultPlan.parse(spec)
        assert plan.seed == 42
        assert [f.site for f in plan.faults] == ["detect", "worker", "store.lock"]
        assert FaultPlan.parse(plan.render()) == plan

    def test_defaults(self):
        plan = FaultPlan.parse("store.write:torn")
        assert plan.seed == 0
        fault = plan.faults[0]
        assert fault.rate == 1.0 and fault.max_injections == 0

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "seed=5",  # no faults
            "detect",  # no kind
            "detect:explode",  # unknown kind
            "detect:raise:rate=2.0",  # rate out of range
            "detect:raise:volume=11",  # unknown parameter
        ],
    )
    def test_bad_specs_are_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_decisions_are_deterministic_per_seed(self):
        plan = FaultPlan.parse("seed=7;detect:raise:rate=0.4")

        def pattern():
            injector = faults.FaultInjector(plan)
            outcomes = []
            for i in range(64):
                try:
                    injector.fire("detect", f"key{i % 5}")
                    outcomes.append(0)
                except FaultInjected:
                    outcomes.append(1)
            return outcomes

        first, second = pattern(), pattern()
        assert first == second
        assert 1 in first and 0 in first  # a 0.4 rate injects some, not all

        other = faults.FaultInjector(FaultPlan.parse("seed=8;detect:raise:rate=0.4"))
        different = []
        for i in range(64):
            try:
                other.fire("detect", f"key{i % 5}")
                different.append(0)
            except FaultInjected:
                different.append(1)
        assert different != first  # the seed matters

    def test_budget_lets_retries_eventually_succeed(self):
        injector = faults.FaultInjector(FaultPlan.parse("detect:raise:rate=1.0,max=2"))
        failures = 0
        for _ in range(5):
            try:
                injector.fire("detect", "one-key")
            except FaultInjected:
                failures += 1
        assert failures == 2
        assert injector.injection_counts() == {"detect:raise": 2}

    def test_fire_is_noop_without_a_plan(self):
        assert faults.active() is None
        faults.fire("detect", "anything")  # must not raise

    def test_injected_context_restores_previous_plan(self):
        with faults.injected("detect:raise:rate=0.0") as outer:
            assert faults.active() is outer
            with faults.injected("worker:kill:rate=0.0") as inner:
                assert faults.active() is inner
            assert faults.active() is outer
        assert faults.active() is None

    def test_domain_typed_raise(self):
        with faults.injected("store.lock:raise:rate=1.0"):
            with pytest.raises(LockTimeout):
                faults.fire("store.lock", "x", raises=LockTimeout)


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------

class TestRetryPolicy:
    def test_retries_transient_errors_then_succeeds(self):
        policy = RetryPolicy(attempts=3, base_delay=0.0)
        calls = [0]

        def flaky():
            calls[0] += 1
            if calls[0] < 3:
                raise OSError("transient")
            return "ok"

        retries = []
        assert policy.run(flaky, on_retry=lambda n, e: retries.append(n)) == "ok"
        assert calls[0] == 3 and retries == [1, 2]

    def test_gives_up_after_attempts(self):
        policy = RetryPolicy(attempts=2, base_delay=0.0)
        calls = [0]

        def always():
            calls[0] += 1
            raise TimeoutError("still down")

        with pytest.raises(TimeoutError):
            policy.run(always)
        assert calls[0] == 2

    def test_non_retryable_fails_fast(self):
        policy = RetryPolicy(attempts=5, base_delay=0.0)
        calls = [0]

        def fatal():
            calls[0] += 1
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            policy.run(fatal)
        assert calls[0] == 1

    def test_classification(self):
        policy = RetryPolicy()
        assert policy.classify(LockTimeout("contended"))  # satellite contract
        assert policy.classify(FaultInjected("injected"))
        assert policy.classify(OSError("io"))
        assert not policy.classify(DetectorTimeout("budget"))  # deliberate
        assert not policy.classify(RuntimeError("logic"))

    def test_backoff_is_deterministic_exponential_and_capped(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=2.0, max_delay=0.05)
        assert [policy.backoff(n) for n in (1, 2, 3, 4, 5)] == [
            0.01, 0.02, 0.04, 0.05, 0.05,
        ]


class TestTimeout:
    def test_inline_when_disabled(self):
        thread = threading.current_thread().name
        assert call_with_timeout(lambda: threading.current_thread().name, 0) == thread

    def test_fast_call_returns_value(self):
        assert call_with_timeout(lambda: 41 + 1, 5.0) == 42

    def test_errors_propagate(self):
        def boom():
            raise ValueError("from inside")

        with pytest.raises(ValueError, match="from inside"):
            call_with_timeout(boom, 5.0)

    def test_expiry_raises_detector_timeout(self):
        start = time.monotonic()
        with pytest.raises(DetectorTimeout):
            call_with_timeout(lambda: time.sleep(5), 0.05, label="wedged")
        assert time.monotonic() - start < 2.0


class TestCircuitBreaker:
    def test_state_machine(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=2, reset_after=10.0, clock=lambda: clock[0])
        assert breaker.state == "closed" and breaker.allow()

        breaker.record_failure()
        assert breaker.state == "closed"  # one below threshold
        breaker.record_failure()
        assert breaker.state == "open" and breaker.trips == 1
        assert not breaker.allow()

        clock[0] = 10.5
        assert breaker.state == "half-open"
        assert breaker.allow()      # the single probe
        assert not breaker.allow()  # concurrent calls stay blocked

        breaker.record_failure()    # probe failed: re-open
        assert breaker.state == "open" and breaker.trips == 2

        clock[0] = 21.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, reset_after=10.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # never two in a row


# ----------------------------------------------------------------------
# Supervised worker pool
# ----------------------------------------------------------------------

class TestWorkerSupervision:
    def test_pool_survives_injected_kills_and_loses_nothing(self):
        with faults.injected("seed=11;worker:kill:rate=0.3") as injector:
            done: list[int] = []
            lock = threading.Lock()

            def record(value: int):
                with lock:
                    done.append(value)

            pool = ShardedWorkerPool(2, name="chaos-worker")
            for i in range(40):
                pool.submit(i, lambda i=i: record(i))
            pool.close(wait=True)

        kills = injector.injection_counts().get("worker:kill", 0)
        assert kills > 0, "the 0.3 kill rate must actually fire for this seed"
        # zero lost, zero duplicated: every task ran exactly once
        assert sorted(done) == list(range(40))
        assert pool.worker_restarts == kills
        assert pool.requeued_tasks == kills

    def test_mid_task_death_restarts_but_does_not_requeue(self):
        ran = []
        pool = ShardedWorkerPool(1, name="die-worker")

        def die():
            ran.append("die")
            raise WorkerKilled("mid-task death")

        def after():
            ran.append("after")

        pool.submit(0, die)
        pool.submit(0, after)
        pool.close(wait=True)
        # the dying task ran once (not requeued), the next task still ran
        assert ran == ["die", "after"]
        assert pool.worker_restarts == 1
        assert pool.requeued_tasks == 0

    def test_plain_task_exceptions_do_not_restart_workers(self):
        pool = ShardedWorkerPool(1)

        def boom():
            raise RuntimeError("task-owned")

        pool.submit(0, boom)
        pool.close(wait=True)
        assert pool.worker_restarts == 0
        assert len(pool.task_errors) == 1


# ----------------------------------------------------------------------
# Process-pool respawn
# ----------------------------------------------------------------------

def _double_or_die(item):
    """Module-level (picklable) task: SIGKILLs its worker once, then works."""
    value, flag = item
    if value == 3 and not os.path.exists(flag):
        Path(flag).touch()
        os.kill(os.getpid(), 9)
    return value * 2


def _always_die(item):
    os.kill(os.getpid(), 9)


class TestProcessPoolRespawn:
    def test_parallel_map_survives_a_killed_child(self, tmp_path):
        flag = str(tmp_path / "killed-once")
        items = [(i, flag) for i in range(5)]
        before = executor.POOL_RESPAWNS
        results = parallel_map(_double_or_die, items, workers=2)
        assert results == [0, 2, 4, 6, 8]
        assert os.path.exists(flag), "the kill must actually have happened"
        assert executor.POOL_RESPAWNS == before + 1

    def test_respawn_budget_is_bounded(self):
        from concurrent.futures import BrokenExecutor

        with pytest.raises(BrokenExecutor):
            parallel_map(_always_die, [1, 2, 3], workers=2, max_respawns=1)


# ----------------------------------------------------------------------
# Store faults
# ----------------------------------------------------------------------

class TestStoreFaults:
    def test_torn_write_is_invisible_to_readers(self, tmp_path):
        from repro.store.backend import atomic_write_bytes

        target = tmp_path / "record.json"
        payload = b"x" * 100
        with faults.injected("store.write:torn:rate=1.0,max=1"):
            with pytest.raises(FaultInjected):
                atomic_write_bytes(target, payload)
            assert not target.exists(), "a torn write must never be renamed in"
            temps = list(tmp_path.glob(".tmp-*"))
            assert temps and temps[0].stat().st_size == len(payload) // 2
            # the budget is spent: the retry goes through and wins
            atomic_write_bytes(target, payload)
        assert target.read_bytes() == payload

    def test_lock_site_raises_typed_retryable_error(self, tmp_path):
        lock = FileLock(tmp_path / "faulted.lock", timeout=1.0)
        with faults.injected("store.lock:raise:rate=1.0,max=1"):
            with pytest.raises(LockTimeout) as info:
                lock.acquire()
            assert RetryPolicy().classify(info.value)
            lock.acquire()  # budget spent: acquisition now succeeds
            lock.release()


# ----------------------------------------------------------------------
# Service integration
# ----------------------------------------------------------------------

class _SleepyDetector:
    """Sleeps on one poisoned binary name; instant empty result elsewhere."""

    name = "sleepy-stub"

    def __init__(self, poison: str, seconds: float = 2.0):
        self.poison = poison
        self.seconds = seconds

    def detect(self, image, context=None):
        if self.poison in image.name:
            time.sleep(self.seconds)
        return DetectionResult(binary_name=image.name)


class _BrokenDetector:
    """Unconditionally raises a non-retryable error."""

    name = "broken-stub"
    calls = 0

    def detect(self, image, context=None):
        type(self).calls += 1
        raise RuntimeError("deterministic detector bug")


class TestServiceResilience:
    def test_injected_detector_faults_are_retried_to_success(self, small_corpus):
        entries = small_corpus[:3]
        with DetectionService(workers=2) as clean_service:
            clean = {
                (r.name, r.detector): r.function_starts
                for r in clean_service.submit(entries).results()
            }

        with faults.injected("seed=3;detect:raise:rate=1.0,max=2") as injector:
            with DetectionService(workers=2) as service:
                results = list(service.submit(entries).results())
                stats = service.stats()

        assert injector.injection_counts() == {"detect:raise": 2}
        assert all(r.ok for r in results)
        assert stats["resilience"]["detector_retries"] == 2
        # surviving results are identical to the fault-free run
        observed = {(r.name, r.detector): r.function_starts for r in results}
        assert observed == clean

    def test_exhausted_retries_fail_only_that_unit(self, small_corpus):
        entries = small_corpus[:3]
        resilience = ResilienceConfig(detect_attempts=2, backoff_base=0.0)
        with faults.injected("seed=5;detect:raise:rate=1.0"):  # unlimited
            with DetectionService(workers=2, resilience=resilience) as service:
                results = list(service.submit(entries).results())
                stats = service.stats()
        assert all(not r.ok for r in results)
        for result in results:
            assert result.failure is not None
            assert result.failure["site"] == "detect"
            assert result.failure["kind"] == "FaultInjected"
            assert result.failure["attempts"] == 2
            assert result.failure["retryable"] is True
        assert stats["resilience"]["degraded_units"] == len(results)

    def test_detector_timeout_degrades_only_the_wedged_entry(self, small_corpus):
        entries = small_corpus[:3]
        poison = entries[1].name
        resilience = ResilienceConfig(detector_timeout=0.2, detect_attempts=1)
        with DetectionService(workers=2, resilience=resilience) as service:
            detector = _SleepyDetector(poison, seconds=2.0)
            results = list(service.submit(entries, detectors=[detector]).results())
        by_name = {r.name: r for r in results}
        assert not by_name[poison].ok
        assert by_name[poison].failure["kind"] == "DetectorTimeout"
        assert by_name[poison].failure["retryable"] is False
        for entry in (entries[0], entries[2]):
            assert by_name[entry.name].ok

    def test_circuit_breaker_quarantines_a_crashing_detector(self, small_corpus):
        entries = small_corpus[:5]
        _BrokenDetector.calls = 0
        resilience = ResilienceConfig(
            detect_attempts=1, breaker_threshold=2, breaker_reset_after=300.0
        )
        with DetectionService(workers=1, resilience=resilience) as service:
            results = list(
                service.submit(entries, detectors=[_BrokenDetector()]).results()
            )
            stats = service.stats()
        assert all(not r.ok for r in results)
        # two real failures trip the breaker; the rest fail fast, unrun
        assert _BrokenDetector.calls == 2
        sites = [r.failure["site"] for r in results]
        assert sites == ["detect", "detect", "breaker", "breaker", "breaker"]
        assert stats["resilience"]["breaker_trips"] == 1
        assert stats["resilience"]["breakers"] == {"broken-stub": "open"}

    def test_store_write_faults_degrade_without_failing_units(
        self, small_corpus, tmp_path
    ):
        from repro.store import ArtifactStore

        entries = small_corpus[:2]
        store = ArtifactStore(tmp_path / "chaos-store")
        resilience = ResilienceConfig(store_attempts=2, backoff_base=0.0)
        with faults.injected("seed=9;store.write:torn:rate=1.0"):
            with DetectionService(
                workers=2, store=store, resilience=resilience
            ) as service:
                results = list(service.submit(entries).results())
                stats = service.stats()
        assert all(r.ok for r in results), "persistence failures must not fail units"
        assert all(r.function_starts for r in results)
        assert stats["resilience"]["store_degraded"] >= len(results)
        assert stats["resilience"]["store_retries"] >= 1

    def test_worker_kills_lose_no_entries(self, small_corpus):
        entries = small_corpus[:6]
        with DetectionService(workers=2) as clean_service:
            clean = {
                (r.name, r.detector): r.function_starts
                for r in clean_service.submit(entries).results()
            }
        with faults.injected("seed=2;worker:kill:rate=0.4") as injector:
            with DetectionService(workers=2) as service:
                handle = service.submit(entries)
                assert handle.wait(timeout=60.0)
                results = list(handle.results())
                stats = service.stats()
        kills = injector.injection_counts().get("worker:kill", 0)
        assert kills > 0, "the 0.4 kill rate must fire for this seed"
        assert len(results) == len(entries)
        assert all(r.ok for r in results)
        assert {(r.name, r.detector): r.function_starts for r in results} == clean
        assert stats["resilience"]["worker_restarts"] == kills
