"""Baseline function-detection tools, modelled by strategy.

The paper compares FETCH against eight existing tools.  Those tools cannot be
bundled here, so each is modelled by the *strategies* the paper attributes to
it (§II-B, §IV, §VI): which seeds it starts from (symbols, FDEs, the entry
point, linear sweep), which growth steps it runs (recursive disassembly,
prologue matching, pointer scanning, linear scan) and which error-prone
heuristics it layers on top (control-flow repairing, thunk detection,
function merging, heuristic tail calls).  The strategy toggles of
:class:`~repro.baselines.ghidra_like.GhidraLike` and
:class:`~repro.baselines.angr_like.AngrLike` correspond one-to-one to the
bars of Figure 5a/5b.
"""

from repro.baselines.base import BaselineTool
from repro.baselines.ghidra_like import GhidraLike, GhidraOptions
from repro.baselines.angr_like import AngrLike, AngrOptions
from repro.baselines.dyninst_like import DyninstLike
from repro.baselines.bap_like import BapLike
from repro.baselines.radare_like import Radare2Like
from repro.baselines.nucleus_like import NucleusLike
from repro.baselines.ida_like import IdaLike
from repro.baselines.ninja_like import BinaryNinjaLike
from repro.baselines.byteweight_like import ByteWeightLike

__all__ = [
    "BaselineTool",
    "GhidraLike",
    "GhidraOptions",
    "AngrLike",
    "AngrOptions",
    "DyninstLike",
    "BapLike",
    "Radare2Like",
    "NucleusLike",
    "IdaLike",
    "BinaryNinjaLike",
    "ByteWeightLike",
]


def all_comparison_tools() -> list[BaselineTool]:
    """The eight baseline tools of Table III, in the paper's column order.

    Registry-driven: the list is exactly the detectors registered with
    ``comparison=True``, instantiated with default options.
    """
    from repro.core.registry import detectors

    return [info.create() for info in detectors(comparison=True)]
