"""Declarative detector registry — the single source of detector truth.

Every function-start detector (the FETCH pipeline and all nine baseline
models) registers itself with :func:`register_detector`, carrying the
metadata the evaluation stack needs:

* its table name and paper column ``order``,
* its options dataclass (when the detector is configurable),
* whether it is one of the eight Table III *comparison* tools and whether it
  belongs to the scenario *matrix* (the comparison tools plus ByteWeight and
  FETCH),
* scenario capabilities: ``needs_eh_frame`` (the detector seeds from FDEs
  and degrades without an ``.eh_frame`` section) and ``cet_aware`` (the
  detector switches to endbr64-anchored signatures on CET binaries).

Consumers — ``all_comparison_tools``, ``MATRIX_DETECTORS``,
:class:`~repro.eval.runner.ScenarioMatrix`, the benchmarks and the CLI's
``--detector`` flag — look detectors up here instead of hard-coding lists,
so adding a detector is one decorator, not five edits.  Registration stores
*classes*; nothing is instantiated until a caller asks for an instance.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Iterable

#: Modules whose import registers every known detector.  Queries import
#: these lazily so registry consumers never depend on import order.
_PROVIDER_MODULES = ("repro.baselines", "repro.core.pipeline")

_REGISTRY: dict[str, "DetectorInfo"] = {}


@dataclass(frozen=True)
class DetectorInfo:
    """Declarative metadata for one registered detector."""

    #: short name used in tables and on the command line ("fetch", "ghidra")
    name: str
    #: the detector class; ``cls()`` must build a default-configured instance
    cls: type
    #: cache version of the detector's *logic*: part of every store key
    #: (results, matrix cells, CLI detections), so bumping it invalidates
    #: cached artifacts when the detector's behaviour changes.  Bump it when
    #: editing the detector or a shared analysis it depends on.
    version: str = "1"
    #: the options dataclass accepted by ``cls(options)``, if any
    options_cls: type | None = None
    #: paper column order (Table III / Table V); queries sort by it
    order: int = 1000
    #: one of the eight Table III comparison tools
    comparison: bool = False
    #: member of the scenario matrix (comparison tools + ByteWeight + FETCH)
    matrix: bool = True
    #: seeds from ``.eh_frame`` FDEs; degrades when the section is missing
    needs_eh_frame: bool = False
    #: switches to endbr64-anchored prologue signatures on CET binaries
    cet_aware: bool = False
    #: one-line description for ``fetch-detect --list-detectors``
    description: str = ""

    def create(self, options: Any | None = None) -> Any:
        """Instantiate the detector, optionally with an options object."""
        if options is None:
            return self.cls()
        if self.options_cls is None:
            raise TypeError(f"detector {self.name!r} takes no options")
        if not isinstance(options, self.options_cls):
            raise TypeError(
                f"detector {self.name!r} expects {self.options_cls.__name__} "
                f"options, got {type(options).__name__}"
            )
        return self.cls(options)


def register_detector(
    name: str,
    *,
    options: type | None = None,
    order: int = 1000,
    comparison: bool = False,
    matrix: bool = True,
    needs_eh_frame: bool = False,
    cet_aware: bool = False,
    description: str = "",
    version: str = "1",
):
    """Class decorator registering a detector under ``name``.

    The decorated class's ``name`` attribute is set from the registration so
    the registry and the class can never disagree; ``cache_version`` is set
    from ``version`` and participates in every artifact-store key.
    Registering two distinct classes under one name is an error;
    re-executing a module (so the "same" class object is rebuilt) silently
    replaces the entry.
    """

    def decorate(cls: type) -> type:
        existing = _REGISTRY.get(name)
        if existing is not None and existing.cls is not cls:
            same_class = (
                existing.cls.__module__ == cls.__module__
                and existing.cls.__qualname__ == cls.__qualname__
            )
            if not same_class:
                raise ValueError(
                    f"detector name {name!r} is already registered by "
                    f"{existing.cls.__module__}.{existing.cls.__qualname__}"
                )
        declared = cls.__dict__.get("name")
        if declared is not None and declared != name:
            raise ValueError(
                f"class {cls.__qualname__} declares name={declared!r} but is "
                f"registered as {name!r}"
            )
        cls.name = name
        cls.cache_version = version
        _REGISTRY[name] = DetectorInfo(
            name=name,
            cls=cls,
            version=version,
            options_cls=options,
            order=order,
            comparison=comparison,
            matrix=matrix,
            needs_eh_frame=needs_eh_frame,
            cet_aware=cet_aware,
            description=description,
        )
        return cls

    return decorate


def _ensure_loaded() -> None:
    for module in _PROVIDER_MODULES:
        importlib.import_module(module)


def detector_info(name: str) -> DetectorInfo:
    """The registration record of ``name`` (raises ``KeyError`` if unknown)."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown detector {name!r}; registered: {known}") from None


def detectors(
    *,
    include: Iterable[str] | None = None,
    exclude: Iterable[str] | None = None,
    comparison: bool | None = None,
    matrix: bool | None = None,
    needs_eh_frame: bool | None = None,
    cet_aware: bool | None = None,
) -> list[DetectorInfo]:
    """Registered detectors in paper column order, optionally filtered.

    ``include``/``exclude`` name detectors explicitly (unknown names raise);
    the boolean filters match the corresponding :class:`DetectorInfo` flags.
    """
    _ensure_loaded()
    selected = sorted(_REGISTRY.values(), key=lambda info: (info.order, info.name))
    if include is not None:
        wanted = set(include)
        for name in wanted:
            detector_info(name)  # raise on unknown names
        selected = [info for info in selected if info.name in wanted]
    if exclude is not None:
        dropped = set(exclude)
        for name in dropped:
            detector_info(name)
        selected = [info for info in selected if info.name not in dropped]
    for flag, value in (
        ("comparison", comparison),
        ("matrix", matrix),
        ("needs_eh_frame", needs_eh_frame),
        ("cet_aware", cet_aware),
    ):
        if value is not None:
            selected = [info for info in selected if getattr(info, flag) == value]
    return selected


def detector_names(**filters: Any) -> list[str]:
    """Names of :func:`detectors` under the same filters."""
    return [info.name for info in detectors(**filters)]


def create_detector(name: str, options: Any | None = None) -> Any:
    """Instantiate the registered detector ``name``."""
    return detector_info(name).create(options)


def create_detectors(specs: Iterable[Any] | None = None) -> list[Any]:
    """Instantiate a batch of detectors, preserving request order.

    ``specs`` mixes registered names (instantiated with default options) and
    ready-made detector instances (passed through untouched — how tests and
    embedders inject custom-configured or stub detectors).  ``None`` or an
    empty iterable means the default detector set: FETCH alone.  Unknown
    names raise ``KeyError`` before anything runs, so a batch request fails
    fast instead of mid-stream.
    """
    requested = list(specs) if specs is not None else []
    if not requested:
        requested = ["fetch"]
    return [
        create_detector(spec) if isinstance(spec, str) else spec for spec in requested
    ]


__all__ = [
    "DetectorInfo",
    "register_detector",
    "detector_info",
    "detectors",
    "detector_names",
    "create_detector",
    "create_detectors",
]
