"""Tests for the shared padding constants, gap computation at section
boundaries, and cached/uncached prologue-matching parity at gap edges."""

from repro.analysis.gaps import compute_gaps
from repro.analysis.linearscan import linear_scan_gaps
from repro.analysis.padding import PADDING_BYTES, skip_padding_bytes
from repro.analysis.prologue import match_prologues
from repro.analysis.result import DisassemblyResult
from repro.core.context import AnalysisContext
from repro.elf import constants as C
from repro.elf.image import BinaryImage
from repro.elf.structs import ElfFile, Section
from repro.x86.instruction import Instruction

TEXT = 0x1000


def _image(sections):
    return BinaryImage(elf=ElfFile(sections=sections, entry_point=TEXT), name="t")


def _text_section(data, address=TEXT, name=".text"):
    return Section(
        name=name, data=data, address=address, flags=C.SHF_ALLOC | C.SHF_EXECINSTR
    )


def _result_with_instructions(instructions):
    result = DisassemblyResult()
    for insn in instructions:
        result.instructions[insn.address] = insn
    return result


# ----------------------------------------------------------------------
# Shared padding constants
# ----------------------------------------------------------------------

def test_padding_byte_set_is_shared_and_single_byte_only():
    # One constant for every consumer; multi-byte NOP components like 0x66 /
    # 0x0f / 0x1f must NOT be in it (skipping them byte-wise would jump into
    # the middle of real instructions).
    assert PADDING_BYTES == frozenset((0x90, 0xCC, 0x00))
    for byte in (0x66, 0x0F, 0x1F):
        assert byte not in PADDING_BYTES
    # The dead, wrongly-composed per-module copies are gone.
    import repro.analysis.linearscan as linearscan
    import repro.analysis.prologue as prologue

    assert not hasattr(prologue, "_PADDING_BYTES")
    assert not hasattr(linearscan, "_PADDING_BYTES")


def test_skip_padding_bytes_stops_at_multi_byte_nop():
    data = b"\x90\x90\xcc\x00" + b"\x66\x0f\x1f\x44\x00\x00"
    # Byte-wise skipping must stop at the 0x66 prefix, not run into it.
    assert skip_padding_bytes(data, TEXT, TEXT, TEXT + len(data)) == TEXT + 4


def test_linear_scan_ignores_multi_byte_nop_runs():
    # A gap consisting solely of 66 0f 1f NOP runs decodes fine but contains
    # no meaningful instructions, so it must produce no function starts.
    nop6 = b"\x66\x0f\x1f\x44\x00\x00"
    section = _text_section(nop6 * 8)
    image = _image([section])
    gaps = [(TEXT, TEXT + len(section.data))]
    assert linear_scan_gaps(image, gaps) == set()
    # Real code after the NOP run is still found at its true start.
    code = b"\x55\x48\x89\xe5\x31\xc0\x5d\xc3"  # push rbp; mov; xor; pop; ret
    section = _text_section(nop6 * 4 + code)
    image = _image([section])
    gaps = [(TEXT, TEXT + len(section.data))]
    starts = linear_scan_gaps(image, gaps)
    assert starts == {TEXT + 4 * len(nop6)}


# ----------------------------------------------------------------------
# Gap computation across section boundaries
# ----------------------------------------------------------------------

def test_compute_gaps_with_covered_range_spanning_section_boundary():
    first = _text_section(b"\x90" * 0x10, address=TEXT, name=".text")
    second = _text_section(b"\x90" * 0x10, address=TEXT + 0x10, name=".text.hot")
    image = _image([first, second])
    # One merged covered range [0x100c, 0x1014) straddles the boundary.
    covered = _result_with_instructions(
        [
            Instruction(mnemonic="nop", address=TEXT + 0xC, data=b"\x0f\x1f\x40\x00"),
            Instruction(mnemonic="nop", address=TEXT + 0x10, data=b"\x0f\x1f\x40\x00"),
        ]
    )
    gaps = compute_gaps(image, covered)
    assert gaps == [(TEXT, TEXT + 0xC), (TEXT + 0x14, TEXT + 0x20)]
    # No gap byte is covered and every uncovered executable byte is in a gap.
    gap_bytes = {a for start, end in gaps for a in range(start, end)}
    covered_bytes = set(range(TEXT + 0xC, TEXT + 0x14))
    assert not (gap_bytes & covered_bytes)
    assert gap_bytes | covered_bytes == set(range(TEXT, TEXT + 0x20))


# ----------------------------------------------------------------------
# Cached vs uncached prologue matching at gap edges
# ----------------------------------------------------------------------

def _parity(image, gaps, patterns):
    uncached = match_prologues(image, gaps, patterns=patterns)
    cached = match_prologues(
        image, gaps, patterns=patterns, context=AnalysisContext(image)
    )
    assert uncached == cached
    return uncached


def test_prologue_match_parity_when_pattern_straddles_gap_end():
    pattern = b"\x55\x48\x89\xe5"
    data = b"\x90" * 0x10 + pattern + b"\x90" * 0x0C
    image = _image([_text_section(data)])

    # Gap ends two bytes into the pattern: neither path may report it.
    assert _parity(image, [(TEXT, TEXT + 0x12)], (pattern,)) == set()
    # Gap ends exactly at the pattern end: both paths report it.
    assert _parity(image, [(TEXT, TEXT + 0x14)], (pattern,)) == {TEXT + 0x10}
    # Gap end past the section end clamps identically on both paths.
    assert _parity(image, [(TEXT, TEXT + 0x100)], (pattern,)) == {TEXT + 0x10}


def test_prologue_match_parity_when_pattern_straddles_section_end():
    pattern = b"\x55\x48\x89\xe5"
    # The section ends mid-pattern; the occurrence must not be reported by
    # either path even though the gap nominally extends further.
    data = b"\x90" * 0x0C + pattern[:2]
    image = _image([_text_section(data)])
    assert _parity(image, [(TEXT, TEXT + 0x20)], (pattern,)) == set()
