"""x86-64 instruction set substrate.

This package provides a self-contained assembler (:mod:`repro.x86.assembler`)
and disassembler (:mod:`repro.x86.disassembler`) for the subset of the x86-64
instruction set emitted by compilers for ordinary C/C++ code: stack
management, data movement, arithmetic, comparisons, direct/indirect control
transfers, and padding.  It exists so that the rest of the library can encode
synthetic binaries and decode arbitrary code bytes without any external
binary-analysis dependency.

The public surface is intentionally small:

* :class:`~repro.x86.registers.Register` and the ``RAX`` .. ``R15`` constants,
* :class:`~repro.x86.operands.Imm` / :class:`~repro.x86.operands.Mem` operands,
* :class:`~repro.x86.instruction.Instruction`,
* :class:`~repro.x86.assembler.Assembler` for encoding,
* :func:`~repro.x86.disassembler.decode_instruction` /
  :func:`~repro.x86.disassembler.decode_range` /
  :func:`~repro.x86.disassembler.decode_block` for decoding,
* :mod:`~repro.x86.semantics` helpers (stack deltas, register effects).
"""

from repro.x86.registers import (
    Register,
    RAX,
    RCX,
    RDX,
    RBX,
    RSP,
    RBP,
    RSI,
    RDI,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
    GPR64,
    ARGUMENT_REGISTERS,
    CALLEE_SAVED_REGISTERS,
    register_by_name,
)
from repro.x86.operands import Imm, Mem
from repro.x86.instruction import Instruction
from repro.x86.assembler import Assembler
from repro.x86.disassembler import (
    DecodeError,
    decode_block,
    decode_instruction,
    decode_range,
)

__all__ = [
    "Register",
    "RAX",
    "RCX",
    "RDX",
    "RBX",
    "RSP",
    "RBP",
    "RSI",
    "RDI",
    "R8",
    "R9",
    "R10",
    "R11",
    "R12",
    "R13",
    "R14",
    "R15",
    "GPR64",
    "ARGUMENT_REGISTERS",
    "CALLEE_SAVED_REGISTERS",
    "register_by_name",
    "Imm",
    "Mem",
    "Instruction",
    "Assembler",
    "DecodeError",
    "decode_block",
    "decode_instruction",
    "decode_range",
]
