"""Evaluation framework: metrics, experiment runners and table renderers.

Every table and figure of the paper's evaluation has a corresponding runner
in :mod:`repro.eval.runner` and a renderer in :mod:`repro.eval.tables`; the
``benchmarks/`` directory wires them to pytest-benchmark targets.
"""

from repro.eval.executor import parallel_map
from repro.eval.metrics import BinaryMetrics, CorpusMetrics, compute_metrics
from repro.eval.runner import (
    MATRIX_DETECTORS,
    CorpusEvaluator,
    ScenarioMatrix,
    StrategyOutcome,
    run_scenario_matrix,
    run_strategy_ladder,
    run_figure5a,
    run_figure5b,
    run_figure5c,
    run_fde_coverage_study,
    run_fde_error_study,
    run_algorithm1_study,
    run_tool_comparison,
    run_stack_height_study,
    run_timing_study,
    run_wild_study,
    run_selfbuilt_fde_study,
)
from repro.eval.tables import (
    render_figure5,
    render_scenario_matrix,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_strategy_outcomes,
)

__all__ = [
    "BinaryMetrics",
    "CorpusEvaluator",
    "CorpusMetrics",
    "MATRIX_DETECTORS",
    "ScenarioMatrix",
    "parallel_map",
    "compute_metrics",
    "run_scenario_matrix",
    "StrategyOutcome",
    "run_strategy_ladder",
    "run_figure5a",
    "run_figure5b",
    "run_figure5c",
    "run_fde_coverage_study",
    "run_fde_error_study",
    "run_algorithm1_study",
    "run_tool_comparison",
    "run_stack_height_study",
    "run_timing_study",
    "run_wild_study",
    "run_selfbuilt_fde_study",
    "render_figure5",
    "render_scenario_matrix",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "render_strategy_outcomes",
]
