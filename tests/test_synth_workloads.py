"""Tests for the program planner and corpus builders."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth import build_selfbuilt_corpus, build_wild_corpus, plan_program
from repro.synth.corpus import SELFBUILT_PROJECTS, WILD_SOFTWARE
from repro.synth.profiles import CompilerFamily, OptLevel, default_profile
from repro.synth.workloads import WorkloadTraits


def make_plan(seed=1, **trait_overrides):
    profile = default_profile(CompilerFamily.GCC, OptLevel.O2)
    traits = WorkloadTraits(**({"mean_functions": 60} | trait_overrides))
    return plan_program("planned", profile, seed=seed, traits=traits)


def test_plan_contains_runtime_functions():
    plan = make_plan()
    names = plan.function_names
    for required in ("_start", "main", "exit_impl", "abort_impl"):
        assert required in names


def test_plan_is_deterministic_for_a_seed():
    assert make_plan(seed=3).function_names == make_plan(seed=3).function_names
    assert make_plan(seed=3).function_names != make_plan(seed=4).function_names


def test_every_call_reachable_function_has_a_caller():
    plan = make_plan()
    called = {callee for f in plan.functions for callee in f.callees}
    called |= {f.noreturn_callee for f in plan.functions if f.noreturn_callee}
    called |= {f.tail_call_to for f in plan.functions if f.tail_call_to}
    called |= set(plan.data_pointers.values())
    for function in plan.functions:
        if function.reachable_via == "call" and function.name != "main":
            assert function.name in called, function.name


def test_tailcall_only_targets_have_exactly_one_referencing_tail_call():
    plan = make_plan(has_assembly=True, mean_functions=200)
    tail_only = [f for f in plan.functions if f.reachable_via == "tailcall"]
    assert tail_only, "expected tail-call-only functions in a large assembly project"
    for target in tail_only:
        callers = [f for f in plan.functions if f.tail_call_to == target.name]
        direct = [f for f in plan.functions if target.name in f.callees]
        assert len(callers) == 1 and not direct


def test_indirect_only_targets_are_wired_through_data_pointers():
    plan = make_plan(is_cpp=True, mean_functions=150)
    indirect = [f for f in plan.functions if f.reachable_via == "indirect"]
    assert indirect
    slot_targets = set(plan.data_pointers.values())
    for function in indirect:
        assert function.name in slot_targets or any(
            function.name in f.address_refs for f in plan.functions
        )


def test_cold_split_functions_keep_nonzero_stack_depth():
    plan = make_plan(cold_split_multiplier=6.0, mean_functions=200)
    split = [f for f in plan.functions if f.cold_split]
    assert split
    for function in split:
        assert function.frame_size > 0 or function.saved_registers > 0


def test_assembly_functions_only_in_assembly_projects():
    without = make_plan(has_assembly=False, mean_functions=150)
    assert not [f for f in without.functions if f.kind == "asm"]
    with_asm = make_plan(has_assembly=True, mean_functions=300)
    assert [f for f in with_asm.functions if f.kind == "asm"]


def test_asm_functions_have_untyped_symbols_and_no_fde():
    plan = make_plan(has_assembly=True, mean_functions=300)
    for function in plan.functions:
        if function.kind == "asm":
            assert not function.has_fde
            assert function.symbol_type == "notype"


def test_clang_cpp_projects_get_terminate_helper():
    profile = default_profile(CompilerFamily.CLANG, OptLevel.O2)
    cpp = plan_program("cpp", profile, seed=1, traits=WorkloadTraits(is_cpp=True))
    assert "__clang_call_terminate" in cpp.function_names
    c_only = plan_program("c", profile, seed=1, traits=WorkloadTraits(is_cpp=False))
    assert "__clang_call_terminate" not in c_only.function_names


def test_data_in_text_blobs_are_planned():
    plan = make_plan(mean_functions=120)
    assert plan.data_in_text
    assert all(isinstance(blob, bytes) and blob for blob in plan.data_in_text)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_any_seed_produces_a_consistent_plan(seed):
    plan = make_plan(seed=seed, mean_functions=40)
    names = plan.function_names
    assert len(names) == len(set(names))
    known = set(names)
    for function in plan.functions:
        for callee in function.callees:
            assert callee in known
        if function.tail_call_to:
            assert function.tail_call_to in known


# ----------------------------------------------------------------------
# Corpus builders
# ----------------------------------------------------------------------

def test_selfbuilt_corpus_covers_compilers_and_opt_levels():
    corpus = build_selfbuilt_corpus(scale=0.2, max_binaries=16)
    assert len(corpus) == 16
    compilers = {b.plan.profile.compiler for b in corpus}
    levels = {b.plan.profile.opt_level for b in corpus}
    assert compilers == {CompilerFamily.GCC, CompilerFamily.CLANG}
    assert levels == set(OptLevel)


def test_selfbuilt_corpus_is_reproducible():
    first = build_selfbuilt_corpus(scale=0.2, max_binaries=4, seed=11)
    second = build_selfbuilt_corpus(scale=0.2, max_binaries=4, seed=11)
    assert [b.name for b in first] == [b.name for b in second]
    assert [b.ground_truth.function_starts for b in first] == [
        b.ground_truth.function_starts for b in second
    ]


def test_wild_corpus_strips_symbols_according_to_profile():
    corpus = build_wild_corpus(scale=0.2, max_binaries=30)
    assert corpus
    for profile, binary in corpus:
        assert binary.image.has_eh_frame
        assert binary.image.has_symbols == profile.has_symbols


def test_project_and_wild_tables_have_paper_scale_entries():
    assert len(SELFBUILT_PROJECTS) >= 15
    assert len(WILD_SOFTWARE) == 43
    assert sum(1 for w in WILD_SOFTWARE if w.has_symbols) == 11
