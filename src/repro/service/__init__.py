"""Persistent detection service: batch submission over a long-lived pool.

The service layer turns the repository from "a script that reproduces
tables" into "a system that serves detection": a
:class:`DetectionService` stays up across batches, shards incoming
binaries over its worker pool by content digest, dedupes against the
:class:`~repro.store.ArtifactStore` before any detector runs, and streams
per-entry results back through :class:`JobHandle`.  Typical wiring::

    from repro.service import DetectionService
    from repro.store import ArtifactStore

    with DetectionService(workers=4, store=ArtifactStore()) as service:
        handle = service.submit(paths, detectors=["fetch"])
        for result in handle.results():
            ...

``fetch-detect serve`` exposes the same service over the JSON-lines
protocol in :mod:`repro.service.protocol` — over stdin/stdout by default,
or to many concurrent network clients via ``fetch-detect serve --tcp``
(:class:`DetectionServer` in :mod:`repro.service.server`, one
:class:`ServeSession` per connection).  ``fetch-detect submit`` is the
one-shot batch client; with ``--connect`` it speaks to a running server
through :class:`ServiceClient`.
"""

from repro.service.client import ServerError, ServiceClient
from repro.service.protocol import DEFAULT_MAX_LINE_BYTES, ServeSession
from repro.service.server import DetectionServer
from repro.service.service import (
    DetectionService,
    EntryResult,
    JobHandle,
    JobState,
    ServiceClosed,
    ServiceConfig,
    ServiceSaturated,
)

__all__ = [
    "DEFAULT_MAX_LINE_BYTES",
    "DetectionServer",
    "DetectionService",
    "EntryResult",
    "JobHandle",
    "JobState",
    "ServeSession",
    "ServerError",
    "ServiceClient",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceSaturated",
]
