"""Tests for the FETCH core: FDE extraction, Algorithm 1 and the pipeline."""

from repro.analysis import RecursiveDisassembler
from repro.core import (
    FetchDetector,
    FetchOptions,
    detect_tail_calls_and_merge,
    extract_fde_starts,
    fde_symbol_coverage,
)


# ----------------------------------------------------------------------
# FDE extraction (§IV, Q1)
# ----------------------------------------------------------------------

def test_fde_starts_cover_all_fde_backed_functions(rich_binary):
    starts = extract_fde_starts(rich_binary.image)
    for info in rich_binary.ground_truth.functions:
        if info.has_fde and not info.bad_fde_offset:
            assert info.address in starts


def test_fde_starts_miss_assembly_functions(rich_binary):
    starts = extract_fde_starts(rich_binary.image)
    missing = [f for f in rich_binary.ground_truth.functions if not f.has_fde]
    assert missing, "fixture should contain assembly functions without FDEs"
    for info in missing:
        assert info.address not in starts


def test_fde_starts_include_cold_parts(rich_binary):
    starts = extract_fde_starts(rich_binary.image)
    assert rich_binary.ground_truth.cold_part_starts <= starts


def test_fde_symbol_coverage_counts_untyped_assembly_symbols(rich_binary):
    coverage = fde_symbol_coverage(rich_binary.image)
    asm_count = len(rich_binary.ground_truth.functions_without_fde)
    assert coverage.symbol_count > 0
    assert coverage.covered_symbols <= coverage.symbol_count
    assert coverage.symbol_count - coverage.covered_symbols >= asm_count > 0
    assert 0.0 < coverage.ratio <= 1.0


def test_fde_symbol_coverage_of_stripped_binary_is_trivial(stripped_binary):
    coverage = fde_symbol_coverage(stripped_binary.image)
    assert coverage.symbol_count == 0
    assert coverage.ratio == 1.0


# ----------------------------------------------------------------------
# Algorithm 1 (§V-B)
# ----------------------------------------------------------------------

def _disassembled(binary, seeds):
    disassembler = RecursiveDisassembler(binary.image)
    return disassembler.disassemble(seeds)


def test_algorithm1_merges_cold_parts_of_rsp_framed_functions(rich_binary):
    image = rich_binary.image
    truth = rich_binary.ground_truth
    seeds = extract_fde_starts(image)
    disassembly = _disassembled(rich_binary, seeds)
    outcome = detect_tail_calls_and_merge(image, disassembly, set(seeds))

    for info in truth.functions:
        for cold in info.cold_part_addresses:
            if info.frame == "rsp":
                assert cold in outcome.merged, info.name
                assert outcome.merged[cold] == info.address
            else:
                assert cold not in outcome.merged, info.name


def test_algorithm1_never_merges_true_function_starts(rich_binary):
    image = rich_binary.image
    truth = rich_binary.ground_truth
    seeds = extract_fde_starts(image)
    disassembly = _disassembled(rich_binary, seeds)
    outcome = detect_tail_calls_and_merge(image, disassembly, set(seeds))
    wrongly_merged = set(outcome.merged) & truth.function_starts
    # The only true functions Algorithm 1 may merge are tail-call-only
    # targets whose conservative checks fail (the paper's harmless FNs).
    for address in wrongly_merged:
        info = truth.by_address(address)
        assert info.reachable_via == "tailcall", info.name


def test_algorithm1_tail_call_targets_are_real_functions(rich_binary):
    image = rich_binary.image
    truth = rich_binary.ground_truth
    seeds = extract_fde_starts(image)
    disassembly = _disassembled(rich_binary, seeds)
    outcome = detect_tail_calls_and_merge(image, disassembly, set(seeds))
    for target in outcome.tail_call_targets:
        assert target in truth.function_starts, hex(target)


def test_algorithm1_skips_functions_with_incomplete_cfi(rich_binary):
    image = rich_binary.image
    truth = rich_binary.ground_truth
    seeds = extract_fde_starts(image)
    disassembly = _disassembled(rich_binary, seeds)
    outcome = detect_tail_calls_and_merge(image, disassembly, set(seeds))
    rbp_functions = {f.address for f in truth.functions if f.frame == "rbp" and f.has_fde}
    assert rbp_functions & outcome.skipped_functions


# ----------------------------------------------------------------------
# The full pipeline (§VI)
# ----------------------------------------------------------------------

def test_fde_only_pipeline_reports_cold_parts_as_starts(rich_binary):
    options = FetchOptions(
        use_recursion=False,
        validate_fde_starts=False,
        use_pointer_validation=False,
        use_tail_call_analysis=False,
    )
    result = FetchDetector(options).detect(rich_binary.image)
    assert result.function_starts == extract_fde_starts(rich_binary.image)


def test_recursion_stage_only_adds_call_targets(rich_binary):
    options = FetchOptions(
        validate_fde_starts=False, use_pointer_validation=False, use_tail_call_analysis=False
    )
    result = FetchDetector(options).detect(rich_binary.image)
    added = result.added_by_stage["recursion"]
    truth = rich_binary.ground_truth
    for address in added:
        info = truth.by_address(address)
        assert info is not None and not info.has_fde


def test_xref_stage_finds_indirect_only_functions_without_false_positives(rich_binary):
    options = FetchOptions(validate_fde_starts=False, use_tail_call_analysis=False)
    result = FetchDetector(options).detect(rich_binary.image)
    truth = rich_binary.ground_truth
    added = result.added_by_stage.get("xref", set())
    assert added <= truth.function_starts
    indirect_asm = {
        f.address
        for f in truth.functions
        if f.reachable_via == "indirect" and not f.has_fde and not f.violates_callconv
    }
    assert indirect_asm <= result.function_starts


def test_full_pipeline_has_no_false_positives_beyond_incomplete_cfi(rich_binary):
    result = FetchDetector().detect(rich_binary.image)
    truth = rich_binary.ground_truth
    false_positives = result.function_starts - truth.function_starts
    for address in false_positives:
        parents = [f for f in truth.functions if address in f.cold_part_addresses]
        assert parents and parents[0].frame == "rbp", hex(address)


def test_full_pipeline_false_negatives_are_harmless(rich_binary):
    result = FetchDetector().detect(rich_binary.image)
    truth = rich_binary.ground_truth
    for address in truth.function_starts - result.function_starts:
        info = truth.by_address(address)
        assert info.reachable_via in ("unreachable", "tailcall"), info.name


def test_pipeline_on_plain_binary_is_exact(plain_binary):
    result = FetchDetector().detect(plain_binary.image)
    truth = plain_binary.ground_truth
    assert result.function_starts == truth.function_starts


def test_pipeline_works_on_stripped_binaries(stripped_binary):
    result = FetchDetector().detect(stripped_binary.image)
    truth = stripped_binary.ground_truth
    recall = len(result.function_starts & truth.function_starts) / truth.function_count
    assert recall > 0.97


def test_pipeline_with_symbols_seed_matches_plain_run(plain_binary):
    plain = FetchDetector().detect(plain_binary.image)
    with_symbols = FetchDetector(FetchOptions(use_symbols=True)).detect(plain_binary.image)
    assert plain.function_starts == with_symbols.function_starts


def test_stage_attribution_is_complete(rich_binary):
    result = FetchDetector().detect(rich_binary.image)
    attributed = set()
    for added in result.added_by_stage.values():
        attributed |= added
    removed = set()
    for gone in result.removed_by_stage.values():
        removed |= gone
    removed |= set(result.merged_parts)
    assert result.function_starts == attributed - removed


def test_disabling_recursion_short_circuits_later_stages(rich_binary):
    options = FetchOptions(use_recursion=False)
    result = FetchDetector(options).detect(rich_binary.image)
    assert "xref" not in result.added_by_stage
    assert "tailcall" not in result.added_by_stage
    assert result.disassembly is None
