"""Command-line interface: ``fetch-detect``.

Analyses one or more x86-64 ELF binaries with the FETCH pipeline and prints
the detected function starts, optionally comparing them against each
binary's symbol table.  With several binaries, ``--jobs N`` analyses them in
parallel; output stays in argument order.
"""

from __future__ import annotations

import argparse
import functools
import sys
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.core import AnalysisContext, FetchDetector, FetchOptions
from repro.core.results import DetectionResult
from repro.elf.image import BinaryImage


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fetch-detect",
        description=(
            "Detect function starts in an x86-64 System-V ELF binary using "
            "exception-handling information (FETCH, DSN 2021)."
        ),
    )
    parser.add_argument("binary", help="path to the ELF binary to analyse")
    parser.add_argument(
        "more_binaries",
        nargs="*",
        metavar="binary",
        help="additional binaries to analyse (see --jobs)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyse up to N binaries in parallel threads (default: 1)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "analyse up to N binaries in parallel worker processes "
            "(bypasses the GIL; takes precedence over --jobs)"
        ),
    )
    parser.add_argument(
        "--no-recursion",
        action="store_true",
        help="only report FDE PC-Begin addresses (the paper's Q1 baseline)",
    )
    parser.add_argument(
        "--no-xref",
        action="store_true",
        help="skip function-pointer collection and validation",
    )
    parser.add_argument(
        "--no-tailcall",
        action="store_true",
        help="skip Algorithm 1 (tail-call detection and part merging)",
    )
    parser.add_argument(
        "--use-symbols",
        action="store_true",
        help="also seed detection from function symbols when present",
    )
    parser.add_argument(
        "--compare-symbols",
        action="store_true",
        help="report agreement between detected starts and function symbols",
    )
    parser.add_argument(
        "--stages",
        action="store_true",
        help="show which pipeline stage contributed each detection",
    )
    return parser


def _analyse_one(path: str, args: argparse.Namespace) -> tuple[int, list[str], list[str]]:
    """Analyse ``path``; returns (exit code, stdout lines, stderr lines)."""
    out: list[str] = []
    err: list[str] = []
    try:
        image = BinaryImage.from_file(path)
    except (OSError, ValueError) as error:
        err.append(f"error: cannot load {path}: {error}")
        return 1, out, err

    if not image.has_eh_frame:
        err.append(
            "warning: binary has no .eh_frame section; FDE-based detection "
            "will find nothing"
        )

    options = FetchOptions(
        use_symbols=args.use_symbols,
        use_recursion=not args.no_recursion,
        use_pointer_validation=not args.no_xref,
        use_tail_call_analysis=not args.no_tailcall,
    )
    context = AnalysisContext(image)
    result = FetchDetector(options).detect(image, context)
    out.extend(_render_result(path, image, result, args))
    return 0, out, err


def _render_result(
    path: str, image: BinaryImage, result: DetectionResult, args: argparse.Namespace
) -> list[str]:
    lines: list[str] = []
    starts = sorted(result.function_starts)
    lines.append(f"# {len(starts)} function starts detected in {path}")
    stage_of: dict[int, str] = {}
    if args.stages:
        for stage, added in result.added_by_stage.items():
            for address in added:
                stage_of.setdefault(address, stage)
    for address in starts:
        if args.stages:
            lines.append(f"{address:#x}\t{stage_of.get(address, '?')}")
        else:
            lines.append(f"{address:#x}")

    if result.merged_parts:
        lines.append(f"# merged {len(result.merged_parts)} non-contiguous part(s):")
        for part, parent in sorted(result.merged_parts.items()):
            lines.append(f"#   {part:#x} -> part of function {parent:#x}")

    if args.compare_symbols and image.has_symbols:
        symbol_starts = {s.address for s in image.function_symbols}
        detected = set(starts)
        lines.append(f"# symbols: {len(symbol_starts)}, detected: {len(detected)}")
        lines.append(f"#   symbols not detected : {len(symbol_starts - detected)}")
        lines.append(f"#   detected not in symbols: {len(detected - symbol_starts)}")
    return lines


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    paths = [args.binary, *args.more_binaries]
    jobs = max(1, args.jobs)
    workers = max(0, args.workers)

    if workers > 1 and len(paths) > 1:
        # CPU-bound analysis scales with processes, not GIL-bound threads.
        analyse = functools.partial(_analyse_one, args=args)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(analyse, paths))
    elif jobs > 1 and len(paths) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            outcomes = list(pool.map(lambda p: _analyse_one(p, args), paths))
    else:
        outcomes = [_analyse_one(path, args) for path in paths]

    status = 0
    for code, out, err in outcomes:
        status = max(status, code)
        for line in err:
            print(line, file=sys.stderr)
        for line in out:
            print(line)
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
