"""Multi-client TCP front-end for the detection service.

:class:`DetectionServer` puts one shared
:class:`~repro.service.service.DetectionService` on the network: a
listening socket plus an acceptor thread, and one
:class:`~repro.service.protocol.ServeSession` per accepted connection —
the *same* request-dispatch core the stdio front-end runs, so the two
transports speak byte-identical protocol by construction (the
conformance suite in ``tests/test_server.py`` replays golden scripts
against both and asserts it).

Per-connection properties:

* **its own session** — job ids are session-local, each client streams
  only its own ``result``/``job-done`` events, and a client disconnecting
  mid-stream silences only its own session (in-flight jobs still finish
  in the service; nobody else's events are lost);
* **framing enforcement** — newline-delimited UTF-8 JSON with a hard
  ``max_line_bytes`` cap; an oversized or truncated frame answers one
  ``error`` event and closes that connection only;
* **guard hooks** — an optional shared-token handshake (the first request
  must be ``{"op": "auth", "token": ...}``), a per-client submit quota,
  and an idle timeout that reaps silent connections;
* **graceful drain** — :meth:`DetectionServer.shutdown` stops accepting,
  flips every session's submit guard to refusal, lets in-flight jobs
  finish streaming, then closes the connections.

The server is thread-per-connection on purpose: sessions spend their time
blocked on socket reads or on the service's condition variables, the
worker pool underneath is already bounded, and the thread model matches
the rest of the repository (the sharded pool, the drainer threads).  The
load benchmark (``benchmarks/bench_server.py``) drives hundreds of
concurrent clients through one server instance.
"""

from __future__ import annotations

import socket
import threading
from typing import Any

from repro.service.protocol import DEFAULT_MAX_LINE_BYTES, ServeSession
from repro.service.service import DetectionService

_RECV_CHUNK = 1 << 16


class _SocketLineReader:
    """File-like ``readline(limit)`` over a socket, with idle timeout.

    Bytes are buffered and decoded per line (UTF-8, replacement on decode
    errors — a garbage byte sequence becomes a bad-JSON line, answered by
    an ``error`` event, rather than a crash).  A recv timeout surfaces as
    ``TimeoutError``, which :class:`ServeSession` reports as an idle
    timeout; any other socket error surfaces as ``OSError`` and ends the
    session silently.
    """

    def __init__(self, sock: socket.socket, idle_timeout: float | None):
        self._sock = sock
        self._buffer = b""
        self._eof = False
        sock.settimeout(idle_timeout)

    def readline(self, limit: int = -1) -> str:
        while True:
            newline = self._buffer.find(b"\n")
            if newline != -1:
                if 0 <= limit <= newline:
                    # the line is longer than the caller accepts: hand the
                    # over-limit prefix back (no newline), signalling
                    # "oversized" exactly like io streams do
                    line, self._buffer = self._buffer[:limit], self._buffer[limit:]
                else:
                    line, self._buffer = (
                        self._buffer[: newline + 1],
                        self._buffer[newline + 1 :],
                    )
                return line.decode("utf-8", errors="replace")
            if 0 <= limit <= len(self._buffer):
                line, self._buffer = self._buffer[:limit], self._buffer[limit:]
                return line.decode("utf-8", errors="replace")
            if self._eof:
                line, self._buffer = self._buffer, b""
                return line.decode("utf-8", errors="replace")
            chunk = self._sock.recv(_RECV_CHUNK)
            if not chunk:
                self._eof = True
                continue
            self._buffer += chunk


class _SocketWriter:
    """File-like ``write``/``flush`` over a socket (sendall per event line)."""

    def __init__(self, sock: socket.socket):
        self._sock = sock

    def write(self, text: str) -> int:
        self._sock.sendall(text.encode("utf-8"))
        return len(text)

    def flush(self) -> None:  # sendall already pushed the bytes
        pass


class _Connection:
    """One accepted client: a session thread plus drain/close plumbing."""

    def __init__(
        self, server: "DetectionServer", sock: socket.socket, peer: Any, conn_id: int
    ):
        self.server = server
        self.sock = sock
        self.peer = peer
        self.conn_id = conn_id
        self.session = ServeSession(
            server.service,
            _SocketLineReader(sock, server.idle_timeout),  # type: ignore[arg-type]
            _SocketWriter(sock),  # type: ignore[arg-type]
            max_line_bytes=server.max_line_bytes,
            auth_token=server.auth_token,
            submit_quota=server.submit_quota,
            submit_guard=server._submit_guard,
            stats_extra=server._stats_extra,
        )
        self.thread = threading.Thread(
            target=self._run, name=f"serve-conn-{conn_id}", daemon=True
        )

    def _run(self) -> None:
        try:
            self.session.run()
        finally:
            try:
                self.sock.close()
            except OSError:
                pass
            self.server._forget(self)

    def drain_and_close(self, timeout: float | None) -> None:
        """Finish streaming in-flight jobs, then unblock and join the session."""
        self.session.drain(timeout)
        try:
            # EOF the read side: the session's request loop sees end of
            # input, emits its final events and exits cleanly
            self.sock.shutdown(socket.SHUT_RD)
        except OSError:
            pass  # already gone
        self.thread.join(timeout)
        try:
            self.sock.close()
        except OSError:
            pass


class DetectionServer:
    """A threaded-socket, multi-client server over one shared service.

    Usage::

        with DetectionService(workers=4, store=store) as service:
            with DetectionServer(service, host="127.0.0.1", port=0) as server:
                host, port = server.address
                ...                       # clients connect and submit
            # __exit__ == shutdown(): drain in-flight jobs, refuse new ones

    ``port=0`` binds an ephemeral port; read the real one from
    :attr:`address` after :meth:`start`.
    """

    def __init__(
        self,
        service: DetectionService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        auth_token: str | None = None,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
        idle_timeout: float | None = None,
        submit_quota: int = 0,
        backlog: int = 128,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.auth_token = auth_token
        self.max_line_bytes = max_line_bytes
        self.idle_timeout = idle_timeout
        self.submit_quota = submit_quota
        self.backlog = backlog
        self.draining = False
        self.total_connections = 0
        self._listener: socket.socket | None = None
        self._acceptor: threading.Thread | None = None
        self._connections: dict[int, _Connection] = {}
        self._lock = threading.Lock()
        self._started = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Bind, listen and start accepting; returns ``(host, port)``."""
        if self._started:
            raise RuntimeError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(self.backlog)
        self._listener = listener
        self.host, self.port = listener.getsockname()[:2]
        self._started = True
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="serve-acceptor", daemon=True
        )
        self._acceptor.start()
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — meaningful after :meth:`start`."""
        return self.host, self.port

    def __enter__(self) -> "DetectionServer":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while True:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                if self.draining:
                    sock.close()
                    continue
                self.total_connections += 1
                connection = _Connection(self, sock, peer, self.total_connections)
                self._connections[connection.conn_id] = connection
                # started under the lock so shutdown() never sees (and
                # tries to join) a registered-but-unstarted thread
                connection.thread.start()

    def _forget(self, connection: _Connection) -> None:
        with self._lock:
            self._connections.pop(connection.conn_id, None)

    def shutdown(self, *, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Stop the server.

        With ``drain`` (the default): stop accepting, refuse new submits on
        every live session (their guard now answers an ``error`` event),
        let in-flight jobs finish streaming, then close the connections.
        Without ``drain``: connections are torn down immediately; the
        service itself still completes admitted jobs internally.
        """
        with self._lock:
            self.draining = True
            connections = list(self._connections.values())
        if self._listener is not None:
            # shutdown() before close(): close() alone does not wake a
            # thread blocked in accept() on Linux, shutdown() does
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        if self._acceptor is not None:
            self._acceptor.join(timeout)
        for connection in connections:
            if drain:
                connection.drain_and_close(timeout)
            else:
                try:
                    connection.sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    connection.sock.close()
                except OSError:
                    pass
                connection.thread.join(timeout)

    # -- session hooks --------------------------------------------------
    def _submit_guard(self) -> str | None:
        if self.draining:
            return "server draining: new submissions refused"
        return None

    def _stats_extra(self) -> dict[str, Any]:
        with self._lock:
            return {
                "server": {
                    "connections": len(self._connections),
                    "total_connections": self.total_connections,
                    "draining": self.draining,
                    "auth_required": self.auth_token is not None,
                    "submit_quota": self.submit_quota,
                }
            }

    # -- introspection --------------------------------------------------
    def connection_count(self) -> int:
        with self._lock:
            return len(self._connections)
