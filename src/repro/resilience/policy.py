"""Recovery policies consumed by the real execution paths.

The counterpart of :mod:`repro.resilience.faults`: where the fault plane
breaks things on purpose, this module is how the service/executor/store
layers absorb those breaks (and the real-world failures they model).

* :class:`RetryPolicy` — bounded attempts with deterministic exponential
  backoff and an exception classifier (``LockTimeout`` and transient I/O
  errors retry; a deliberate :class:`DetectorTimeout` does not).
* :func:`call_with_timeout` — run a callable with a wall-clock budget;
  on expiry raise :class:`DetectorTimeout` and let the caller degrade
  gracefully (the helper thread is a daemon and is abandoned — Python
  cannot safely kill a thread, so a wedged detector leaks one thread,
  never the batch).
* :class:`CircuitBreaker` — quarantine a repeatedly-failing detector:
  after ``threshold`` *consecutive* failures the circuit opens and calls
  fail fast with :class:`CircuitOpen`; after ``reset_after`` seconds one
  probe call is admitted (half-open) and its outcome closes or re-opens
  the circuit.
* :class:`ResilienceConfig` — the service-facing bundle of knobs, with
  factories for the per-concern policies.
* :func:`failure_record` — the structured ``failure`` dict attached to an
  ``EntryResult`` when an entry degrades instead of completing.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from repro.resilience.faults import FaultInjected

T = TypeVar("T")


class DetectorTimeout(TimeoutError):
    """A detector exceeded its per-entry wall-clock budget.

    Not retryable by default: the timeout *is* the policy decision —
    re-running a wedged detector would just wedge again."""


class CircuitOpen(RuntimeError):
    """Fast-fail: the circuit for this detector is open (quarantined)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    ``backoff(attempt)`` is a pure function of the policy and the attempt
    number — no jitter — so a retried schedule is reproducible, matching
    the determinism contract of the fault plane.
    """

    attempts: int = 3
    base_delay: float = 0.005
    max_delay: float = 0.25
    multiplier: float = 2.0
    #: exception types worth retrying (transient by construction)
    retryable: tuple[type[BaseException], ...] = (
        OSError,
        TimeoutError,
        ConnectionError,
        FaultInjected,
    )
    #: checked before ``retryable`` — subclasses that must NOT retry
    non_retryable: tuple[type[BaseException], ...] = (DetectorTimeout,)

    def classify(self, error: BaseException) -> bool:
        """True if ``error`` is worth another attempt."""
        if isinstance(error, self.non_retryable):
            return False
        return isinstance(error, self.retryable)

    def backoff(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based), capped."""
        delay = self.base_delay * (self.multiplier ** max(0, attempt - 1))
        return min(delay, self.max_delay)

    def run(
        self,
        fn: Callable[[], T],
        *,
        on_retry: Callable[[int, BaseException], None] | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> T:
        """Call ``fn`` up to ``attempts`` times; re-raise the last error.

        ``on_retry(attempt, error)`` fires before each backoff sleep so
        callers can count retries for their stats.
        """
        last: BaseException | None = None
        for attempt in range(1, max(1, self.attempts) + 1):
            try:
                return fn()
            except Exception as error:
                last = error
                if attempt >= self.attempts or not self.classify(error):
                    raise
                if on_retry is not None:
                    on_retry(attempt, error)
                sleep(self.backoff(attempt))
        raise last  # pragma: no cover - unreachable (loop always returns/raises)


def call_with_timeout(fn: Callable[[], T], timeout: float, *, label: str = "call") -> T:
    """Run ``fn`` with a wall-clock budget; raise :class:`DetectorTimeout` on expiry.

    ``timeout <= 0`` means no budget — ``fn`` runs inline with zero
    overhead.  Otherwise ``fn`` runs on a daemon helper thread; if the
    budget expires the helper is abandoned (it cannot be killed) and the
    caller degrades.  The helper publishes its outcome before setting the
    completion event, so a non-timed-out result is never torn.
    """
    if timeout <= 0:
        return fn()
    done = threading.Event()
    outcome: list[Any] = [None, None]  # [value, error]

    def runner() -> None:
        try:
            outcome[0] = fn()
        except BaseException as error:  # noqa: BLE001 - re-raised in caller
            outcome[1] = error
        finally:
            done.set()

    thread = threading.Thread(target=runner, name=f"timeout:{label}", daemon=True)
    thread.start()
    if not done.wait(timeout):
        raise DetectorTimeout(f"{label} exceeded {timeout:g}s budget")
    if outcome[1] is not None:
        raise outcome[1]
    return outcome[0]


class CircuitBreaker:
    """Consecutive-failure circuit breaker for one detector.

    closed → (``threshold`` consecutive failures) → open → (``reset_after``
    seconds) → half-open single probe → success closes / failure re-opens.
    The clock is injectable so tests drive the state machine directly.
    """

    def __init__(
        self,
        threshold: int = 5,
        reset_after: float = 30.0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.threshold = threshold
        self.reset_after = reset_after
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False
        #: times the circuit transitioned closed/half-open -> open
        self.trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if self._clock() - self._opened_at >= self.reset_after:
                return "half-open"
            return "open"

    def allow(self) -> bool:
        """True if a call may proceed; at most one probe while half-open."""
        with self._lock:
            if self._opened_at is None:
                return True
            if self._clock() - self._opened_at < self.reset_after:
                return False
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            probing = self._probing
            self._probing = False
            self._failures += 1
            if probing or self._failures >= self.threshold:
                if self._opened_at is None or probing:
                    self.trips += 1
                self._opened_at = self._clock()
                self._failures = 0


@dataclass(frozen=True)
class ResilienceConfig:
    """Service-facing resilience knobs (one bundle per ``DetectionService``)."""

    #: attempts per detector invocation (1 = no retries)
    detect_attempts: int = 3
    #: attempts per store read/write (store faults degrade, never fail the entry)
    store_attempts: int = 3
    #: seconds per detector invocation; 0 disables the timeout thread entirely
    detector_timeout: float = 0.0
    #: consecutive failures before a detector's circuit opens; 0 disables
    breaker_threshold: int = 0
    #: seconds an open circuit waits before admitting a probe
    breaker_reset_after: float = 30.0
    backoff_base: float = 0.005
    backoff_max: float = 0.25

    def detect_policy(self) -> RetryPolicy:
        return RetryPolicy(
            attempts=self.detect_attempts,
            base_delay=self.backoff_base,
            max_delay=self.backoff_max,
        )

    def store_policy(self) -> RetryPolicy:
        return RetryPolicy(
            attempts=self.store_attempts,
            base_delay=self.backoff_base,
            max_delay=self.backoff_max,
        )

    def breaker(self) -> CircuitBreaker | None:
        if self.breaker_threshold <= 0:
            return None
        return CircuitBreaker(self.breaker_threshold, self.breaker_reset_after)


def failure_record(
    error: BaseException, *, site: str, attempts: int = 1, **extra: Any
) -> dict[str, Any]:
    """The structured ``failure`` payload carried by a degraded ``EntryResult``."""
    record: dict[str, Any] = {
        "site": site,
        "kind": type(error).__name__,
        "message": str(error),
        "attempts": attempts,
        "retryable": False,
    }
    record.update(extra)
    return record
