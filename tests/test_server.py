"""Tests for the multi-client TCP front-end of the detection service.

Four concerns, mirroring the server checklist:

* **protocol conformance** — golden request scripts are replayed against
  both the stdio :class:`ServeSession` and a live socket server, and the
  two event streams must be identical (modulo timings and the stats
  event's counters): the transports share one dispatch core and can
  never drift;
* **concurrency** — clients see only their own session-local jobs and
  events, a client disconnecting mid-stream neither kills the server nor
  loses anyone else's events, and a ``REPRO_FAULTS``-style storm against
  the server loses zero entries;
* **framing and guards** — oversized lines, truncated frames, invalid
  JSON/UTF-8, unknown ops, wrong auth tokens and exhausted submit quotas
  each answer a structured ``error`` event (or close that one session
  cleanly) without tearing down other sessions;
* **wait determinism** — ``wait`` answers from the session's own job
  table (immune to the service's bounded job-history eviction) and only
  after every ``result``/``job-done`` event of the job is on the wire.
"""

from __future__ import annotations

import io
import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.registry import register_detector
from repro.core.results import DetectionResult
from repro.resilience import faults
from repro.resilience.policy import ResilienceConfig
from repro.service import (
    DetectionServer,
    DetectionService,
    ServeSession,
    ServerError,
    ServiceClient,
)
from repro.store import ArtifactStore

#: opened by default; a test that wants an in-flight job clears it
_GATE = threading.Event()
_GATE.set()


@register_detector(
    "test-gate",
    matrix=False,
    comparison=False,
    description="test-only detector that blocks until the module gate opens",
)
class GatedStubDetector:
    def detect(self, image, context=None):
        _GATE.wait(timeout=60)
        return DetectionResult(binary_name=image.name)


@pytest.fixture(scope="module")
def elf_dir(tmp_path_factory, small_corpus):
    """The small corpus written out as ELF files, service-submission style."""
    from repro.elf.writer import write_elf

    directory = tmp_path_factory.mktemp("server-elves")
    paths = []
    for binary in small_corpus[:4]:
        path = directory / f"{binary.name.replace(':', '_')}.elf"
        path.write_bytes(write_elf(binary.image.elf))
        paths.append(str(path))
    return paths


# ----------------------------------------------------------------------
# Script runners: one for each transport, same requests in
# ----------------------------------------------------------------------

def _payload(requests: list[dict | str]) -> str:
    return "\n".join(
        request if isinstance(request, str) else json.dumps(request)
        for request in requests
    ) + "\n"


def run_stdio(
    requests: list[dict | str],
    *,
    service_kwargs: dict | None = None,
    **session_kwargs,
) -> list[dict]:
    output = io.StringIO()
    with DetectionService(**(service_kwargs or {"workers": 1})) as service:
        session = ServeSession(
            service, io.StringIO(_payload(requests)), output, **session_kwargs
        )
        assert session.run() == 0
    return [json.loads(line) for line in output.getvalue().splitlines()]


def run_tcp(
    requests: list[dict | str],
    *,
    service_kwargs: dict | None = None,
    **server_kwargs,
) -> list[dict]:
    with DetectionService(**(service_kwargs or {"workers": 1})) as service:
        with DetectionServer(service, **server_kwargs) as server:
            with socket.create_connection(server.address, timeout=60) as sock:
                sock.settimeout(60)
                sock.sendall(_payload(requests).encode("utf-8"))
                sock.shutdown(socket.SHUT_WR)
                buffer = b""
                while True:
                    chunk = sock.recv(1 << 16)
                    if not chunk:
                        break
                    buffer += chunk
    return [json.loads(line) for line in buffer.decode("utf-8").splitlines()]


def normalize(events: list[dict]) -> list[dict]:
    """Strip what may legitimately differ between transports: timings and
    the stats event's live counters (the TCP server adds its own block)."""
    normalized = []
    for event in events:
        event = dict(event)
        event.pop("seconds", None)
        if event.get("event") == "stats":
            normalized.append({"event": "stats"})
            continue
        normalized.append(event)
    return normalized


# ----------------------------------------------------------------------
# Protocol conformance: stdio and socket can never drift
# ----------------------------------------------------------------------

class TestConformance:
    def _scripts(self, elf_dir) -> dict[str, tuple[list, dict]]:
        """name -> (requests, guard kwargs shared by session and server)."""
        return {
            "submit-wait-status-stats": (
                [
                    {"op": "submit", "paths": elf_dir[:2], "detectors": ["fetch"]},
                    {"op": "wait", "job": 1},
                    {"op": "status", "job": 1},
                    {"op": "stats"},
                    {"op": "shutdown"},
                ],
                {},
            ),
            "errors-never-fatal": (
                [
                    "this is not json",
                    "[1, 2, 3]",
                    {"op": "frobnicate"},
                    {"op": "submit", "paths": []},
                    {"op": "submit", "paths": ["a.elf"], "detectors": [7]},
                    {"op": "status", "job": 99},
                    {"op": "wait", "job": "x"},
                    {"op": "shutdown"},
                ],
                {},
            ),
            "two-jobs-warm-dedupe": (
                [
                    {"op": "submit", "paths": elf_dir[:1]},
                    {"op": "wait", "job": 1},
                    {"op": "submit", "paths": elf_dir[:2]},
                    {"op": "wait", "job": 2},
                    {"op": "status", "job": 1},
                    {"op": "shutdown"},
                ],
                {},
            ),
            "auth-handshake": (
                [
                    {"op": "stats"},
                    {"op": "auth", "token": "sesame"},
                    {"op": "submit", "paths": elf_dir[:1]},
                    {"op": "wait", "job": 1},
                    {"op": "shutdown"},
                ],
                {"auth_token": "sesame"},
            ),
            "submit-quota": (
                [
                    {"op": "submit", "paths": elf_dir[:1]},
                    {"op": "wait", "job": 1},
                    {"op": "submit", "paths": elf_dir[:1]},
                    {"op": "shutdown"},
                ],
                {"submit_quota": 1},
            ),
        }

    @pytest.mark.parametrize(
        "name",
        [
            "submit-wait-status-stats",
            "errors-never-fatal",
            "two-jobs-warm-dedupe",
            "auth-handshake",
            "submit-quota",
        ],
    )
    def test_stdio_and_socket_streams_are_identical(self, elf_dir, name):
        requests, guards = self._scripts(elf_dir)[name]
        stdio_events = run_stdio(requests, **guards)
        tcp_events = run_tcp(requests, **guards)
        assert normalize(stdio_events) == normalize(tcp_events)

    def test_golden_event_shape(self, elf_dir):
        """Pin the expected stream so a both-transports regression is caught."""
        requests, _ = self._scripts(elf_dir)["submit-wait-status-stats"]
        events = run_tcp(requests)
        kinds = [event["event"] for event in events]
        assert kinds == [
            "accepted", "result", "result", "job-done", "status", "status",
            "stats", "bye",
        ]
        assert events[0] == {
            "event": "accepted", "job": 1, "entries": 2, "units": 2,
        }
        assert all(event["job"] == 1 for event in events[1:3])
        assert events[3] == {"event": "job-done", "job": 1, "ok": 2, "errors": 0}
        assert events[4]["state"] == "done"

    def test_golden_error_shape(self, elf_dir):
        requests, _ = self._scripts(elf_dir)["errors-never-fatal"]
        events = run_tcp(requests)
        kinds = [event["event"] for event in events]
        assert kinds == ["error"] * 7 + ["bye"]

    def test_warm_dedupe_is_visible_on_the_wire(self, elf_dir):
        requests, _ = self._scripts(elf_dir)["two-jobs-warm-dedupe"]
        events = run_tcp(requests)
        results = [event for event in events if event["event"] == "result"]
        assert [event["cached"] for event in results] == [False, True, False]
        assert results[0]["function_starts"] == results[1]["function_starts"]

    def test_stats_events_carry_per_client_and_server_blocks(self, elf_dir):
        script = [
            {"op": "submit", "paths": elf_dir[:1]},
            {"op": "wait", "job": 1},
            {"op": "stats"},
            {"op": "shutdown"},
        ]
        stdio_stats = next(
            e for e in run_stdio(script) if e["event"] == "stats"
        )
        tcp_stats = next(e for e in run_tcp(script) if e["event"] == "stats")
        for stats in (stdio_stats, tcp_stats):
            assert stats["client"]["submits"] == 1
            assert stats["client"]["results_sent"] == 1
            # the resilience counters ride along on every transport
            assert "detector_retries" in stats["resilience"]
            assert "breaker_trips" in stats["resilience"]
        assert "server" not in stdio_stats
        assert tcp_stats["server"]["total_connections"] == 1
        assert tcp_stats["server"]["draining"] is False


# ----------------------------------------------------------------------
# Concurrency: isolation, mid-stream disconnects, fault storms
# ----------------------------------------------------------------------

class TestConcurrency:
    def test_clients_see_only_their_own_jobs_and_events(self, elf_dir):
        rounds = 3
        with DetectionService(workers=2) as service:
            with DetectionServer(service) as server:
                host, port = server.address

                def drive(paths: list[str], collected: list):
                    with ServiceClient.connect(host, port, timeout=60) as client:
                        for _ in range(rounds):
                            job = client.submit(paths)
                            events = list(client.results(job))
                            collected.append((job, events))

                mine: list = []
                theirs: list = []
                threads = [
                    threading.Thread(target=drive, args=(elf_dir[:2], mine)),
                    threading.Thread(target=drive, args=(elf_dir[2:4], theirs)),
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=120)
                    assert not thread.is_alive()

                for collected, paths in ((mine, elf_dir[:2]), (theirs, elf_dir[2:4])):
                    # job ids are session-local: both clients count 1..rounds
                    assert [job for job, _ in collected] == list(range(1, rounds + 1))
                    for job, events in collected:
                        assert sorted(e["name"] for e in events) == sorted(paths)
                        assert {e["job"] for e in events} == {job}
                        assert all(e.get("error") is None for e in events)
                # the service is genuinely shared: each unique binary ran once,
                # every later delivery was a cache hit
                assert service.detector_runs == 4

    def test_disconnect_mid_stream_hurts_nobody(self, elf_dir):
        _GATE.clear()
        try:
            with DetectionService(workers=2) as service:
                with DetectionServer(service) as server:
                    host, port = server.address
                    # the victim: submit a gated job, then vanish mid-stream
                    victim = socket.create_connection((host, port), timeout=30)
                    victim.sendall(
                        (json.dumps({
                            "op": "submit",
                            "paths": elf_dir[:1],
                            "detectors": ["test-gate"],
                        }) + "\n").encode()
                    )
                    reader = victim.makefile("r")
                    accepted = json.loads(reader.readline())
                    assert accepted["event"] == "accepted"
                    victim.close()  # abrupt: no shutdown op, job still running

                    with ServiceClient.connect(host, port, timeout=60) as client:
                        job = client.submit(elf_dir[1:3])
                        _GATE.set()  # let the orphaned job finish too
                        events = list(client.results(job))
                        # the healthy client lost nothing
                        assert sorted(e["name"] for e in events) == sorted(elf_dir[1:3])
                        assert client.summary(job)["ok"] == 2
                        # and the server is still accepting fresh connections
                        with ServiceClient.connect(host, port, timeout=60) as probe:
                            assert probe.stats()["event"] == "stats"
                    # the orphaned job ran to completion inside the service
                    assert service.job(1).wait(timeout=30)
        finally:
            _GATE.set()

    def test_fault_storm_against_server_loses_zero_entries(self, elf_dir, tmp_path):
        # the same spec string REPRO_FAULTS would carry; raise budget (3)
        # strictly below the retry budget (4) makes survival a guarantee
        plan = (
            "seed=11;"
            "detect:raise:rate=0.45,max=3;"
            "worker:kill:rate=0.25;"
            "store.write:torn:rate=0.5"
        )
        clients = 3
        with faults.injected(plan) as injector:
            with DetectionService(
                workers=3,
                store=ArtifactStore(tmp_path / "store"),
                resilience=ResilienceConfig(detect_attempts=4),
            ) as service:
                with DetectionServer(service) as server:
                    host, port = server.address
                    outcomes: list[list[dict]] = [[] for _ in range(clients)]

                    def drive(slot: int):
                        with ServiceClient.connect(host, port, timeout=120) as c:
                            job = c.submit(elf_dir)
                            outcomes[slot].extend(c.results(job))

                    threads = [
                        threading.Thread(target=drive, args=(slot,))
                        for slot in range(clients)
                    ]
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join(timeout=180)
                        assert not thread.is_alive()
                    with ServiceClient.connect(host, port, timeout=60) as c:
                        resilience = c.stats()["resilience"]

        for events in outcomes:
            assert len(events) == len(elf_dir), "an entry was lost in the storm"
            assert all(e.get("error") is None for e in events)
        # the storm actually happened, and the counters made it to the wire
        assert sum(injector.injections.values()) > 0
        if injector.injections.get(("detect", "raise"), 0):
            assert resilience["detector_retries"] > 0
        if injector.injections.get(("worker", "kill"), 0):
            assert resilience["worker_restarts"] > 0

    def test_env_storm_through_cli_server(self, elf_dir):
        """The full stack: a --tcp server subprocess under REPRO_FAULTS."""
        source_root = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(source_root), env.get("PYTHONPATH", "")])
        )
        env["REPRO_FAULTS"] = "seed=5;detect:raise:rate=0.9,max=2"
        server = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--tcp", "127.0.0.1:0", "--workers", "2", "--no-store"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
        )
        try:
            banner = server.stdout.readline().strip()
            assert banner.startswith("listening on "), banner
            host, port = banner.rsplit(" ", 1)[1].rsplit(":", 1)
            with ServiceClient.connect(host, int(port), timeout=120) as client:
                job = client.submit(elf_dir)
                events = list(client.results(job))
                stats = client.stats()
            assert len(events) == len(elf_dir)
            assert all(e.get("error") is None for e in events)
            # the plan injected (deterministically) and the service retried
            assert stats["resilience"]["detector_retries"] > 0
        finally:
            server.terminate()
            server.wait(timeout=30)


# ----------------------------------------------------------------------
# Framing and guard hooks
# ----------------------------------------------------------------------

def _lines(sock: socket.socket):
    """Read newline-framed JSON events until the server closes the stream."""
    buffer = b""
    sock.settimeout(30)
    while True:
        try:
            chunk = sock.recv(1 << 16)
        except OSError:
            break
        if not chunk:
            break
        buffer += chunk
    return [json.loads(line) for line in buffer.decode().splitlines()]


class TestFramingAndGuards:
    @pytest.fixture()
    def server(self, elf_dir):
        with DetectionService(workers=1) as service:
            with DetectionServer(service, max_line_bytes=2048) as srv:
                yield srv

    def test_oversized_line_closes_only_that_session(self, server, elf_dir):
        bystander = ServiceClient.connect(*server.address, timeout=60)
        with socket.create_connection(server.address, timeout=30) as sock:
            sock.sendall(b'{"op": "stats", "padding": "' + b"x" * 4096 + b'"}\n')
            events = _lines(sock)
        assert len(events) == 1
        assert events[0]["event"] == "error"
        assert "oversized" in events[0]["error"]
        # the bystander session survived the hostile one
        job = bystander.submit(elf_dir[:1])
        assert len(list(bystander.results(job))) == 1
        bystander.close()

    def test_truncated_frame_is_an_error_then_clean_close(self, server):
        with socket.create_connection(server.address, timeout=30) as sock:
            sock.sendall(b'{"op": "sta')  # no newline, then EOF
            sock.shutdown(socket.SHUT_WR)
            events = _lines(sock)
        assert [e["event"] for e in events] == ["error"]
        assert "truncated" in events[0]["error"]

    def test_invalid_json_and_unknown_op_keep_the_session(self, server):
        with socket.create_connection(server.address, timeout=30) as sock:
            reader = sock.makefile("r")
            for bad in (b"this is garbage\n", b'{"op": "frobnicate"}\n', b"\xff\xfe\n"):
                sock.sendall(bad)
                event = json.loads(reader.readline())
                assert event["event"] == "error"
            sock.sendall(b'{"op": "stats"}\n')
            event = json.loads(reader.readline())
            assert event["event"] == "stats"
            assert event["client"]["errors_sent"] == 3

    def test_wrong_token_closes_correct_token_serves(self, elf_dir):
        with DetectionService(workers=1) as service:
            with DetectionServer(service, auth_token="sesame") as server:
                with pytest.raises(ServerError, match="bad auth token"):
                    ServiceClient.connect(*server.address, token="wrong", timeout=30)
                with socket.create_connection(server.address, timeout=30) as sock:
                    sock.sendall(b'{"op": "auth", "token": "nope"}\n')
                    events = _lines(sock)
                # error, then clean close: no bye, no further events
                assert [e["event"] for e in events] == ["error"]

                with ServiceClient.connect(
                    *server.address, token="sesame", timeout=60
                ) as client:
                    job = client.submit(elf_dir[:1])
                    assert len(list(client.results(job))) == 1

    def test_unauthenticated_ops_are_refused_not_fatal(self):
        with DetectionService(workers=1) as service:
            with DetectionServer(service, auth_token="sesame") as server:
                with socket.create_connection(server.address, timeout=30) as sock:
                    reader = sock.makefile("r")
                    sock.sendall(b'{"op": "stats"}\n')
                    refusal = json.loads(reader.readline())
                    assert refusal["event"] == "error"
                    assert "authentication required" in refusal["error"]
                    sock.sendall(b'{"op": "auth", "token": "sesame"}\n')
                    assert json.loads(reader.readline())["event"] == "auth-ok"
                    sock.sendall(b'{"op": "stats"}\n')
                    assert json.loads(reader.readline())["event"] == "stats"

    def test_submit_quota_is_per_session(self, elf_dir):
        with DetectionService(workers=1) as service:
            with DetectionServer(service, submit_quota=1) as server:
                with ServiceClient.connect(*server.address, timeout=60) as client:
                    job = client.submit(elf_dir[:1])
                    list(client.results(job))
                    with pytest.raises(ServerError, match="quota"):
                        client.submit(elf_dir[:1])
                # a fresh session gets a fresh quota
                with ServiceClient.connect(*server.address, timeout=60) as client:
                    assert client.submit(elf_dir[:1]) == 1

    def test_idle_timeout_reaps_silent_connections(self):
        with DetectionService(workers=1) as service:
            with DetectionServer(service, idle_timeout=0.2) as server:
                with socket.create_connection(server.address, timeout=30) as sock:
                    events = _lines(sock)  # send nothing, just listen
        assert [e["event"] for e in events] == ["error"]
        assert "idle timeout" in events[0]["error"]


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------

class TestDrain:
    def test_drain_finishes_in_flight_refuses_new_closes_clean(self, elf_dir):
        _GATE.clear()
        try:
            service = DetectionService(workers=2)
            server = DetectionServer(service)
            server.start()
            host, port = server.address
            client = ServiceClient.connect(host, port, timeout=60)
            job = client.submit(elf_dir[:1], detectors=["test-gate"])

            shutdown_thread = threading.Thread(
                target=server.shutdown, kwargs={"drain": True, "timeout": 60}
            )
            shutdown_thread.start()
            deadline = time.monotonic() + 10
            while not server.draining and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.draining

            # new submissions on a live session answer a refusal event
            with pytest.raises(ServerError, match="draining"):
                client.submit(elf_dir[1:2])

            _GATE.set()  # let the in-flight job finish
            shutdown_thread.join(timeout=60)
            assert not shutdown_thread.is_alive()

            # the in-flight job's events all arrived before the close
            events = list(client.results(job, timeout=10))
            assert len(events) == 1 and events[0]["name"] == elf_dir[0]
            assert client.summary(job)["ok"] == 1
            client.close()
            service.close()

            with pytest.raises(OSError):
                socket.create_connection((host, port), timeout=5)
        finally:
            _GATE.set()


# ----------------------------------------------------------------------
# Wait determinism (the status/wait race, fixed)
# ----------------------------------------------------------------------

class TestWaitDeterminism:
    def test_wait_answers_after_service_evicts_the_job(self, elf_dir):
        """Regression: ``wait``/``status`` used to look jobs up in the
        *service's* bounded history table, so a job finishing (and being
        evicted) between a client's ``status`` and ``wait`` answered
        "unknown job" — nondeterministically.  The session now keeps its
        own reference for its whole lifetime."""
        output = io.StringIO()
        with DetectionService(workers=1, job_history=1) as service:
            session = ServeSession(service, io.StringIO(), output)
            for job_id in range(1, 5):
                assert session._handle({"op": "submit", "paths": elf_dir[:1]})
                assert session._jobs[job_id].wait(timeout=30)
            # the service has forgotten job 1 ...
            with pytest.raises(KeyError):
                service.job(1)
            # ... but the session answers for it, deterministically
            assert session._handle({"op": "wait", "job": 1})
            assert session._handle({"op": "status", "job": 1})
            session.drain(timeout=30)
        events = [json.loads(line) for line in output.getvalue().splitlines()]
        answers = [e for e in events if e["event"] == "status"][-2:]
        for answer in answers:
            assert answer == {
                "event": "status", "job": 1, "state": "done", "done": 1, "total": 1,
            }

    def test_wait_status_lands_after_every_result_event(self, elf_dir):
        """``wait`` joins the job's drainer: its ``status`` answer must
        follow the job's last ``result`` and its ``job-done`` on the wire
        (no sleeps: the ordering is structural, so one pass per round)."""
        for _ in range(5):
            output = io.StringIO()
            with DetectionService(workers=2) as service:
                session = ServeSession(service, io.StringIO(), output)
                assert session._handle({"op": "submit", "paths": elf_dir})
                assert session._handle({"op": "wait", "job": 1})
                session.drain(timeout=30)
            events = [json.loads(line) for line in output.getvalue().splitlines()]
            kinds = [event["event"] for event in events]
            status_at = kinds.index("status")
            assert kinds.count("result") == len(elf_dir)
            assert all(
                index < status_at
                for index, kind in enumerate(kinds)
                if kind in ("result", "job-done")
            )
            assert events[status_at]["state"] == "done"
