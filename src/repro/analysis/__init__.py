"""Binary-analysis substrate shared by FETCH and the baseline detectors.

The modules in this package implement the building blocks the paper composes
into detection strategies:

* :mod:`repro.analysis.recursive` — *safe* recursive disassembly,
* :mod:`repro.analysis.jumptable` — conservative jump-table resolution,
* :mod:`repro.analysis.noreturn` — non-returning function analysis,
* :mod:`repro.analysis.callconv` — calling-convention validation,
* :mod:`repro.analysis.xrefs` — function-pointer collection and validation,
* :mod:`repro.analysis.stackheight` — static stack-height analysis
  (the angr/DYNINST-style analysis compared in Table IV),
* :mod:`repro.analysis.prologue` — prologue / signature matching,
* :mod:`repro.analysis.linearscan` — linear sweep of code gaps,
* :mod:`repro.analysis.gadgets` — ROP gadget counting (§V-A),
* :mod:`repro.analysis.gaps` — non-disassembled region computation.
"""

from repro.analysis.result import DisassembledFunction, DisassemblyResult
from repro.analysis.recursive import RecursiveDisassembler
from repro.analysis.jumptable import resolve_jump_table
from repro.analysis.noreturn import NoreturnAnalysis
from repro.analysis.callconv import satisfies_calling_convention
from repro.analysis.xrefs import collect_potential_pointers, validate_function_pointer
from repro.analysis.stackheight import StackHeightAnalysis
from repro.analysis.prologue import match_prologues
from repro.analysis.linearscan import linear_scan_gaps
from repro.analysis.gadgets import count_rop_gadgets
from repro.analysis.gaps import compute_gaps

__all__ = [
    "DisassembledFunction",
    "DisassemblyResult",
    "RecursiveDisassembler",
    "resolve_jump_table",
    "NoreturnAnalysis",
    "satisfies_calling_convention",
    "collect_potential_pointers",
    "validate_function_pointer",
    "StackHeightAnalysis",
    "match_prologues",
    "linear_scan_gaps",
    "count_rop_gadgets",
    "compute_gaps",
]
