"""§V-A — errors introduced by FDEs (false starts, ROP gadget exposure)."""

from repro.eval import run_fde_error_study
from repro.eval.tables import render_fde_errors


def test_sec5a_fde_introduced_errors(benchmark, selfbuilt_corpus, report_writer):
    study = benchmark.pedantic(
        run_fde_error_study, args=(selfbuilt_corpus,), rounds=1, iterations=1
    )
    report_writer("sec5a_fde_errors", render_fde_errors(study))

    # Paper: 34,772 false starts, all but 3 from non-contiguous functions,
    # spread over roughly a third of the binaries, and they expose ROP
    # gadgets that CFI policies would have to allow.
    assert study.total_false_positives > 0
    assert study.from_non_contiguous_functions >= 0.95 * study.total_false_positives
    assert 0 < study.binaries_with_false_positives < study.binary_count
    assert study.rop_gadgets_at_false_starts > 0
