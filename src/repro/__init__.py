"""FETCH reproduction: function detection from exception-handling information.

This library reproduces "Towards Optimal Use of Exception Handling
Information for Function Detection" (Pang et al., DSN 2021).  The most common
entry points:

* :class:`repro.core.FetchDetector` — detect function starts in an x86-64 ELF
  binary using ``.eh_frame`` call frames, safe recursive disassembly,
  function-pointer validation and Algorithm 1.
* :class:`repro.elf.BinaryImage` — load a binary for analysis.
* :mod:`repro.synth` — generate synthetic evaluation corpora with ground
  truth.
* :mod:`repro.baselines` — strategy models of the tools the paper compares
  against.
* :mod:`repro.eval` — runners and renderers for every table and figure of the
  paper's evaluation.
* :mod:`repro.core.registry` — the declarative detector registry every
  consumer looks detectors up in.
* :mod:`repro.store` — the content-addressed artifact store that makes warm
  re-runs of corpora, detector results and scenario matrices near-instant.
* :mod:`repro.service` — the persistent detection service: batch submission
  over a long-lived, digest-sharded worker pool with store-backed dedupe.

See ``docs/ARCHITECTURE.md`` for the module-by-module guide and
``docs/EXTENDING.md`` for worked extension examples.
"""

from repro.core import FetchDetector, FetchOptions
from repro.elf import BinaryImage
from repro.store import ArtifactStore

__version__ = "1.1.0"

__all__ = ["FetchDetector", "FetchOptions", "BinaryImage", "ArtifactStore", "__version__"]
