"""Binary Ninja-style detector model.

Binary Ninja combines recursive descent from the entry point with linear
sweep of unexplored regions and a pointer sweep of data sections.  That keeps
its false-negative count low but — as the paper's Table III shows — the
linear sweep contributes a substantial number of false positives.
"""

from __future__ import annotations

from repro.analysis.linearscan import linear_scan_gaps
from repro.baselines.base import BaselineTool
from repro.core.registry import register_detector
from repro.core.context import AnalysisContext, context_for
from repro.core.results import DetectionResult
from repro.elf.image import BinaryImage


@register_detector(
    "ninja",
    order=60,
    comparison=True,
    cet_aware=True,
    description="recursion, pointer sweep, prologues and linear sweep",
)
class BinaryNinjaLike(BaselineTool):

    def detect(
        self, image: BinaryImage, context: AnalysisContext | None = None
    ) -> DetectionResult:
        context = context_for(image, context)
        result = DetectionResult(binary_name=image.name)
        seeds = {image.entry_point} if image.entry_point else set()
        result.record_stage("seeds", {s for s in seeds if image.is_executable_address(s)})

        disassembler, disassembly, starts = self._recursive(
            image, result.function_starts, context
        )
        result.disassembly = disassembly
        result.record_stage("recursion", starts - result.function_starts)

        # Pointer sweep over data sections (aligned slots).
        pointer_targets = self._aligned_pointer_sweep(image, result, disassembly, context)
        grown = self._grow_from_matches(image, disassembler, disassembly, pointer_targets)
        result.record_stage("pointers", grown - result.function_starts)

        # Prologue matching over gaps, then linear sweep of what remains.
        gaps = self._gaps(image, disassembly)
        matches = {
            m
            for m in self._prologue_matches(image, gaps, context)
            if m not in result.function_starts
        }
        grown = self._grow_from_matches(image, disassembler, disassembly, matches)
        result.record_stage("prologue", grown - result.function_starts)

        scanned = linear_scan_gaps(
            image,
            self._gaps(image, disassembly),
            context=context,
            require_endbr=image.uses_cet,
        )
        result.record_stage("linear", scanned - result.function_starts)
        return result
