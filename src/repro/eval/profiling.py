"""cProfile driver for the cold detection path.

Used by ``fetch-detect profile`` and ``tools/profile_cold.py`` to attribute
cold single-binary latency to pipeline stages.  The image and analysis
context are constructed *inside* the profiled region: a cold run pays ELF
and eh_frame parsing too, so the profile must charge them, matching the
protocol of ``benchmarks/bench_cold_latency.py``.
"""

from __future__ import annotations

import cProfile
import io
import pstats

from repro.core import AnalysisContext
from repro.core.registry import create_detector
from repro.elf.image import BinaryImage

#: sort orders accepted by :func:`profile_cold_detection`
SORT_ORDERS = ("cumulative", "tottime", "calls")


def profile_cold_detection(
    data: bytes,
    *,
    name: str = "binary",
    detector: str = "fetch",
    top: int = 25,
    sort: str = "cumulative",
) -> str:
    """Profile one cold detection of ``data`` (ELF bytes); returns the report.

    Everything a first-time request pays — ELF parse, eh_frame parse,
    decoding, the analysis pipeline — runs under the profiler.  The report
    is the ``pstats`` table of the ``top`` functions by ``sort`` order.
    """
    if sort not in SORT_ORDERS:
        raise ValueError(f"unknown sort order {sort!r} (choose from {SORT_ORDERS})")
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        image = BinaryImage.from_bytes(data, name=name)
        create_detector(detector).detect(image, AnalysisContext(image))
    finally:
        profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(sort).print_stats(top)
    return stream.getvalue()
