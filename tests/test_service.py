"""Tests for the persistent detection service.

Covers the service checklist: batch submission with streamed results,
digest-sharded dedupe (in-batch, cross-batch and cross-process through the
store), job states and progress, the failure paths (a detector raising
mid-batch fails only that binary's job entry; an unreadable file likewise),
backpressure under both policies (``reject`` refuses the batch, ``block``
pipelines it), the JSON-lines serve protocol, and the ``fetch-detect
submit`` client whose warm re-run performs zero detector invocations.
"""

from __future__ import annotations

import io
import json
import threading
import time

import pytest

from repro.cli import main
from repro.core.registry import create_detectors
from repro.core.results import DetectionResult
from repro.eval.executor import ShardedWorkerPool
from repro.service import (
    DetectionService,
    JobState,
    ServeSession,
    ServiceClosed,
    ServiceSaturated,
)
from repro.store import ArtifactStore


@pytest.fixture(scope="module")
def elf_dir(tmp_path_factory, small_corpus):
    """The small corpus written out as ELF files, service-submission style."""
    from repro.elf.writer import write_elf

    directory = tmp_path_factory.mktemp("service-elves")
    paths = []
    for binary in small_corpus[:4]:
        path = directory / f"{binary.name.replace(':', '_')}.elf"
        path.write_bytes(write_elf(binary.image.elf))
        paths.append(str(path))
    return paths


class SlowDetector:
    """A gated stub detector: blocks until released, then reports nothing."""

    name = "slow-stub"

    def __init__(self, gate: threading.Event):
        self.gate = gate
        self.calls = 0

    def detect(self, image, context=None):
        self.gate.wait(timeout=30)
        self.calls += 1
        return DetectionResult(binary_name=image.name)


class ExplodingDetector:
    """Raises on one specific binary name, succeeds (empty) on the rest."""

    name = "exploding-stub"

    def __init__(self, poison: str):
        self.poison = poison

    def detect(self, image, context=None):
        if self.poison in image.name:
            raise RuntimeError("synthetic mid-batch failure")
        return DetectionResult(binary_name=image.name)


# ----------------------------------------------------------------------
# Submission, streaming and dedupe
# ----------------------------------------------------------------------

class TestSubmission:
    def test_path_batch_streams_results(self, elf_dir):
        with DetectionService(workers=2) as service:
            handle = service.submit(elf_dir)
            results = list(handle.results())
        assert len(results) == len(elf_dir)
        assert handle.state is JobState.DONE
        assert handle.progress() == (len(elf_dir), len(elf_dir))
        assert all(result.ok and result.detector == "fetch" for result in results)
        assert all(result.function_starts for result in results)
        # results() replays after completion
        assert [r.name for r in handle.results()] == [r.name for r in results]

    def test_corpus_entries_carry_metrics(self, small_corpus):
        with DetectionService(workers=2) as service:
            handle = service.submit(small_corpus[:3])
            results = list(handle.results())
        assert all(result.metrics is not None for result in results)
        for result in results:
            assert result.metrics.true_count > 0
            assert result.metrics.recall > 0.9

    def test_results_match_direct_detection(self, elf_dir):
        from repro.core import AnalysisContext, FetchDetector
        from repro.elf.image import BinaryImage

        with DetectionService(workers=3) as service:
            by_name = {r.name: r for r in service.submit(elf_dir).results()}
        for path in elf_dir:
            image = BinaryImage.from_file(path)
            expected = FetchDetector().detect(image, AnalysisContext(image))
            assert by_name[path].function_starts == tuple(
                sorted(expected.function_starts)
            )

    def test_duplicate_binaries_dedupe_in_batch(self, elf_dir):
        with DetectionService(workers=2) as service:
            handle = service.submit([elf_dir[0]] * 4)
            results = list(handle.results())
        assert service.detector_runs == 1
        assert sum(result.cached for result in results) == 3
        assert len({result.function_starts for result in results}) == 1

    def test_store_dedupes_across_services(self, elf_dir, tmp_path):
        store_root = tmp_path / "store"
        with DetectionService(workers=2, store=ArtifactStore(store_root)) as cold:
            list(cold.submit(elf_dir).results())
            assert cold.detector_runs == len(elf_dir)

        # a brand-new service (a "restarted process") over the same store
        with DetectionService(workers=2, store=ArtifactStore(store_root)) as warm:
            results = list(warm.submit(elf_dir).results())
            stats = warm.stats()
        assert warm.detector_runs == 0
        assert all(result.cached for result in results)
        assert stats["store"]["detection_hits"] == len(elf_dir)
        assert stats["store"]["detection_misses"] == 0

    def test_multiple_detectors_and_instances(self, elf_dir):
        exploding = ExplodingDetector(poison="<nowhere>")
        with DetectionService(workers=2) as service:
            handle = service.submit(elf_dir[:2], detectors=["fetch", exploding])
            results = list(handle.results())
        assert handle.total == 4
        assert {result.detector for result in results} == {"fetch", "exploding-stub"}

    def test_unknown_detector_fails_fast(self, elf_dir):
        with DetectionService(workers=1) as service:
            with pytest.raises(KeyError, match="nonexistent"):
                service.submit(elf_dir, detectors=["nonexistent"])
            assert service.stats()["pending_entries"] == 0

    def test_submit_after_close_raises(self, elf_dir):
        service = DetectionService(workers=1)
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit(elf_dir)

    def test_unsubmittable_item_fails_only_that_entry(self, elf_dir):
        with DetectionService(workers=1) as service:
            results = list(service.submit([elf_dir[0], object()]).results())
        by_ok = sorted(results, key=lambda result: result.ok)
        assert not by_ok[0].ok and "unsubmittable item" in by_ok[0].error
        assert by_ok[1].ok

    def test_bounded_state_in_long_lived_service(self, elf_dir):
        with DetectionService(workers=1, job_history=3) as service:
            for _ in range(10):
                assert service.submit(elf_dir[:1]).wait(timeout=30)
            stats = service.stats()
        assert stats["jobs"] == 10
        assert stats["jobs_retained"] <= 3 + 1  # history + possibly-running newest
        assert len(service._memo) <= service.MEMO_LIMIT


# ----------------------------------------------------------------------
# Failure paths
# ----------------------------------------------------------------------

class TestFailurePaths:
    def test_detector_raising_fails_only_that_entry(self, elf_dir):
        poison = elf_dir[1]
        with DetectionService(workers=2) as service:
            handle = service.submit(elf_dir, detectors=[ExplodingDetector(poison)])
            results = list(handle.results())

        assert handle.state is JobState.DONE
        failed = [result for result in results if not result.ok]
        assert [result.name for result in failed] == [poison]
        assert "RuntimeError: synthetic mid-batch failure" in failed[0].error
        assert len([result for result in results if result.ok]) == len(elf_dir) - 1

    def test_unreadable_file_fails_only_that_entry(self, elf_dir, tmp_path):
        missing = str(tmp_path / "never-written.elf")
        with DetectionService(workers=2) as service:
            handle = service.submit([elf_dir[0], missing, elf_dir[1]])
            results = list(handle.results())
        assert service.detector_runs == 2
        by_name = {result.name: result for result in results}
        assert not by_name[missing].ok and "Error" in by_name[missing].error
        assert by_name[elf_dir[0]].ok and by_name[elf_dir[1]].ok

    def test_non_elf_bytes_fail_only_that_entry(self, elf_dir, tmp_path):
        junk = tmp_path / "junk.elf"
        junk.write_bytes(b"definitely not an ELF file")
        with DetectionService(workers=1) as service:
            results = list(service.submit([str(junk), elf_dir[0]]).results())
        by_name = {result.name: result for result in results}
        assert not by_name[str(junk)].ok
        assert by_name[elf_dir[0]].ok

    def test_failed_detection_is_not_cached(self, elf_dir, tmp_path):
        poison = elf_dir[0]
        store = ArtifactStore(tmp_path / "store")
        with DetectionService(workers=1, store=store) as service:
            list(service.submit([poison], detectors=[ExplodingDetector(poison)]).results())
            # the failure must not have poisoned the cache for a healthy run
            results = list(service.submit([poison]).results())
        assert results[0].ok and not results[0].cached


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------

class TestBackpressure:
    def test_reject_policy_refuses_overflowing_batch(self, elf_dir):
        gate = threading.Event()
        service = DetectionService(workers=1, queue_limit=2, backpressure="reject")
        try:
            first = service.submit(elf_dir[:2], detectors=[SlowDetector(gate)])
            assert first.state in (JobState.QUEUED, JobState.RUNNING)
            with pytest.raises(ServiceSaturated, match="queue limit 2"):
                service.submit(elf_dir[:1])
            gate.set()
            assert first.wait(timeout=30)
            # capacity freed: the same submission is admitted now
            second = service.submit(elf_dir[:1])
            assert second.wait(timeout=30)
        finally:
            gate.set()
            service.close()

    def test_reject_never_partially_enqueues(self, elf_dir):
        gate = threading.Event()
        service = DetectionService(workers=1, queue_limit=1, backpressure="reject")
        try:
            service.submit(elf_dir[:1], detectors=[SlowDetector(gate)])
            before = service.stats()["pending_entries"]
            with pytest.raises(ServiceSaturated):
                service.submit(elf_dir[:3])
            assert service.stats()["pending_entries"] == before
        finally:
            gate.set()
            service.close()

    def test_block_policy_pipelines_oversized_batch(self, elf_dir):
        # a batch larger than the whole queue drains through it entry by entry
        with DetectionService(workers=1, queue_limit=1, backpressure="block") as service:
            handle = service.submit(elf_dir)
            assert handle.wait(timeout=60)
            assert all(result.ok for result in handle.results())

    def test_block_policy_waits_for_capacity(self, elf_dir):
        gate = threading.Event()
        service = DetectionService(workers=1, queue_limit=1, backpressure="block")
        try:
            service.submit(elf_dir[:1], detectors=[SlowDetector(gate)])
            admitted = []

            def second_submit():
                admitted.append(service.submit(elf_dir[1:2]))

            submitter = threading.Thread(target=second_submit, daemon=True)
            submitter.start()
            submitter.join(timeout=0.3)
            assert submitter.is_alive(), "submit should block while the queue is full"
            gate.set()
            submitter.join(timeout=30)
            assert not submitter.is_alive()
            assert admitted[0].wait(timeout=30)
        finally:
            gate.set()
            service.close()

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="backpressure"):
            DetectionService(workers=1, backpressure="drop")

    def test_rejected_jobs_are_not_retained(self, elf_dir):
        gate = threading.Event()
        service = DetectionService(workers=1, queue_limit=1, backpressure="reject")
        try:
            service.submit(elf_dir[:1], detectors=[SlowDetector(gate)])
            retained_before = service.stats()["jobs_retained"]
            for _ in range(10):
                with pytest.raises(ServiceSaturated):
                    service.submit(elf_dir[:2])
            assert service.stats()["jobs_retained"] == retained_before
            with pytest.raises(KeyError):
                service.job(2)  # a rejected job id is not looked up as queued
        finally:
            gate.set()
            service.close()

    def test_close_during_blocked_submit_completes_job_with_errors(self, elf_dir):
        gate = threading.Event()
        service = DetectionService(workers=1, queue_limit=1, backpressure="block")
        outcome: list = []

        def submitter():
            try:
                service.submit(elf_dir[:3], detectors=[SlowDetector(gate)])
            except ServiceClosed:
                outcome.append("closed")

        submitter_thread = threading.Thread(target=submitter, daemon=True)
        submitter_thread.start()
        deadline = time.monotonic() + 10
        while service.stats()["pending_entries"] < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        time.sleep(0.2)  # let the submitter park on admission for entry 2
        service.close(wait=False)
        submitter_thread.join(timeout=10)
        assert outcome == ["closed"]

        handle = service.job(1)
        gate.set()  # let the one admitted entry finish
        assert handle.wait(timeout=30), "job must still reach DONE after close"
        failed = [result for result in handle.results() if not result.ok]
        assert failed and all("closed" in result.error for result in failed)
        assert len(failed) == 2


# ----------------------------------------------------------------------
# The sharded pool and detector resolution
# ----------------------------------------------------------------------

class TestShardedWorkerPool:
    def test_same_key_runs_in_submission_order_on_one_thread(self):
        observed: list[tuple[int, str]] = []
        with ShardedWorkerPool(4) as pool:
            done = threading.Event()
            digest = "ab" * 32
            for index in range(8):
                pool.submit(
                    digest,
                    lambda i=index: observed.append((i, threading.current_thread().name)),
                )
            pool.submit(digest, done.set)
            assert done.wait(timeout=10)
        assert [index for index, _ in observed] == list(range(8))
        assert len({thread for _, thread in observed}) == 1

    def test_task_exceptions_are_recorded_not_fatal(self):
        with ShardedWorkerPool(1) as pool:
            done = threading.Event()
            pool.submit(0, lambda: 1 / 0)
            pool.submit(0, done.set)
            assert done.wait(timeout=10)
        assert len(pool.task_errors) == 1
        assert isinstance(pool.task_errors[0], ZeroDivisionError)

    def test_submit_after_close_raises(self):
        pool = ShardedWorkerPool(1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(0, lambda: None)


class TestJobHandleTimeout:
    def test_results_timeout_is_a_monotonic_deadline(self):
        """Spurious condition wakeups must not restart the timeout clock.

        Regression: the wait loop used to re-wait the *full* timeout after
        every notification, so a handle poked often enough (progress on
        other jobs sharing the condition) never timed out at all.
        """
        from repro.service.service import JobHandle

        handle = JobHandle(1, total=1)  # no results ever arrive
        stop = threading.Event()

        def nuisance_notifier():
            while not stop.is_set():
                with handle._cond:
                    handle._cond.notify_all()
                time.sleep(0.05)

        noise = threading.Thread(target=nuisance_notifier, daemon=True)
        noise.start()
        try:
            start = time.monotonic()
            with pytest.raises(TimeoutError):
                list(handle.results(timeout=0.4))
            elapsed = time.monotonic() - start
        finally:
            stop.set()
            noise.join(timeout=5)
        assert 0.4 <= elapsed < 2.0


class TestCreateDetectors:
    def test_default_is_fetch(self):
        detectors = create_detectors(None)
        assert [type(d).__name__ for d in detectors] == ["FetchDetector"]
        assert create_detectors([])[0].name == "fetch"

    def test_mixes_names_and_instances(self):
        stub = ExplodingDetector(poison="x")
        resolved = create_detectors(["ghidra", stub, "fetch"])
        assert [getattr(d, "name") for d in resolved] == ["ghidra", "exploding-stub", "fetch"]
        assert resolved[1] is stub

    def test_unknown_name_raises_before_running(self):
        with pytest.raises(KeyError, match="no-such-tool"):
            create_detectors(["fetch", "no-such-tool"])


# ----------------------------------------------------------------------
# The serve protocol
# ----------------------------------------------------------------------

def _serve(requests: list[dict | str], **service_kwargs) -> list[dict]:
    lines = [
        request if isinstance(request, str) else json.dumps(request)
        for request in requests
    ]
    output = io.StringIO()
    with DetectionService(**service_kwargs) as service:
        assert ServeSession(service, io.StringIO("\n".join(lines) + "\n"), output).run() == 0
    return [json.loads(line) for line in output.getvalue().splitlines()]


class TestServeProtocol:
    def test_submit_wait_stats_shutdown(self, elf_dir):
        events = _serve(
            [
                {"op": "submit", "paths": elf_dir[:2], "detectors": ["fetch"]},
                {"op": "wait", "job": 1},
                {"op": "stats"},
                {"op": "shutdown"},
            ],
            workers=2,
        )
        kinds = [event["event"] for event in events]
        assert kinds[0] == "accepted" and kinds[-1] == "bye"
        accepted = events[0]
        assert accepted["job"] == 1 and accepted["units"] == 2

        results = [event for event in events if event["event"] == "result"]
        assert len(results) == 2
        assert all(event["count"] > 0 and "error" not in event for event in results)

        status = next(event for event in events if event["event"] == "status")
        assert status["state"] == "done" and status["done"] == status["total"] == 2
        stats = next(event for event in events if event["event"] == "stats")
        assert stats["detector_runs"] == 2
        assert any(event["event"] == "job-done" for event in events)

    def test_end_of_input_drains_in_flight_jobs(self, elf_dir):
        # no shutdown op: the session must still drain the job before "bye"
        events = _serve([{"op": "submit", "paths": elf_dir[:1]}], workers=1)
        kinds = [event["event"] for event in events]
        assert "job-done" in kinds and kinds[-1] == "bye"

    def test_errors_are_events_not_crashes(self, elf_dir):
        events = _serve(
            [
                "this is not json",
                {"op": "frobnicate"},
                {"op": "submit", "paths": []},
                {"op": "submit", "paths": [5, None]},
                {"op": "submit", "paths": ["a.elf"], "detectors": [7]},
                {"op": "status", "job": 99},
                {"op": "shutdown"},
            ],
            workers=1,
        )
        errors = [event for event in events if event["event"] == "error"]
        assert len(errors) == 6
        assert events[-1]["event"] == "bye"

    def test_drainer_threads_are_pruned(self, elf_dir):
        output = io.StringIO()
        with DetectionService(workers=1) as service:
            session = ServeSession(service, io.StringIO(), output)
            for job_id in range(1, 6):
                assert session._handle({"op": "submit", "paths": [elf_dir[0]]})
                assert session._jobs[job_id].wait(timeout=30)
            deadline = time.monotonic() + 10
            while (
                any(thread.is_alive() for thread in session._drainers.values())
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            assert session._handle({"op": "submit", "paths": [elf_dir[0]]})
            assert set(session._drainers) == {6}, "finished drainers must be pruned"
            assert session._jobs[6].wait(timeout=30)
            assert session.drain(timeout=10)

    def test_saturation_is_an_error_event(self, elf_dir):
        events = _serve(
            [
                {"op": "submit", "paths": elf_dir},
                {"op": "wait", "job": 1},
                {"op": "submit", "paths": elf_dir * 40},
                {"op": "shutdown"},
            ],
            workers=1,
            queue_limit=4,
            backpressure="reject",
        )
        errors = [event for event in events if event["event"] == "error"]
        assert any("queue limit" in event["error"] for event in errors)


# ----------------------------------------------------------------------
# The fetch-detect submit client
# ----------------------------------------------------------------------

class TestSubmitCli:
    def test_warm_submission_does_zero_detector_work(self, elf_dir, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["submit", *elf_dir, "--store", store]) == 0
        cold = capsys.readouterr().out
        assert "0 cached" in cold and f"{len(elf_dir)} detector runs" in cold

        assert main(["submit", *elf_dir, "--store", store]) == 0
        warm = capsys.readouterr().out
        assert "0 detector runs" in warm
        assert f"{len(elf_dir)} cached" in warm
        assert f"{len(elf_dir)} detection hits, 0 misses" in warm

    def test_json_output_carries_stats(self, elf_dir, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["submit", *elf_dir[:2], "--json", "--store", store]) == 0
        record = json.loads(capsys.readouterr().out)
        assert len(record["results"]) == 2
        assert record["stats"]["detector_runs"] == 2
        assert record["stats"]["store"]["detection_misses"] == 2
        assert record["status"] == 0

    def test_submit_reports_entry_errors(self, elf_dir, tmp_path, capsys):
        missing = str(tmp_path / "missing.elf")
        assert main(["submit", elf_dir[0], missing, "--no-store"]) == 1
        captured = capsys.readouterr()
        assert missing in captured.err
        assert elf_dir[0] in captured.out

    def test_submit_rejects_unknown_detector(self, elf_dir, capsys):
        with pytest.raises(SystemExit):
            main(["submit", elf_dir[0], "--detector", "nonexistent"])

    def test_subcommand_word_prefers_existing_file(self, tmp_path, monkeypatch, capsys):
        # a *file* named "serve" is analysed, not routed to the service
        monkeypatch.chdir(tmp_path)
        (tmp_path / "serve").write_bytes(b"not an ELF")
        assert main(["serve"]) == 1
        assert "cannot load" in capsys.readouterr().err
