"""Tests for the emulator and the eh_frame-driven stack unwinder (§III)."""

import pytest

from repro.synth import compile_program
from repro.synth.plan import FunctionPlan, ProgramPlan
from repro.synth.profiles import CompilerFamily, OptLevel, default_profile
from repro.unwind import Emulator, EmulatorTrap, StackUnwinder
from repro.unwind.unwinder import UnwindError  # noqa: F401 - re-export smoke check
from repro.x86.registers import RSP


def build_chain(depth_plans):
    """Compile a program whose call chain ends in an aborting function."""
    profile = default_profile(CompilerFamily.GCC, OptLevel.O2)
    plan = ProgramPlan(name="unwind-test", profile=profile)
    plan.functions = [
        FunctionPlan(
            name="_start", kind="entry", reachable_via="entry", arg_count=0,
            body_statements=2, callees=[depth_plans[0].name], noreturn_callee="exit_impl",
        ),
        FunctionPlan(name="exit_impl", kind="noreturn", is_noreturn=True, arg_count=1,
                     body_statements=2),
    ] + depth_plans
    return compile_program(plan, keep_elf_bytes=False)


@pytest.fixture(scope="module")
def crashing_binary():
    return build_chain([
        FunctionPlan(name="outer", arg_count=2, frame_size=32, saved_registers=2,
                     body_statements=4, callees=["middle"]),
        FunctionPlan(name="middle", arg_count=2, frame_size=16, saved_registers=1,
                     body_statements=3, callees=["inner"]),
        FunctionPlan(name="inner", kind="noreturn", is_noreturn=True, arg_count=1,
                     frame_size=16, saved_registers=1, body_statements=2),
    ])


def run_until_trap(binary):
    emulator = Emulator(binary.image)
    with pytest.raises(EmulatorTrap) as trap:
        emulator.run()
    return emulator, trap.value.state


# ----------------------------------------------------------------------
# Emulator
# ----------------------------------------------------------------------

def test_emulator_traps_in_the_innermost_function(crashing_binary):
    _, state = run_until_trap(crashing_binary)
    inner = crashing_binary.ground_truth.by_name("inner")
    assert inner.address <= state.rip < inner.address + inner.size


def test_emulator_maintains_a_call_trace(crashing_binary):
    emulator, _ = run_until_trap(crashing_binary)
    names = {f.address: f.name for f in crashing_binary.ground_truth.functions}
    callees = [names.get(callee) for _, callee in emulator.call_trace]
    assert callees == ["outer", "middle", "inner"]


def test_emulator_stack_is_eight_byte_slots(crashing_binary):
    emulator, state = run_until_trap(crashing_binary)
    assert state.read_register(RSP) % 8 == 0


def test_emulator_memory_roundtrip():
    from repro.unwind.emulator import MachineState

    state = MachineState()
    state.write_memory(0x1000, 0x1122334455667788, 8)
    assert state.read_memory(0x1000, 8) == 0x1122334455667788
    assert state.read_memory(0x1004, 4) == 0x11223344


def test_emulator_instruction_budget():
    binary = build_chain([
        FunctionPlan(name="spin", arg_count=1, body_statements=2, callees=[]),
    ])
    emulator = Emulator(binary.image)
    with pytest.raises(EmulatorTrap):
        emulator.run(max_instructions=10_000)


def test_emulator_trap_addresses(crashing_binary):
    outer = crashing_binary.ground_truth.by_name("outer")
    emulator = Emulator(crashing_binary.image)
    emulator.trap_addresses.add(outer.address)
    with pytest.raises(EmulatorTrap) as trap:
        emulator.run()
    assert trap.value.state.rip == outer.address


# ----------------------------------------------------------------------
# Unwinder
# ----------------------------------------------------------------------

def test_unwinder_recovers_the_full_call_chain(crashing_binary):
    _, state = run_until_trap(crashing_binary)
    unwinder = StackUnwinder(crashing_binary.image)
    names = {f.address: f.name for f in crashing_binary.ground_truth.functions}
    chain = [names.get(start) for start in unwinder.backtrace(state)]
    assert chain == ["inner", "middle", "outer", "_start"]


def test_unwinder_frames_have_increasing_cfas(crashing_binary):
    _, state = run_until_trap(crashing_binary)
    frames = StackUnwinder(crashing_binary.image).unwind(state)
    cfas = [frame.cfa for frame in frames]
    assert cfas == sorted(cfas)
    assert all(cfa % 8 == 0 for cfa in cfas)


def test_unwinder_return_addresses_point_after_call_sites(crashing_binary):
    emulator, state = run_until_trap(crashing_binary)
    frames = StackUnwinder(crashing_binary.image).unwind(state)
    call_sites = [site for site, _ in emulator.call_trace]
    # Frame i's return address is the instruction after the call site that
    # created frame i (innermost frame first).
    for frame, call_site in zip(frames[:-1], reversed(call_sites)):
        assert frame.return_address is not None
        assert 0 < frame.return_address - call_site <= 5


def test_unwinder_outermost_frame_has_no_return_address(crashing_binary):
    _, state = run_until_trap(crashing_binary)
    frames = StackUnwinder(crashing_binary.image).unwind(state)
    assert frames[-1].return_address is None or frames[-1].function_start == (
        crashing_binary.ground_truth.by_name("_start").address
    )


def test_unwinder_rejects_pc_without_fde(crashing_binary):
    from repro.unwind.emulator import MachineState

    unwinder = StackUnwinder(crashing_binary.image)
    state = MachineState()
    state.rip = 0x10  # unmapped
    assert unwinder.unwind(state) == []


def test_unwinder_with_frame_pointer_functions():
    binary = build_chain([
        FunctionPlan(name="outer", frame="rbp", arg_count=2, frame_size=32,
                     body_statements=3, callees=["inner"]),
        FunctionPlan(name="inner", kind="noreturn", is_noreturn=True, frame="rbp",
                     arg_count=1, body_statements=2),
    ])
    _, state = run_until_trap(binary)
    names = {f.address: f.name for f in binary.ground_truth.functions}
    chain = [names.get(s) for s in StackUnwinder(binary.image).backtrace(state)]
    assert chain == ["inner", "outer", "_start"]
