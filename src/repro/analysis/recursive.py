"""Safe recursive disassembly.

This is the paper's notion of a *safe* approach (§IV-C): follow only control
flow whose targets are certain, resolve indirect jumps only when they match a
proven jump-table pattern, skip indirect calls, detect non-returning callees
with an accurate fix-point analysis, and never guess.  Running it from the
addresses carried by FDEs (plus symbols) is the strategy the paper shows to
reach near-full coverage without introducing false positives.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.jumptable import resolve_jump_table
from repro.analysis.result import DisassembledFunction, DisassemblyResult
from repro.elf.image import BinaryImage
from repro.x86.disassembler import decode_block
from repro.x86.instruction import (
    _F_CALL,
    _F_COND_JUMP,
    _F_CONTROL,
    _F_RET,
    _F_UNCOND_JUMP,
    Instruction,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.context import AnalysisContext

_MAX_FUNCTION_INSTRUCTIONS = 20_000

#: decode-cache probe sentinel ("address not yet decoded")
_UNCACHED = object()

#: Jump-table resolution inspects at most the trailing 24 path entries
#: (``repro.analysis.jumptable._LOOKBACK``), so the per-path history kept by
#: the traversal can be truncated once it grows past this many instructions
#: without changing any resolution outcome.
_PATH_KEEP = 32
_PATH_TRIM_AT = 2 * _PATH_KEEP


class RecursiveDisassembler:
    """Recursive-traversal disassembler with on-demand noreturn analysis.

    With a shared :class:`~repro.core.context.AnalysisContext`, two levels of
    work are shared with every other consumer of the same image:

    * the instruction-decode memo (the context's dict is used directly, so
      the hot path stays at C speed), and
    * fully-explored functions and their noreturn facts.

    Function-level sharing is restricted to *canonical* computations: the
    exploration of a function is cached only when it never leaned on the
    "assume an in-progress callee returns" escape hatch of the noreturn
    fix-point (directly or through a callee's fact).  Such computations
    depend only on the image bytes — not on which seeds the current run
    started from — so a detector produces byte-identical results with a
    shared cache and with a fresh one.  Functions on call cycles stay
    per-instance, exactly as before.
    """

    def __init__(
        self,
        image: BinaryImage,
        *,
        follow_calls: bool = True,
        context: "AnalysisContext | None" = None,
    ):
        self.image = image
        self.follow_calls = follow_calls
        self.context = context
        if context is not None:
            self._decode_cache: dict[int, Instruction | None] = context.decode_cache
            self._shared_functions: dict[int, DisassembledFunction] | None = (
                context.function_cache
            )
            self._shared_noreturn: dict[int, bool] | None = context.noreturn_facts
        else:
            self._decode_cache = {}
            self._shared_functions = None
            self._shared_noreturn = None
        self._noreturn: dict[int, bool] = {}
        self._tainted: set[int] = set()
        self._in_progress: set[int] = set()
        self._last_exec_section = None
        self._last_exec_lo = 0
        self._last_exec_hi = 0
        #: precomputed executable ranges; target checks run hot in traversal
        self._exec_bounds = image._executable_bounds

    # ------------------------------------------------------------------
    def disassemble(self, seeds: set[int]) -> DisassemblyResult:
        """Disassemble starting from ``seeds`` (function start addresses).

        Targets of direct calls discovered along the way are added as new
        function starts, matching how GHIDRA/ANGR grow coverage on top of
        FDEs (§IV-C).
        """
        result = DisassemblyResult()
        worklist = sorted(address for address in seeds if self._is_code(address))
        queued = set(worklist)

        while worklist:
            start = worklist.pop()
            function = self._disassemble_function(start)
            result.functions[start] = function
            result.instructions.update(function.instructions)
            result.call_targets.update(function.call_targets)
            result.code_constants.update(function.code_constants)
            if self.follow_calls:
                for target in function.call_targets:
                    if target not in queued and self._is_code(target):
                        queued.add(target)
                        worklist.append(target)
        return result

    # ------------------------------------------------------------------
    def is_noreturn(self, address: int) -> bool:
        """Whether the function starting at ``address`` never returns."""
        if address not in self._noreturn:
            self._disassemble_function(address)
        return self._noreturn.get(address, False)

    # ------------------------------------------------------------------
    def _is_code(self, address: int) -> bool:
        for bounds in self._exec_bounds:
            if bounds[0] <= address < bounds[1]:
                return True
        return False

    def _decode(self, address: int) -> Instruction | None:
        cache = self._decode_cache
        try:
            return cache[address]
        except KeyError:
            pass
        # Memoize the last executable section: traversal stays inside one
        # section for long stretches, making the binary search redundant.
        section = self._last_exec_section
        if section is None or not (self._last_exec_lo <= address < self._last_exec_hi):
            section = self.image.section_containing(address)
            if section is None or not section.is_executable:
                cache[address] = None
                return None
            self._last_exec_section = section
            self._last_exec_lo = section.address
            self._last_exec_hi = section.end_address
        # Straight-line fall-through dominates traversal, so decode a block
        # of successors into the cache at once (decode failures are stored
        # as ``None`` by decode_block).
        decode_block(
            section.data,
            address - section.address,
            address,
            16,
            cache=cache,
            stop_at_terminator=True,
        )
        return cache[address]

    def _disassemble_function(self, start: int) -> DisassembledFunction:
        """Explore intra-procedural control flow from ``start``."""
        shared = self._shared_functions
        if shared is not None and start in shared and start not in self._tainted:
            # Canonical (assumption-free) computation cached for this image;
            # recomputing it is guaranteed to give the same answer.
            self._noreturn[start] = self._shared_noreturn[start]
            return shared[start]

        function = DisassembledFunction(start=start)
        if start in self._in_progress:
            return function
        self._in_progress.add(start)

        context = self.context
        if context is not None and context._span_index is not None:
            saw_ret, saw_escape, tainted = self._explore_spans(function)
        else:
            saw_ret, saw_escape, tainted = self._explore_linear(function)

        self._in_progress.discard(start)
        # A function is non-returning when no reachable path ends in `ret` and
        # no unresolved construct could hide a return.
        tail_jumps_out = any(
            j.is_unconditional_jump
            and j.branch_target is not None
            and j.branch_target not in function.instructions
            for j in function.jumps
        )
        noreturn = not saw_ret and not saw_escape and not tail_jumps_out and bool(
            function.instructions
        )
        self._noreturn[start] = noreturn
        if tainted:
            self._tainted.add(start)
        elif self._shared_functions is not None and start not in self._shared_functions:
            self._shared_functions[start] = function
            self._shared_noreturn[start] = noreturn
        return function

    def _explore_spans(self, function: DisassembledFunction) -> tuple[bool, bool, bool]:
        """Span-at-a-time traversal, byte-identical to :meth:`_explore_linear`.

        Spans end at the first call or terminator, so interior instructions
        carry at most conditional jumps and a whole unvisited span can be
        consumed with one ``dict.update`` (its conditional-jump worklist
        entries and code constants come precomputed off the span).  Within a
        function, the visited subset of a span is always an address *suffix*
        — every walk entering a span runs to its end unless it hits an
        already-visited instruction, which ends a suffix — so "span start
        unvisited and span end unvisited" proves the whole span is fresh and
        the bulk path applies.  Anything else (a jump into the middle of a
        span, a partially-visited span) takes the per-instruction slow path
        below, which matches the linear loop statement for statement.

        Queueing a conditional-jump target after the bulk update instead of
        mid-walk is observationally equivalent: the only extra addresses in
        ``instructions`` at queue time are later instructions of the same
        span, and the linear loop queues such forward targets only to pop
        them into an immediate already-visited break.

        Code constants are fused into the traversal (``function.
        _code_constants``) so the lazy property never re-walks instructions.

        Path snapshots for queued conditional-jump targets are captured
        lazily as ``(base_path, span_insns, position)`` and materialized
        only when the target is popped still-unvisited — most queued targets
        are consumed by fall-through first, and their snapshot lists were
        pure allocation churn.  A captured base list is never mutated
        afterwards: every continuing bulk branch *rebinds* ``path`` before
        the walk can reach the (mutating) per-instruction slow path.
        """
        context = self.context
        index_get = context._span_index.get
        build_span = context._build_span
        cache = context.decode_cache
        cache_get = cache.get
        image = self.image
        is_code = self._is_code
        instructions = function.instructions
        jumps_append = function.jumps.append
        call_targets_add = function.call_targets.add
        call_sites_append = function.call_sites.append
        constants: set[int] = set()
        start = function.start
        worklist = [start]
        path_cache: dict[int, object] = {start: []}
        saw_ret = False
        saw_escape = False
        tainted = False

        while worklist and len(instructions) < _MAX_FUNCTION_INSTRUCTIONS:
            address = worklist.pop()
            snapshot = path_cache.pop(address, None)
            if address in instructions:
                # The linear loop would pop, then break immediately; skipping
                # the snapshot materialization changes nothing observable.
                continue
            if snapshot is None:
                path = []
            elif snapshot.__class__ is tuple:
                base, base_insns, j = snapshot
                path = (base + base_insns[: j + 1])[-_PATH_KEEP:]
            else:
                path = snapshot
            while address is not None:
                if address in instructions:
                    break
                span = index_get(address)
                if span is None:
                    insn = cache_get(address, _UNCACHED)
                    if insn is _UNCACHED:
                        cache.misses += 1
                        span = build_span(address)
                        if span is None:
                            # Non-code or undecodable first byte.
                            function.had_decode_error = True
                            break
                    elif insn is None:
                        # Remembered decode failure.
                        cache.hits += 1
                        function.had_decode_error = True
                        break
                    else:
                        # Decoded but not a span start (a jump into the
                        # middle of a span): single instruction, linear
                        # semantics, straight off the decode cache.
                        cache.hits += 1
                else:
                    cache.hits += 1
                if span is not None and span.last_addr not in instructions:
                    # Bulk fast path: consume the whole span at C speed.
                    insns = span.insns
                    instructions.update(span.map)
                    constants |= span.constants
                    for j, insn in span.cond_jumps:
                        jumps_append(insn)
                        target = insn.branch_target
                        if target is not None and is_code(target):
                            if target not in instructions and target not in path_cache:
                                worklist.append(target)
                                path_cache[target] = (path, insns, j)
                    last = insns[-1]
                    flags = last._flags
                    if flags & _F_CONTROL:
                        if flags & _F_RET:
                            saw_ret = True
                            break
                        if flags & _F_CALL:
                            target = last.branch_target
                            if target is not None:
                                call_targets_add(target)
                                call_sites_append((target, last.address))
                                returns, assumption = self._call_returns_tracked(target)
                                tainted |= assumption
                                if not returns:
                                    break
                            # Direct returning call or skipped indirect call:
                            # fall through.
                            path = (path + insns)[-_PATH_KEEP:]
                            address = last.end
                            continue
                        if flags & _F_COND_JUMP:
                            # Already queued above (budget-truncated span);
                            # fall through.
                            path = (path + insns)[-_PATH_KEEP:]
                            address = last.end
                            continue
                        if flags & _F_UNCOND_JUMP:
                            jumps_append(last)
                            target = last.branch_target
                            path = (path + insns)[-_PATH_KEEP:]
                            if target is not None:
                                if is_code(target):
                                    address = target
                                    continue
                                break
                            targets = resolve_jump_table(image, path[:-1], last)
                            if targets:
                                for table_target in targets:
                                    if (
                                        table_target not in instructions
                                        and table_target not in path_cache
                                    ):
                                        worklist.append(table_target)
                                        path_cache[table_target] = []
                            else:
                                saw_escape = True
                            break
                        # Remaining terminators (ud2 / hlt) end the path.
                        break
                    if span.failed:
                        # Span ended on undecodable bytes right after ``last``.
                        function.had_decode_error = True
                        break
                    # Span truncated by the decode budget: continue into the
                    # next span.
                    path = (path + insns)[-_PATH_KEEP:]
                    address = last.end
                    continue

                # Slow path (jump into the middle of a span, or the span is
                # partially visited): single instruction, linear semantics.
                if span is not None:
                    insn = span.insns[0]
                instructions[address] = insn
                path.append(insn)
                if len(path) >= _PATH_TRIM_AT:
                    del path[:-_PATH_KEEP]

                flags = insn._flags
                c = insn._consts
                if c is not None:
                    if c.__class__ is int:
                        constants.add(c)
                    else:
                        constants.update(c)

                if flags & _F_CONTROL:
                    if flags & _F_RET:
                        saw_ret = True
                        break
                    if flags & _F_CALL:
                        target = insn.branch_target
                        if target is not None:
                            call_targets_add(target)
                            call_sites_append((target, insn.address))
                            returns, assumption = self._call_returns_tracked(target)
                            tainted |= assumption
                            if returns:
                                address = insn.end
                                continue
                            break
                        address = insn.end
                        continue
                    if flags & _F_COND_JUMP:
                        jumps_append(insn)
                        target = insn.branch_target
                        if target is not None and is_code(target):
                            if target not in instructions and target not in path_cache:
                                worklist.append(target)
                                path_cache[target] = list(path)
                        address = insn.end
                        continue
                    if flags & _F_UNCOND_JUMP:
                        jumps_append(insn)
                        target = insn.branch_target
                        if target is not None:
                            if is_code(target):
                                address = target
                                continue
                            break
                        targets = resolve_jump_table(image, path[:-1], insn)
                        if targets:
                            for table_target in targets:
                                if (
                                    table_target not in instructions
                                    and table_target not in path_cache
                                ):
                                    worklist.append(table_target)
                                    path_cache[table_target] = []
                        else:
                            saw_escape = True
                        break
                    break
                address = insn.end

        function._code_constants = constants
        return saw_ret, saw_escape, tainted

    def _explore_linear(self, function: DisassembledFunction) -> tuple[bool, bool, bool]:
        """The reference per-instruction traversal (``REPRO_SPAN_CACHE=0``
        or context-free operation)."""
        start = function.start
        worklist = [start]
        path_cache: dict[int, list[Instruction]] = {start: []}
        saw_ret = False
        saw_escape = False
        tainted = False
        instructions = function.instructions
        cache_get = self._decode_cache.get
        decode = self._decode

        while worklist and len(instructions) < _MAX_FUNCTION_INSTRUCTIONS:
            address = worklist.pop()
            path = path_cache.pop(address, [])
            while address is not None:
                if address in instructions:
                    break
                insn = cache_get(address, _UNCACHED)
                if insn is _UNCACHED:
                    insn = decode(address)
                if insn is None:
                    function.had_decode_error = True
                    break
                instructions[address] = insn
                path.append(insn)
                if len(path) >= _PATH_TRIM_AT:
                    del path[:-_PATH_KEEP]

                flags = insn._flags
                if flags & _F_CONTROL:
                    if flags & _F_RET:
                        saw_ret = True
                        break
                    if flags & _F_CALL:
                        target = insn.branch_target
                        if target is not None:
                            function.call_targets.add(target)
                            function.call_sites.append((target, insn.address))
                            returns, assumption = self._call_returns_tracked(target)
                            tainted |= assumption
                            if returns:
                                address = insn.end
                                continue
                            break
                        # Indirect call: skipped, assume it returns.
                        address = insn.end
                        continue
                    if flags & _F_COND_JUMP:
                        function.jumps.append(insn)
                        target = insn.branch_target
                        if target is not None and self._is_code(target):
                            if target not in instructions and target not in path_cache:
                                worklist.append(target)
                                path_cache[target] = list(path)
                        address = insn.end
                        continue
                    if flags & _F_UNCOND_JUMP:
                        function.jumps.append(insn)
                        target = insn.branch_target
                        if target is not None:
                            if self._is_code(target):
                                address = target
                                continue
                            break
                        targets = resolve_jump_table(self.image, path[:-1], insn)
                        if targets:
                            for table_target in targets:
                                if (
                                    table_target not in instructions
                                    and table_target not in path_cache
                                ):
                                    worklist.append(table_target)
                                    path_cache[table_target] = []
                        else:
                            saw_escape = True
                        break
                    # Remaining terminators (ud2 / hlt) end the path.
                    break
                # Ordinary instruction: fall through.
                address = insn.end

        return saw_ret, saw_escape, tainted

    def _call_returns(self, target: int) -> bool:
        """Whether a call to ``target`` can fall through."""
        return self._call_returns_tracked(target)[0]

    def _call_returns_tracked(self, target: int) -> tuple[bool, bool]:
        """(can the call fall through, did the answer rely on an assumption).

        The assumption flag is set when the answer leaned — directly or via a
        callee's fact — on "an in-progress function is presumed returning",
        the escape hatch that makes the fix-point's outcome depend on
        traversal order.  Callers propagate it to keep such results out of
        the shared context cache.
        """
        shared = self._shared_noreturn
        if shared is not None and target in shared and target not in self._tainted:
            return not shared[target], False
        if target in self._noreturn:
            return not self._noreturn[target], target in self._tainted
        if target in self._in_progress:
            return True, True
        if not self._is_code(target):
            return True, False
        self._disassemble_function(target)
        return not self._noreturn.get(target, False), target in self._tainted
