#!/usr/bin/env python3
"""Analysing a stripped binary: why exception-handling information matters.

The paper's motivation (Table I) is that real-world binaries usually ship
without symbols but — on x86-64 System-V — always ship with ``.eh_frame``.
This example builds a stripped synthetic binary modelled after a closed-source
application, then compares three detection strategies:

* symbols only (fails: there are none),
* a conventional no-EH pipeline (entry point + recursion + prologues), and
* FETCH (FDEs + safe recursion + pointer validation + Algorithm 1).
"""

from __future__ import annotations

from repro.baselines import DyninstLike
from repro.core import FetchDetector
from repro.synth import compile_program, plan_program
from repro.synth.profiles import CompilerFamily, OptLevel, default_profile
from repro.synth.workloads import WorkloadTraits


def main() -> None:
    profile = default_profile(CompilerFamily.GCC, OptLevel.O3)
    traits = WorkloadTraits(cold_split_multiplier=1.5, is_cpp=True, mean_functions=120)
    plan = plan_program(
        "closed-source-app", profile, seed=7, traits=traits, stripped=True
    )
    binary = compile_program(plan, keep_elf_bytes=False)
    image = binary.image
    truth = binary.ground_truth.function_starts

    print(f"binary: {binary.name}")
    print(f"  functions (ground truth): {len(truth)}")
    print(f"  function symbols        : {len(image.function_symbols)} (stripped)")
    print(f"  FDEs in .eh_frame       : {len(image.fdes)}")

    def report(label: str, detected: set[int]) -> None:
        fp = len(detected - truth)
        fn = len(truth - detected)
        print(f"  {label:<28} detected={len(detected):4d}  FP={fp:3d}  FN={fn:3d}")

    print("\ndetection strategies:")
    report("symbols only", {s.address for s in image.function_symbols})

    conventional = DyninstLike().detect(image)
    report("conventional (no EH info)", conventional.function_starts)

    fetch = FetchDetector().detect(image)
    report("FETCH (EH information)", fetch.function_starts)

    missed = truth - fetch.function_starts
    if missed:
        print("\nfunctions FETCH still misses (by design, harmless):")
        for address in sorted(missed):
            info = binary.ground_truth.by_address(address)
            print(f"  {address:#x}  {info.name}  reachable via: {info.reachable_via}")


if __name__ == "__main__":
    main()
