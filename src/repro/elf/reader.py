"""ELF-64 reader.

Parses the section header table, section contents and the symbol table of an
x86-64 ELF image back into an :class:`~repro.elf.structs.ElfFile`, the shared
in-memory representation all analyses operate on.
"""

from __future__ import annotations

import struct

from repro.elf import constants as C
from repro.elf.structs import ElfFile, Section, Symbol


class ElfParseError(ValueError):
    """Raised when the input is not a supported ELF image."""


def read_elf(data: bytes) -> ElfFile:
    """Parse an ELF image from raw bytes."""
    if data[:4] != C.ELF_MAGIC:
        raise ElfParseError("not an ELF file (bad magic)")
    if data[4] != C.ELFCLASS64 or data[5] != C.ELFDATA2LSB:
        raise ElfParseError("only little-endian ELF64 is supported")

    (
        elf_type,
        machine,
        _version,
        entry_point,
        _phoff,
        shoff,
        _flags,
        _ehsize,
        _phentsize,
        _phnum,
        shentsize,
        shnum,
        shstrndx,
    ) = struct.unpack_from("<HHIQQQIHHHHHH", data, 16)
    if machine != C.EM_X86_64:
        raise ElfParseError(f"unsupported machine type {machine}")

    raw_headers = []
    for index in range(shnum):
        offset = shoff + index * shentsize
        raw_headers.append(struct.unpack_from("<IIQQQQIIQQ", data, offset))

    shstrtab_offset = raw_headers[shstrndx][4]
    shstrtab_size = raw_headers[shstrndx][5]
    shstrtab = data[shstrtab_offset : shstrtab_offset + shstrtab_size]

    def section_name(name_offset: int) -> str:
        end = shstrtab.index(b"\x00", name_offset)
        return shstrtab[name_offset:end].decode()

    sections: list[Section] = []
    section_names: list[str] = []
    for header in raw_headers:
        (sh_name, sh_type, sh_flags, sh_addr, sh_offset, sh_size, sh_link, sh_info,
         sh_align, sh_entsize) = header
        name = section_name(sh_name)
        section_names.append(name)
        if sh_type == C.SHT_NULL:
            continue
        contents = b"" if sh_type == C.SHT_NOBITS else data[sh_offset : sh_offset + sh_size]
        sections.append(
            Section(
                name=name,
                data=contents,
                address=sh_addr,
                sh_type=sh_type,
                flags=sh_flags,
                align=sh_align,
                entsize=sh_entsize,
                link=sh_link,
                info=sh_info,
            )
        )

    symbols = _parse_symbols(data, raw_headers, section_names)
    return ElfFile(
        sections=sections, symbols=symbols, entry_point=entry_point, elf_type=elf_type
    )


def read_elf_file(path: str) -> ElfFile:
    """Parse an ELF image from a file on disk."""
    with open(path, "rb") as stream:
        return read_elf(stream.read())


def _parse_symbols(
    data: bytes, raw_headers: list[tuple], section_names: list[str]
) -> list[Symbol]:
    symbols: list[Symbol] = []
    for header in raw_headers:
        (sh_name, sh_type, _flags, _addr, sh_offset, sh_size, sh_link, _info,
         _align, sh_entsize) = header
        if sh_type != C.SHT_SYMTAB or sh_entsize == 0:
            continue
        strtab_header = raw_headers[sh_link]
        strtab = data[strtab_header[4] : strtab_header[4] + strtab_header[5]]

        def symbol_name(offset: int) -> str:
            end = strtab.index(b"\x00", offset)
            return strtab[offset:end].decode()

        count = sh_size // sh_entsize
        for index in range(1, count):  # skip the null symbol
            entry_offset = sh_offset + index * sh_entsize
            st_name, st_info, _other, st_shndx, st_value, st_size = struct.unpack_from(
                "<IBBHQQ", data, entry_offset
            )
            sec_name = (
                section_names[st_shndx] if 0 < st_shndx < len(section_names) else None
            )
            symbols.append(
                Symbol(
                    name=symbol_name(st_name),
                    address=st_value,
                    size=st_size,
                    sym_type=st_info & 0xF,
                    binding=st_info >> 4,
                    section_name=sec_name,
                )
            )
    return symbols
