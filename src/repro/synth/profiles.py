"""Build profiles controlling synthetic code generation.

A :class:`BuildProfile` plays the role of "compiler + optimisation level" in
the paper's Dataset 2: it sets the frequency of the binary-level constructs
that drive every experiment (cold splitting, tail calls, jump tables,
frame-pointer frames, assembly functions, ...).  The frequencies are loosely
modelled on how GCC and Clang behave at O2/O3/Os/Ofast — higher optimisation
means more hot/cold splitting and more tail calls, ``Os`` means denser code
with less padding — and are the lever by which optimisation levels produce
differently-shaped results in Table III.

:class:`WildProfile` models Dataset 1 (binaries "from the wild"): mostly
stripped, varying language and compiler vintage.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass


class CompilerFamily(enum.Enum):
    """The compiler whose idioms the generated code mimics."""

    GCC = "gcc"
    CLANG = "clang"


class OptLevel(enum.Enum):
    """Optimisation levels used in the paper's Dataset 2."""

    O2 = "O2"
    O3 = "O3"
    OS = "Os"
    OFAST = "Ofast"


@dataclass(frozen=True)
class BuildProfile:
    """Construct frequencies for one compiler/opt-level combination.

    All ``*_rate`` values are probabilities applied per function; ``*_count``
    values are per-binary counts (scaled by program size by the planner).
    """

    compiler: CompilerFamily
    opt_level: OptLevel
    #: probability that a function is split into hot + cold parts
    cold_split_rate: float
    #: probability that a function keeps a frame pointer (rbp-based CFA)
    frame_pointer_rate: float
    #: probability that a function ends in a tail call to a shared function
    tail_call_rate: float
    #: probability that a function contains a switch lowered to a jump table
    jump_table_rate: float
    #: probability that a call site targets a noreturn function
    noreturn_call_rate: float
    #: functions written in assembly (no FDE) per 100 functions
    asm_function_density: float
    #: functions only reachable through function pointers, per 100 functions
    indirect_only_density: float
    #: functions only reachable via tail calls, per 100 functions
    tailcall_only_density: float
    #: unreachable assembly functions per 100 functions
    unreachable_density: float
    #: data blobs embedded in .text per 100 functions
    data_in_text_density: float
    #: function alignment in bytes
    function_alignment: int
    #: whether endbr64 landing pads are emitted
    emits_endbr: bool
    #: probability of a hand-written FDE with an off-by-one PC begin
    bad_fde_rate: float


def default_profile(compiler: CompilerFamily, opt_level: OptLevel) -> BuildProfile:
    """The stock profile for a compiler / optimisation level pair."""
    base = {
        OptLevel.O2: dict(cold_split_rate=0.030, tail_call_rate=0.10, jump_table_rate=0.05,
                          function_alignment=16),
        OptLevel.O3: dict(cold_split_rate=0.045, tail_call_rate=0.12, jump_table_rate=0.06,
                          function_alignment=16),
        OptLevel.OFAST: dict(cold_split_rate=0.050, tail_call_rate=0.13, jump_table_rate=0.06,
                             function_alignment=16),
        OptLevel.OS: dict(cold_split_rate=0.012, tail_call_rate=0.15, jump_table_rate=0.04,
                          function_alignment=4),
    }[opt_level]
    clang = compiler is CompilerFamily.CLANG
    return BuildProfile(
        compiler=compiler,
        opt_level=opt_level,
        frame_pointer_rate=0.10 if not clang else 0.08,
        noreturn_call_rate=0.06,
        asm_function_density=1.2,
        indirect_only_density=0.8,
        tailcall_only_density=0.6,
        unreachable_density=0.3,
        data_in_text_density=2.5,
        # The paper's toolchains (GCC 8.1, LLVM 6.0) predate CET, so no endbr64.
        emits_endbr=False,
        bad_fde_rate=0.0004,
        **base,
    )


def profile_for_scenario(profile: BuildProfile, scenario: str) -> BuildProfile:
    """Adjust a build profile to a binary scenario.

    The only profile-level scenario knob today is CET instrumentation: a
    ``cet`` build compiles with ``-fcf-protection`` and every function entry
    gets an ``endbr64`` landing pad.
    """
    if scenario == "cet" and not profile.emits_endbr:
        return dataclasses.replace(profile, emits_endbr=True)
    return profile


@dataclass(frozen=True)
class WildProfile:
    """One row of the paper's Table I (a binary collected from the wild)."""

    software: str
    open_source: bool
    language: str
    compiler_note: str
    has_eh_frame: bool
    has_symbols: bool
    #: number of source functions the synthetic stand-in should contain
    function_count: int
    #: e.g. 1.0 means FDEs cover every symbol (the common case in Table I)
    fde_symbol_ratio: float = 1.0
