"""Content-addressed, on-disk artifact store.

The store persists every expensive artifact of the evaluation stack so warm
re-runs reuse instead of recompute:

* **blobs** (``objects/``) — raw content-addressed bytes: serialized ELF
  images and pickled program plans, named by their SHA-256.
* **corpus manifests** (``corpora/``) — one JSON document per built corpus,
  keyed by a digest of the build parameters (plan parameters, scenario,
  generator version).  A manifest row references each binary's ELF blob and
  plan blob and inlines its ground truth.
* **detector results** (``results/``) — one :class:`BinaryMetrics` record
  per (binary digest, detector name, options digest) triple.
* **map values** (``values/``) — pickled per-binary values for opt-in
  :meth:`CorpusEvaluator.map` caching.
* **matrix cells** (``matrix/``) — one summary record per
  (scenario, detector) cell of a :class:`~repro.eval.runner.ScenarioMatrix`
  run; deleting a cell file invalidates exactly that cell.

All writes are atomic (tempfile + rename) so concurrent runs over one store
never observe torn artifacts.  The store root defaults to the
``REPRO_STORE_DIR`` environment variable, falling back to ``.repro-store``
in the working directory.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

from repro.store.digest import blob_digest, stable_digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.eval.metrics import BinaryMetrics
    from repro.synth.compiler import SyntheticBinary

#: Bumped when the on-disk layout changes; part of every key, so a layout
#: change invalidates old stores instead of misreading them.
STORE_FORMAT = 1

#: Attribute attached to binaries whose ELF digest is already known (set on
#: store load and after the first digest computation), so reloaded binaries
#: are never re-serialized just to learn their own digest.
_DIGEST_ATTRIBUTE = "_store_elf_digest"


def default_store_root() -> Path:
    """The store root from ``REPRO_STORE_DIR``, or ``.repro-store``."""
    return Path(os.environ.get("REPRO_STORE_DIR") or ".repro-store")


def elf_bytes_of(binary: "SyntheticBinary") -> bytes:
    """The serialized ELF image of ``binary`` (kept bytes, else re-written)."""
    if binary.elf_bytes:
        return binary.elf_bytes
    from repro.elf.writer import write_elf

    return write_elf(binary.image.elf)


def digest_of_binary(binary: "SyntheticBinary") -> str:
    """The content digest of ``binary``'s serialized ELF image, memoized.

    Computed once per binary object and cached on it (the same attribute
    :meth:`ArtifactStore.binary_digest` and the corpus loader use), so
    repeated submissions of one in-memory binary never re-serialize it —
    with or without a store.
    """
    cached = getattr(binary, _DIGEST_ATTRIBUTE, None)
    if cached is not None:
        return cached
    digest = blob_digest(elf_bytes_of(binary))
    setattr(binary, _DIGEST_ATTRIBUTE, digest)
    return digest


class ArtifactStore:
    """Content-addressed cache of corpora, detector results and matrix cells.

    Thread safety: every write goes through :meth:`_atomic_write` (tempfile +
    ``os.replace``), so readers — in this process, in concurrent worker
    threads, or in other processes sharing the directory — observe either
    the complete artifact or none of it, never a torn file.  Two writers
    racing on one key both write the same content-addressed payload, so the
    loser's replace is harmless.  The :attr:`stats` counters are plain dict
    increments guarded by the GIL: individual counts are exact, but a
    multi-counter snapshot taken while workers run is only approximate —
    take :meth:`stats_snapshot` deltas around quiescent points (as
    :class:`~repro.eval.runner.ScenarioMatrix` and the detection service
    do).  The long-lived :class:`~repro.service.DetectionService` relies on
    exactly these guarantees to share one store across its worker pool.
    """

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = Path(root) if root is not None else default_store_root()
        self.stats: dict[str, int] = {
            "corpus_hits": 0,
            "corpus_misses": 0,
            "result_hits": 0,
            "result_misses": 0,
            "value_hits": 0,
            "value_misses": 0,
            "cell_hits": 0,
            "cell_misses": 0,
            "detection_hits": 0,
            "detection_misses": 0,
        }

    # -- plumbing -------------------------------------------------------
    def _atomic_write(self, path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, temporary = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(data)
            os.replace(temporary, path)
        except BaseException:
            try:
                os.unlink(temporary)
            except OSError:
                pass
            raise

    def _record_path(self, namespace: str, key: str) -> Path:
        return self.root / namespace / key[:2] / f"{key}.json"

    def _load_record(self, namespace: str, key: str) -> dict[str, Any] | None:
        path = self._record_path(namespace, key)
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if record.get("format") != STORE_FORMAT:
            return None
        return record

    def _save_record(self, namespace: str, key: str, record: dict[str, Any]) -> Path:
        record = {"format": STORE_FORMAT, **record}
        path = self._record_path(namespace, key)
        self._atomic_write(path, (json.dumps(record, indent=2, sort_keys=True) + "\n").encode())
        return path

    # -- blobs ----------------------------------------------------------
    def blob_path(self, digest: str) -> Path:
        """Where the blob named ``digest`` lives (whether or not it exists)."""
        return self.root / "objects" / digest[:2] / digest

    def put_blob(self, data: bytes) -> str:
        """Store raw bytes under their SHA-256; returns the digest.

        Idempotent and safe to race: a blob that already exists is left
        untouched (content addressing makes re-writing it a no-op by
        definition), and a concurrent writer of the same bytes produces the
        identical file via the atomic-rename path.
        """
        digest = blob_digest(data)
        path = self.blob_path(digest)
        if not path.exists():
            self._atomic_write(path, data)
        return digest

    def get_blob(self, digest: str) -> bytes | None:
        """The bytes stored under ``digest``, or ``None`` when absent.

        Never raises on a missing or unreadable blob — garbage-collected
        objects read as cache misses, matching :meth:`load_corpus`.
        """
        try:
            return self.blob_path(digest).read_bytes()
        except OSError:
            return None

    # -- binary identity ------------------------------------------------
    def binary_digest(self, binary: "SyntheticBinary") -> str:
        """The content digest of ``binary``'s serialized ELF image.

        Computed once per binary object and cached on it; binaries loaded
        from a manifest carry the digest of the stored blob, so they are
        never re-serialized (re-serializing a *parsed* image is not
        byte-stable, the blob is the identity).
        """
        return digest_of_binary(binary)

    @staticmethod
    def _elf_bytes(binary: "SyntheticBinary") -> bytes:
        return elf_bytes_of(binary)

    # -- corpora --------------------------------------------------------
    def corpus_key(self, kind: str, params: dict[str, Any]) -> str:
        """Content key of a corpus: build kind + every build parameter."""
        return stable_digest({"kind": kind, "params": params, "format": STORE_FORMAT})

    def has_corpus(self, key: str) -> bool:
        return self._load_record("corpora", key) is not None

    def save_corpus(
        self,
        key: str,
        kind: str,
        params: dict[str, Any],
        entries: Sequence[Any],
    ) -> Path:
        """Persist a built corpus under ``key``.

        ``entries`` are :class:`SyntheticBinary` objects or
        ``(WildProfile, SyntheticBinary)`` pairs (the wild corpus shape);
        :meth:`load_corpus` returns the same shape.
        """
        rows = []
        for entry in entries:
            profile, binary = entry if isinstance(entry, tuple) else (None, entry)
            elf_digest = self.put_blob(self._elf_bytes(binary))
            setattr(binary, _DIGEST_ATTRIBUTE, elf_digest)
            plan_digest = self.put_blob(pickle.dumps(binary.plan, protocol=4))
            rows.append(
                {
                    "name": binary.name,
                    "elf": elf_digest,
                    "plan": plan_digest,
                    "ground_truth": _ground_truth_to_record(binary.ground_truth),
                    "wild_profile": dataclasses.asdict(profile) if profile else None,
                }
            )
        return self._save_record(
            "corpora",
            key,
            {"kind": kind, "params": _jsonable(params), "binaries": rows},
        )

    def load_corpus(self, key: str) -> list[Any] | None:
        """Reload the corpus stored under ``key`` (``None`` on a miss).

        A manifest whose blobs have been garbage-collected counts as a miss,
        never as an error.
        """
        record = self._load_record("corpora", key)
        if record is None:
            self.stats["corpus_misses"] += 1
            return None
        from repro.elf.image import BinaryImage
        from repro.synth.compiler import SyntheticBinary
        from repro.synth.profiles import WildProfile

        entries: list[Any] = []
        for row in record["binaries"]:
            elf_data = self.get_blob(row["elf"])
            plan_data = self.get_blob(row["plan"])
            if elf_data is None or plan_data is None:
                self.stats["corpus_misses"] += 1
                return None
            binary = SyntheticBinary(
                name=row["name"],
                image=BinaryImage.from_bytes(elf_data, name=row["name"]),
                ground_truth=_ground_truth_from_record(row["ground_truth"]),
                plan=pickle.loads(plan_data),
            )
            setattr(binary, _DIGEST_ATTRIBUTE, row["elf"])
            if row.get("wild_profile"):
                entries.append((WildProfile(**row["wild_profile"]), binary))
            else:
                entries.append(binary)
        self.stats["corpus_hits"] += 1
        return entries

    def corpus_manifests(self) -> list[dict[str, Any]]:
        """Every stored corpus manifest (for ``fetch-detect corpus info``)."""
        manifests = []
        directory = self.root / "corpora"
        if not directory.is_dir():
            return manifests
        for path in sorted(directory.glob("*/*.json")):
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            record["key"] = path.stem
            manifests.append(record)
        return manifests

    # -- detector results -----------------------------------------------
    def _result_key(self, binary: "SyntheticBinary", detector: str, options_digest: str) -> str:
        return stable_digest(
            {
                "binary": self.binary_digest(binary),
                "detector": detector,
                "options": options_digest,
                "format": STORE_FORMAT,
            }
        )

    def load_result(
        self, binary: "SyntheticBinary", detector: str, options_digest: str
    ) -> "BinaryMetrics | None":
        """The cached :class:`BinaryMetrics` of one detector run, or ``None``.

        Keyed by (binary content digest, detector name, options digest), so
        a hit is only served for byte-identical input analysed by an
        identically-configured, identically-versioned detector.  Safe to
        call from concurrent workers: a record is read back only after its
        atomic rename, never mid-write.
        """
        record = self._load_record("results", self._result_key(binary, detector, options_digest))
        if record is None:
            self.stats["result_misses"] += 1
            return None
        self.stats["result_hits"] += 1
        return _metrics_from_record(record["metrics"])

    def save_result(
        self,
        binary: "SyntheticBinary",
        detector: str,
        options_digest: str,
        metrics: "BinaryMetrics",
    ) -> Path:
        """Persist one detector run's :class:`BinaryMetrics` (atomic write).

        Concurrent saves of the same key are benign — both writers derived
        the metrics from identical inputs, so last-rename-wins replaces the
        record with equal content.
        """
        return self._save_record(
            "results",
            self._result_key(binary, detector, options_digest),
            {"detector": detector, "metrics": _metrics_to_record(metrics)},
        )

    # -- opt-in map-value cache -----------------------------------------
    def _value_path(self, binary: "SyntheticBinary", cache_key: str) -> Path:
        key = stable_digest(
            {"binary": self.binary_digest(binary), "key": cache_key, "format": STORE_FORMAT}
        )
        return self.root / "values" / key[:2] / f"{key}.pkl"

    def load_value(self, binary: "SyntheticBinary", cache_key: str) -> tuple[bool, Any]:
        """``(hit, value)`` for a cached per-binary map value."""
        try:
            data = self._value_path(binary, cache_key).read_bytes()
        except OSError:
            self.stats["value_misses"] += 1
            return False, None
        self.stats["value_hits"] += 1
        return True, pickle.loads(data)

    def save_value(self, binary: "SyntheticBinary", cache_key: str, value: Any) -> None:
        """Persist a picklable per-binary value under ``cache_key`` (atomic).

        The caller owns the key's meaning — see
        :meth:`CorpusEvaluator.map`'s ``cache_key`` contract.
        """
        self._atomic_write(self._value_path(binary, cache_key), pickle.dumps(value, protocol=4))

    # -- scenario-matrix cells ------------------------------------------
    def cell_key(
        self,
        scenario: str,
        detector: str,
        binary_digests: Sequence[str],
        options_digest: str,
    ) -> str:
        """Content key of one matrix cell.

        The binary digests are part of the key, so any change to the corpus
        row (different scale, seed, generator version) invalidates the cell
        automatically.
        """
        return stable_digest(
            {
                "scenario": scenario,
                "detector": detector,
                "binaries": list(binary_digests),
                "options": options_digest,
                "format": STORE_FORMAT,
            }
        )

    def cell_path(self, key: str) -> Path:
        return self._record_path("matrix", key)

    def load_cell(self, key: str) -> dict[str, Any] | None:
        record = self._load_record("matrix", key)
        if record is None:
            self.stats["cell_misses"] += 1
            return None
        self.stats["cell_hits"] += 1
        return record

    def save_cell(self, key: str, record: dict[str, Any]) -> Path:
        return self._save_record("matrix", key, record)

    # -- CLI / service detection records --------------------------------
    def detection_key(self, file_digest: str, detector: str, options_digest: str) -> str:
        """Content key of one detection run over one binary.

        Shared by the ``fetch-detect`` CLI and the detection service, so a
        corpus analysed through either front-end warms the other: the key
        depends only on the file's content digest, the detector name and
        its options/logic digest — never on the path or the submitting
        process.
        """
        return stable_digest(
            {"file": file_digest, "detector": detector, "options": options_digest}
        )

    def load_detection(self, key: str) -> dict[str, Any] | None:
        """A cached ``fetch-detect`` run (starts, stages, merged parts)."""
        record = self._load_record("detections", key)
        if record is None:
            self.stats["detection_misses"] += 1
            return None
        self.stats["detection_hits"] += 1
        return record

    def save_detection(self, key: str, record: dict[str, Any]) -> Path:
        return self._save_record("detections", key, record)

    # -- introspection --------------------------------------------------
    def stats_snapshot(self) -> dict[str, int]:
        """A copy of the hit/miss counters (for ``BENCH_*.json`` records)."""
        return dict(self.stats)

    def stats_delta(self, before: dict[str, int]) -> dict[str, int]:
        """Counter deltas since a previous :meth:`stats_snapshot`.

        The standard way to scope hit/miss accounting to one run (a matrix
        pass, a service batch) instead of the store's lifetime.
        """
        return {
            key: value - before.get(key, 0) for key, value in self.stats_snapshot().items()
        }


# ----------------------------------------------------------------------
# Record (de)serialization
# ----------------------------------------------------------------------

def _jsonable(value: Any) -> Any:
    """Best-effort plain-JSON rendering of parameter values for manifests."""
    from repro.store.digest import _plain

    return _plain(value)


def _ground_truth_to_record(truth: Any) -> dict[str, Any]:
    return {
        "name": truth.name,
        "scenario": truth.scenario,
        "functions": [dataclasses.asdict(info) for info in truth.functions],
    }


def _ground_truth_from_record(record: dict[str, Any]) -> Any:
    from repro.synth.groundtruth import FunctionInfo, GroundTruth

    return GroundTruth(
        name=record["name"],
        scenario=record["scenario"],
        functions=[FunctionInfo(**fields) for fields in record["functions"]],
    )


def _metrics_to_record(metrics: "BinaryMetrics") -> dict[str, Any]:
    return {
        "binary_name": metrics.binary_name,
        "true_count": metrics.true_count,
        "detected_count": metrics.detected_count,
        "false_positives": sorted(metrics.false_positives),
        "false_negatives": sorted(metrics.false_negatives),
        "cold_part_false_positives": sorted(metrics.cold_part_false_positives),
    }


def _metrics_from_record(record: dict[str, Any]) -> "BinaryMetrics":
    from repro.eval.metrics import BinaryMetrics

    return BinaryMetrics(
        binary_name=record["binary_name"],
        true_count=record["true_count"],
        detected_count=record["detected_count"],
        false_positives=set(record["false_positives"]),
        false_negatives=set(record["false_negatives"]),
        cold_part_false_positives=set(record["cold_part_false_positives"]),
    )
