"""Operand model for x86-64 instructions.

Three operand kinds exist in the subset we model: registers (the
:class:`~repro.x86.registers.Register` objects themselves), immediates
(:class:`Imm`) and memory references (:class:`Mem`).  Memory references cover
the general ``[base + index*scale + disp]`` addressing form plus
RIP-relative addressing, which is enough for every pattern compilers emit for
data access, jump tables and PLT-style indirect transfers.

Both classes are ``__slots__`` value objects: the decoder allocates one per
operand on the cold path, so a dict-free layout and a hand-written
constructor are worth the few lines of boilerplate they cost over a frozen
dataclass.
"""

from __future__ import annotations

from repro.x86.registers import Register


class Imm:
    """An immediate operand.

    Attributes:
        value: the (signed) immediate value.
        size: encoded width in bytes (1, 4 or 8).
    """

    __slots__ = ("value", "size")

    def __init__(self, value: int, size: int = 4):
        self.value = value
        self.size = size

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Imm:
            return NotImplemented
        return self.value == other.value and self.size == other.size

    def __hash__(self) -> int:
        return hash((Imm, self.value, self.size))

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"Imm(value={self.value!r}, size={self.size!r})"

    def __str__(self) -> str:  # pragma: no cover - display helper
        return hex(self.value)


class Mem:
    """A memory operand: ``[base + index*scale + disp]`` or ``[rip + disp]``.

    Attributes:
        base: base register, or ``None`` for absolute / index-only forms.
        index: index register, or ``None``.
        scale: index scale factor (1, 2, 4 or 8).
        disp: signed displacement.
        rip_relative: whether the operand is RIP-relative (``[rip + disp]``).
        size: access size in bytes (used for display only).
    """

    __slots__ = ("base", "index", "scale", "disp", "rip_relative", "size")

    def __init__(
        self,
        base: Register | None = None,
        index: Register | None = None,
        scale: int = 1,
        disp: int = 0,
        rip_relative: bool = False,
        size: int = 8,
    ):
        if scale not in (1, 2, 4, 8):
            raise ValueError(f"invalid SIB scale: {scale}")
        if rip_relative and (base is not None or index is not None):
            raise ValueError("RIP-relative operands cannot have base/index registers")
        self.base = base
        self.index = index
        self.scale = scale
        self.disp = disp
        self.rip_relative = rip_relative
        self.size = size

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Mem:
            return NotImplemented
        return (
            self.base == other.base
            and self.index == other.index
            and self.scale == other.scale
            and self.disp == other.disp
            and self.rip_relative == other.rip_relative
            and self.size == other.size
        )

    def __hash__(self) -> int:
        return hash((Mem, self.base, self.index, self.scale, self.disp, self.rip_relative, self.size))

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"Mem(base={self.base!r}, index={self.index!r}, scale={self.scale!r}, "
            f"disp={self.disp!r}, rip_relative={self.rip_relative!r}, size={self.size!r})"
        )

    def __str__(self) -> str:  # pragma: no cover - display helper
        parts: list[str] = []
        if self.rip_relative:
            parts.append("rip")
        if self.base is not None:
            parts.append(self.base.name)
        if self.index is not None:
            parts.append(f"{self.index.name}*{self.scale}")
        if self.disp or not parts:
            parts.append(hex(self.disp))
        return "[" + "+".join(parts) + "]"

    def absolute_target(self, instruction_end: int) -> int | None:
        """The absolute address referenced, if statically known.

        For RIP-relative operands the target is ``end-of-instruction + disp``.
        For absolute (no-register) operands it is the displacement itself.
        Returns ``None`` when the address depends on register values.
        """
        if self.rip_relative:
            return instruction_end + self.disp
        if self.base is None and self.index is None:
            return self.disp
        return None
