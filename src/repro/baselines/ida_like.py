"""IDA Pro-style detector model.

IDA's FLIRT/heuristic analysis is conservative: recursive disassembly from
the entry point, a scan of data sections for code pointers (address-taken
functions), and prologue matching restricted to aligned locations following
padding.  In the paper's comparison IDA has the fewest false positives of the
non-FDE tools but misses functions that are never referenced from data or
code (Table III).
"""

from __future__ import annotations

from repro.baselines.base import BaselineTool
from repro.core.registry import register_detector
from repro.core.context import AnalysisContext, context_for
from repro.core.results import DetectionResult
from repro.elf.image import BinaryImage


@register_detector(
    "ida",
    order=50,
    comparison=True,
    cet_aware=True,
    description="conservative recursion, aligned pointer scan, strict prologues",
)
class IdaLike(BaselineTool):

    def detect(
        self, image: BinaryImage, context: AnalysisContext | None = None
    ) -> DetectionResult:
        context = context_for(image, context)
        result = DetectionResult(binary_name=image.name)
        seeds = {image.entry_point} if image.entry_point else set()
        result.record_stage("seeds", {s for s in seeds if image.is_executable_address(s)})

        disassembler, disassembly, starts = self._recursive(
            image, result.function_starts, context
        )
        result.disassembly = disassembly
        result.record_stage("recursion", starts - result.function_starts)

        # Data-section pointer scan (aligned slots only, unlike §IV-E's
        # deliberately exhaustive sliding window).
        pointer_targets = self._aligned_pointer_sweep(image, result, disassembly, context)
        grown = self._grow_from_matches(image, disassembler, disassembly, pointer_targets)
        result.record_stage("pointers", grown - result.function_starts)

        # Conservative prologue matching: aligned, preceded by padding.
        gaps = self._gaps(image, disassembly)
        strict: set[int] = set()
        for address in self._prologue_matches(image, gaps, context):
            if address in result.function_starts or address % 16 != 0:
                continue
            try:
                before = image.read(address - 1, 1)
            except ValueError:
                continue
            if before in (b"\x90", b"\xcc", b"\x00", b"\xc3"):
                strict.add(address)
        grown = self._grow_from_matches(image, disassembler, disassembly, strict)
        result.record_stage("prologue", grown - result.function_starts)
        return result
