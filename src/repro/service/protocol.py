"""JSON-lines protocol: the request-dispatch core behind every front-end.

One request per input line, one JSON event per output line.  The shape is
deliberately transport-agnostic — :class:`ServeSession` is the single
request-dispatch core, fed by a stdin/stdout pipe (``fetch-detect serve``)
or by one accepted connection of the TCP front-end in
:mod:`repro.service.server` (``fetch-detect serve --tcp``) — and
streaming: a ``submit`` is acknowledged as soon as its entries are
*admitted*, and its per-entry results then arrive as the service completes
them, interleaved with responses to later requests.  Admission itself
follows the service's backpressure policy: under the default ``block``
policy a batch larger than the remaining queue capacity delays the
acknowledgement (and the request loop) until workers free capacity —
backpressure deliberately propagates to the submitting client.  Run the
service with ``--backpressure reject`` for a front-end that never blocks:
an overflowing batch then answers with an ``error`` event instead.

Requests::

    {"op": "auth", "token": "..."}
    {"op": "submit", "paths": [...], "detectors": ["fetch", "ghidra"]}
    {"op": "status", "job": 1}
    {"op": "wait", "job": 1}
    {"op": "stats"}
    {"op": "shutdown"}

Events (every response carries an ``event`` key)::

    {"event": "auth-ok"}
    {"event": "accepted", "job": 1, "entries": 3, "units": 6}
    {"event": "result", "job": 1, "name": "a.elf", "detector": "fetch",
     "cached": false, "count": 42, "function_starts": [...], "seconds": 0.12}
    {"event": "job-done", "job": 1, "ok": 6, "errors": 0}
    {"event": "status", "job": 1, "state": "running", "done": 2, "total": 6}
    {"event": "stats", ...service counters, "client": session counters}
    {"event": "error", "error": "..."}          # bad request, never fatal
    {"event": "bye"}                            # response to shutdown

**Job ids are session-local.**  Every session numbers its own submissions
from 1, so concurrent clients of the TCP server cannot observe (or wait
on) each other's jobs, and a session keeps its own reference to every
:class:`~repro.service.service.JobHandle` it created — ``status``/``wait``
answer deterministically even after the service's bounded job-history
table has evicted a long-finished job.  ``wait`` additionally joins the
job's event drainer before answering, so its ``status`` response is
guaranteed to follow every ``result`` and the ``job-done`` event of that
job on the wire.

Malformed input (bad JSON, a non-object line, unknown ``op``, unknown job
id) produces an ``error`` event and the session keeps serving.  Framing
violations are fatal to the session only: a line longer than
``max_line_bytes`` or a truncated final frame (EOF mid-line) answers one
``error`` event and closes the session cleanly — the service, and every
other session, keeps running.  Only ``shutdown`` or end of input ends a
session normally, after draining every in-flight job.

Guard hooks, all optional, let a front-end wrap policy around the core:

* ``auth_token`` — when set, every op except ``auth`` answers an error
  until the client has authenticated; a *wrong* token closes the session;
* ``submit_quota`` — submissions allowed per session (0 = unlimited);
* ``submit_guard`` — a callable returning a refusal reason or ``None``,
  consulted on every submit (the TCP server's drain mode plugs in here);
* ``stats_extra`` — a callable whose dict is merged into ``stats`` events
  (the TCP server adds its connection counters through it).
"""

from __future__ import annotations

import json
import threading
from typing import Any, Callable, IO

from repro.service.service import (
    DetectionService,
    EntryResult,
    JobHandle,
    JobState,
    ServiceSaturated,
)

#: longest accepted request line (bytes of UTF-8 on the socket transport,
#: characters on a text stream) — large enough for a many-thousand-path
#: submit, small enough to bound a hostile client's memory footprint
DEFAULT_MAX_LINE_BYTES = 1 << 20


class ServeSession:
    """One stdin/stdout (or socket-stream) session speaking the protocol.

    Responses from concurrently-draining jobs and from the request loop
    share one output stream; a write lock keeps every JSON line intact.
    A failed write (the peer disconnected mid-stream) silences the session
    — in-flight jobs keep running to completion in the service, their
    events are simply no longer deliverable — and ends the request loop.
    """

    #: oldest *finished* session-local jobs are forgotten beyond this many,
    #: so a long-lived session stays bounded (ids are never reused)
    JOB_HISTORY = 256

    def __init__(
        self,
        service: DetectionService,
        input_stream: IO[str],
        output_stream: IO[str],
        *,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
        auth_token: str | None = None,
        submit_quota: int = 0,
        submit_guard: Callable[[], str | None] | None = None,
        stats_extra: Callable[[], dict[str, Any]] | None = None,
    ):
        self.service = service
        self._input = input_stream
        self._output = output_stream
        self.max_line_bytes = max(1024, int(max_line_bytes))
        self._auth_token = auth_token
        self._authed = auth_token is None
        self._submit_quota = max(0, int(submit_quota))
        self._submit_guard = submit_guard
        self._stats_extra = stats_extra
        self._write_lock = threading.Lock()
        #: session-local job id -> the handle this session created
        self._jobs: dict[int, JobHandle] = {}
        #: session-local job id -> the thread streaming its events
        self._drainers: dict[int, threading.Thread] = {}
        self._next_job = 0
        #: the peer stopped reading (write failed); stop emitting
        self._dead = False
        #: suppressed for fatal framing/auth endings (no clean ``bye``)
        self._send_bye = True
        # per-session counters, reported in the ``stats`` event
        self.submits = 0
        self.results_sent = 0
        self.errors_sent = 0

    # -- output ---------------------------------------------------------
    def _emit(self, event: dict[str, Any]) -> None:
        line = json.dumps(event, sort_keys=True)
        with self._write_lock:
            # counters live under the write lock: drainer threads and the
            # request loop bump them concurrently
            kind = event.get("event")
            if kind == "error":
                self.errors_sent += 1
            elif kind == "result":
                self.results_sent += 1
            if self._dead:
                return
            try:
                self._output.write(line + "\n")
                self._output.flush()
            except (OSError, ValueError):
                # peer gone (broken pipe / closed stream): silence the
                # session; the service and other sessions are unaffected
                self._dead = True

    @staticmethod
    def _result_event(job_id: int, result: EntryResult) -> dict[str, Any]:
        event: dict[str, Any] = {
            "event": "result",
            "job": job_id,
            "name": result.name,
            "detector": result.detector,
            "cached": result.cached,
            "count": len(result.function_starts),
            "function_starts": list(result.function_starts),
            "seconds": round(result.seconds, 6),
        }
        if result.error is not None:
            event["error"] = result.error
        if result.metrics is not None:
            event["metrics"] = {
                "false_positives": result.metrics.fp_count,
                "false_negatives": result.metrics.fn_count,
                "functions": result.metrics.true_count,
            }
        return event

    # -- request handling ------------------------------------------------
    def _drain(self, job_id: int, job: JobHandle) -> None:
        ok = errors = 0
        for result in job.results():
            if result.ok:
                ok += 1
            else:
                errors += 1
            self._emit(self._result_event(job_id, result))
        self._emit({"event": "job-done", "job": job_id, "ok": ok, "errors": errors})

    def _error(self, message: str) -> bool:
        self._emit({"event": "error", "error": message})
        return True

    def _handle_submit(self, request: dict[str, Any]) -> bool:
        if self._submit_guard is not None:
            refusal = self._submit_guard()
            if refusal is not None:
                return self._error(refusal)
        if self._submit_quota and self.submits >= self._submit_quota:
            return self._error(
                f"submit quota {self._submit_quota} exhausted for this session"
            )
        paths = request.get("paths")
        if (
            not isinstance(paths, list)
            or not paths
            or not all(isinstance(path, str) for path in paths)
        ):
            return self._error("submit needs a non-empty 'paths' list of strings")
        detectors = request.get("detectors")
        if detectors is not None and (
            not isinstance(detectors, list)
            or not all(isinstance(name, str) for name in detectors)
        ):
            return self._error("'detectors' must be a list of names")
        try:
            job = self.service.submit(paths, detectors=detectors)
        except (ServiceSaturated, KeyError, RuntimeError) as error:
            return self._error(str(error))
        self.submits += 1
        self._next_job += 1
        job_id = self._next_job
        self._jobs[job_id] = job
        self._emit(
            {
                "event": "accepted",
                "job": job_id,
                "entries": len(paths),
                "units": job.total,
            }
        )
        drainer = threading.Thread(
            target=self._drain, args=(job_id, job), daemon=True
        )
        drainer.start()
        # session state stays bounded across a long-lived session:
        # finished drainers are pruned on every new submit, and the oldest
        # *done* job handles are forgotten beyond JOB_HISTORY
        self._drainers = {
            jid: thread for jid, thread in self._drainers.items() if thread.is_alive()
        }
        self._drainers[job_id] = drainer
        if len(self._jobs) > self.JOB_HISTORY:
            for jid in [
                jid
                for jid, handle in self._jobs.items()
                if handle.state is JobState.DONE
            ][: len(self._jobs) - self.JOB_HISTORY]:
                del self._jobs[jid]
        return True

    def _handle(self, request: dict[str, Any]) -> bool:
        """Serve one request; returns ``False`` when the session should end."""
        op = request.get("op")
        if op == "auth":
            if self._auth_token is not None and request.get("token") != self._auth_token:
                # a wrong token is fatal: error out and close, no bye
                self._error("bad auth token")
                self._send_bye = False
                return False
            self._authed = True
            self._emit({"event": "auth-ok"})
            return True
        if not self._authed:
            return self._error(f"authentication required before {op!r}")
        if op == "shutdown":
            return False
        if op == "submit":
            return self._handle_submit(request)
        if op in ("status", "wait"):
            try:
                job_id = int(request.get("job", -1))
                job = self._jobs[job_id]
            except (KeyError, TypeError, ValueError):
                return self._error(f"unknown job {request.get('job')!r}")
            if op == "wait":
                job.wait()
                # join the drainer too: after this status lands, every
                # result/job-done event of the job is already on the wire
                drainer = self._drainers.get(job_id)
                if drainer is not None:
                    drainer.join()
            done, total = job.progress()
            self._emit(
                {
                    "event": "status",
                    "job": job_id,
                    "state": job.state.value,
                    "done": done,
                    "total": total,
                }
            )
            return True
        if op == "stats":
            event = {"event": "stats", **self.service.stats()}
            event["client"] = {
                "submits": self.submits,
                "jobs": len(self._jobs),
                "results_sent": self.results_sent,
                "errors_sent": self.errors_sent,
                "quota": self._submit_quota,
            }
            if self._stats_extra is not None:
                event.update(self._stats_extra())
            self._emit(event)
            return True
        return self._error(f"unknown op {op!r}")

    # -- main loop -------------------------------------------------------
    def _read_line(self) -> str | None:
        """One framed line, or ``None`` when the session must end.

        Enforces the framing contract shared by both transports: a line
        longer than ``max_line_bytes`` and a truncated final frame (data
        with no newline at EOF) each answer an ``error`` event and end the
        session; a read timeout (the TCP front-end's idle timeout) ends it
        with an ``error`` as well.  Returns ``""`` for blank lines (the
        caller skips them) and ``None`` to stop serving.
        """
        try:
            line = self._input.readline(self.max_line_bytes + 1)
        except TimeoutError:
            self._error("idle timeout: closing session")
            self._send_bye = False
            return None
        except (OSError, ValueError):
            # transport failure mid-read: nothing sensible left to answer
            self._dead = True
            return None
        if line == "":
            return None  # end of input: normal session end
        if not line.endswith("\n"):
            if len(line) > self.max_line_bytes:
                self._error(
                    f"oversized request line (> {self.max_line_bytes} bytes): "
                    "closing session"
                )
            else:
                self._error("truncated request frame at end of input")
            self._send_bye = False
            return None
        return line.strip()

    def run(self) -> int:
        """Serve requests until shutdown or end of input; returns exit code."""
        while True:
            line = self._read_line()
            if line is None:
                break
            if not line:
                continue
            try:
                request = json.loads(line)
            except ValueError as error:
                self._error(f"bad request line: {error}")
                continue
            if not isinstance(request, dict):
                self._error("request must be a JSON object")
                continue
            if not self._handle(request):
                break
        self.drain()
        if self._send_bye:
            self._emit({"event": "bye"})
        return 0

    def drain(self, timeout: float | None = None) -> bool:
        """Join every in-flight drainer; ``False`` if one outlived ``timeout``.

        After a ``True`` return, every event of every job this session
        submitted has been written (or dropped on a dead peer)."""
        drained = True
        for drainer in list(self._drainers.values()):
            drainer.join(timeout)
            drained = drained and not drainer.is_alive()
        return drained
