"""Robustness and failure-injection tests: malformed inputs must fail loudly
and cleanly, never silently mis-analyse."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FetchDetector, FetchOptions
from repro.dwarf.parser import EhFrameParseError, parse_eh_frame
from repro.elf import BinaryImage, ElfFile, Section
from repro.elf import constants as C
from repro.elf.reader import ElfParseError, read_elf


def _image_with(sections, entry=0x401000, name="injected"):
    return BinaryImage(elf=ElfFile(sections=sections, entry_point=entry), name=name)


# ----------------------------------------------------------------------
# Corrupted ELF containers
# ----------------------------------------------------------------------

@given(data=st.binary(min_size=0, max_size=128))
@settings(max_examples=100)
def test_arbitrary_bytes_never_parse_as_elf_silently(data):
    try:
        parsed = read_elf(data)
    except (ElfParseError, ValueError, struct.error, IndexError):
        return
    # If it parsed, it must at least have carried the ELF magic.
    assert data[:4] == b"\x7fELF"
    assert parsed is not None


def test_truncated_elf_is_rejected(rich_binary):
    blob = rich_binary.elf_bytes[:200]
    with pytest.raises((ElfParseError, ValueError, struct.error, IndexError)):
        read_elf(blob)


def test_flipping_section_offsets_does_not_crash_the_reader(rich_binary):
    blob = bytearray(rich_binary.elf_bytes)
    # Corrupt the section header offset field.
    struct.pack_into("<Q", blob, 40, len(blob) * 4)
    with pytest.raises((ElfParseError, ValueError, struct.error, IndexError)):
        read_elf(bytes(blob))


# ----------------------------------------------------------------------
# Corrupted .eh_frame contents
# ----------------------------------------------------------------------

def test_truncated_eh_frame_is_rejected(rich_binary):
    section = rich_binary.image.section(".eh_frame")
    truncated = section.data[: len(section.data) // 2 + 3]
    with pytest.raises((EhFrameParseError, ValueError, IndexError)):
        parse_eh_frame(truncated, section.address)


@given(position=st.integers(min_value=4, max_value=200), value=st.integers(0, 255))
@settings(max_examples=60)
def test_bitflipped_eh_frame_never_hangs(rich_binary, position, value):
    section = rich_binary.image.section(".eh_frame")
    corrupted = bytearray(section.data)
    position %= len(corrupted)
    corrupted[position] = value
    try:
        cies, fdes = parse_eh_frame(bytes(corrupted), section.address)
    except (EhFrameParseError, ValueError, IndexError, KeyError):
        return
    # Parsed output, if any, must stay structurally sane.
    for fde in fdes:
        assert fde.pc_range >= 0


# ----------------------------------------------------------------------
# Seeded malformed-.eh_frame fuzz corpus
#
# Builds well-formed sections with the repo's own encoder (varying pointer
# encodings and FDE counts), then applies one seeded structural mutation.
# The contract under test is the parser's error envelope: a corrupt section
# either raises EhFrameParseError — never a raw struct.error / IndexError /
# KeyError / UnicodeDecodeError — or parses into structurally sane records.
# ----------------------------------------------------------------------

def _build_fuzz_eh_frame(rng):
    """A small, valid .eh_frame with rng-chosen encodings and FDE layout."""
    from repro.dwarf import constants as D
    from repro.dwarf.encoder import EhFrameBuilder

    encodings = [
        D.DW_EH_PE_pcrel | D.DW_EH_PE_sdata4,
        D.DW_EH_PE_udata4,
        D.DW_EH_PE_absptr,
        D.DW_EH_PE_pcrel | D.DW_EH_PE_sdata8,
        D.DW_EH_PE_udata8,
    ]
    section_address = 0x500000
    builder = EhFrameBuilder()
    cie = builder.add_cie(fde_pointer_encoding=rng.choice(encodings))
    base = 0x401000
    for _ in range(rng.randint(1, 5)):
        size = rng.randint(0x10, 0x400)
        builder.add_fde(cie, base, size)
        base += size + rng.randint(0, 0x40)
    return builder.build(section_address), section_address


def _mutate(data: bytearray, rng) -> None:
    """Apply one seeded structural corruption in place."""
    kind = rng.randrange(6)
    if kind == 0:  # single byte flip
        position = rng.randrange(len(data))
        data[position] ^= 1 << rng.randrange(8)
    elif kind == 1:  # entry length field lies
        offset = rng.choice([0, 4]) if len(data) > 8 else 0
        struct.pack_into("<I", data, offset, rng.choice([3, 0xFFF0, 0x7FFFFFFF]))
    elif kind == 2:  # pointer-encoding byte becomes something exotic
        position = rng.randrange(min(len(data), 24))
        data[position] = rng.choice([0x5E, 0x80, 0xF0, 0x0D, 0x9B])
    elif kind == 3:  # unterminated LEB128 run
        position = rng.randrange(len(data))
        run = b"\x80" * rng.randint(2, 12)
        data[position : position + len(run)] = run
    elif kind == 4:  # truncation
        del data[rng.randrange(4, max(5, len(data))) :]
    else:  # corrupt the CIE augmentation region (around the "zR" string)
        position = 9 + rng.randrange(8)
        if position < len(data):
            data[position] = rng.randrange(256)


@pytest.mark.parametrize("seed", range(70))
def test_fuzzed_eh_frame_fails_only_with_parse_errors(seed):
    import random

    rng = random.Random(seed)
    data, section_address = _build_fuzz_eh_frame(rng)
    corrupted = bytearray(data)
    _mutate(corrupted, rng)
    try:
        _, fdes = parse_eh_frame(bytes(corrupted), section_address)
    except EhFrameParseError:
        return  # the typed envelope — exactly what callers are promised
    # Anything *else* escaping (struct.error, IndexError, KeyError, ...)
    # fails this test: pytest reports it as an error, which is the point.
    for fde in fdes:
        assert fde.pc_range >= 0
        assert fde.pc_begin >= 0
        assert fde.cie is not None


def test_fuzz_corpus_baseline_is_valid():
    """The un-mutated generator output must parse cleanly for every seed —
    otherwise the fuzz corpus exercises the builder, not the mutations."""
    import random

    for seed in range(70):
        rng = random.Random(seed)
        data, section_address = _build_fuzz_eh_frame(rng)
        cies, fdes = parse_eh_frame(data, section_address)
        assert cies and fdes


def test_detector_on_binary_without_eh_frame_falls_back_to_entry():
    text = Section(
        name=".text",
        data=b"\x55\x48\x89\xe5\x5d\xc3" + b"\x90" * 10,
        address=0x401000,
        flags=C.SHF_ALLOC | C.SHF_EXECINSTR,
    )
    image = _image_with([text])
    # With no FDE seeds at all, FETCH degrades to recursive traversal from
    # the entry point (the stripped-without-eh_frame scenario) ...
    result = FetchDetector().detect(image)
    assert result.function_starts == {image.entry_point}
    # ... unless the fallback is disabled, in which case nothing is found.
    strict = FetchDetector(FetchOptions(fallback_entry_seed=False)).detect(image)
    assert strict.function_starts == set()


def test_detector_ignores_fdes_pointing_outside_executable_sections(rich_binary):
    # Re-point the eh_frame to a data-only image: every FDE start now falls
    # outside executable memory and must be discarded, not reported.
    eh_frame = rich_binary.image.section(".eh_frame")
    data_only = Section(
        name=".rodata", data=b"\x00" * 64, address=0x402000, flags=C.SHF_ALLOC
    )
    moved_eh = Section(
        name=".eh_frame", data=eh_frame.data, address=eh_frame.address, flags=C.SHF_ALLOC
    )
    image = _image_with([data_only, moved_eh], entry=0)
    options = FetchOptions(use_recursion=False, validate_fde_starts=False,
                           use_pointer_validation=False, use_tail_call_analysis=False)
    with pytest.raises(ValueError):
        # No executable section at all: the image itself is unusable and the
        # facade says so explicitly.
        _ = image.text
    result = FetchDetector(options).detect(image)
    assert result.function_starts == set()


def test_detector_survives_text_full_of_random_bytes():
    import random

    rng = random.Random(7)
    junk = bytes(rng.randrange(0, 256) for _ in range(4096))
    text = Section(
        name=".text", data=junk, address=0x401000, flags=C.SHF_ALLOC | C.SHF_EXECINSTR
    )
    image = _image_with([text])
    result = FetchDetector().detect(image)
    # Without call frames nothing should be claimed as a function.
    assert result.function_starts == set()


def test_detection_result_roundtrips_through_elf_with_modified_padding(rich_binary):
    """Padding bytes are irrelevant to detection: rewriting them changes nothing."""
    blob = bytearray(rich_binary.elf_bytes)
    original = FetchDetector().detect(BinaryImage.from_bytes(bytes(blob), "orig"))

    text = rich_binary.image.text
    parsed = read_elf(bytes(blob))
    raw_text = parsed.section(".text")
    covered = set()
    for info in rich_binary.ground_truth.functions:
        covered.update(range(info.address, info.address + info.size))
        for cold in info.cold_part_addresses:
            covered.update(range(cold, cold + 1))
    # Find the text section's file offset by searching for its contents.
    file_offset = bytes(blob).find(raw_text.data)
    assert file_offset > 0
    mutated = bytearray(blob)
    changed = 0
    for index, byte in enumerate(text.data):
        address = text.address + index
        if byte == 0xCC and address not in covered and changed < 64:
            mutated[file_offset + index] = 0x90
            changed += 1
    result = FetchDetector().detect(BinaryImage.from_bytes(bytes(mutated), "mutated"))
    assert result.function_starts == original.function_starts
