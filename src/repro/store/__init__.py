"""Content-addressed artifact store for corpora, results and matrix cells.

A layered subsystem (see ``docs/ARCHITECTURE.md``):

* :mod:`repro.store.store` — the :class:`ArtifactStore` facade every
  front-end uses;
* :mod:`repro.store.backend` — the versioned on-disk layout behind the
  :class:`StoreBackend` interface (sharded fanout, migration, durable
  atomic writes);
* :mod:`repro.store.locking` — cross-process :class:`FileLock` with
  timeout and stale-lock recovery;
* :mod:`repro.store.index` — append-only manifest index journal, so
  stats and enumeration never walk the tree;
* :mod:`repro.store.gc` — age/size-budget eviction.

Typical wiring::

    from repro.store import ArtifactStore
    from repro.synth import build_scenario_matrix_corpora
    from repro.eval import ScenarioMatrix

    store = ArtifactStore("~/.cache/fetch-repro")      # or REPRO_STORE_DIR
    corpora = build_scenario_matrix_corpora(store=store)   # built once
    matrix = ScenarioMatrix(corpora, store=store)          # resumable
    matrix.run()                                           # warm: no detector runs
"""

from repro.store.backend import (
    LAYOUT_V1,
    LAYOUT_V2,
    FilesystemBackend,
    StoreBackend,
)
from repro.store.digest import (
    blob_digest,
    canonical_json,
    options_digest,
    stable_digest,
)
from repro.store.gc import GCReport
from repro.store.index import StoreIndex
from repro.store.locking import FileLock, LockTimeout
from repro.store.store import (
    STORE_FORMAT,
    ArtifactStore,
    default_store_root,
    digest_of_binary,
    elf_bytes_of,
)

__all__ = [
    "ArtifactStore",
    "STORE_FORMAT",
    "default_store_root",
    "digest_of_binary",
    "elf_bytes_of",
    "StoreBackend",
    "FilesystemBackend",
    "LAYOUT_V1",
    "LAYOUT_V2",
    "FileLock",
    "LockTimeout",
    "StoreIndex",
    "GCReport",
    "blob_digest",
    "canonical_json",
    "options_digest",
    "stable_digest",
]
