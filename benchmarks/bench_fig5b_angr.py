"""Figure 5b — ANGR strategy ladder: full coverage / full accuracy counts."""

from repro.eval import run_figure5b
from repro.eval.tables import render_strategy_outcomes


def test_figure5b_angr_strategies(
    benchmark, selfbuilt_corpus, report_writer, make_evaluator
):
    evaluator = make_evaluator(selfbuilt_corpus)
    outcomes = benchmark.pedantic(
        lambda: evaluator.timed(
            "ladder", run_figure5b, selfbuilt_corpus, evaluator=evaluator
        ),
        rounds=1,
        iterations=1,
    )
    evaluator.write_bench("figure5b_angr")
    report_writer(
        "figure5b_angr", render_strategy_outcomes("Figure 5b — ANGR strategies", outcomes)
    )
    by_label = {o.label: o for o in outcomes}

    # Function merging can only lose coverage relative to plain recursion.
    assert by_label["FDE+Rec+Fmerg"].full_coverage <= by_label["FDE+Rec"].full_coverage
    # Prologue matching and linear scanning destroy accuracy.
    assert by_label["FDE+Rec+Fsig"].full_accuracy < by_label["FDE+Rec"].full_accuracy
    assert by_label["FDE+Rec+Scan"].full_accuracy <= by_label["FDE+Rec+Fsig"].full_accuracy
    # The heuristic tail-call detection also costs accuracy.
    assert by_label["FDE+Rec+Tcall"].full_accuracy < by_label["FDE+Rec"].full_accuracy
