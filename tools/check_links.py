#!/usr/bin/env python3
"""Markdown link checker for the docs CI job.

Scans markdown files for inline links and validates, without any network
access:

* relative file links resolve to an existing file (relative to the file
  containing the link);
* intra-document anchors (``#section``) and anchors on relative links
  (``OTHER.md#section``) match a heading in the target document, using
  GitHub's heading→anchor slug rules;
* absolute ``http(s)``/``mailto`` links are accepted without fetching.

Usage::

    python tools/check_links.py README.md EXPERIMENTS.md docs/*.md

Exits non-zero listing every broken link, so doc snippets referencing
moved or renamed files fail loudly in CI.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: inline markdown links: [text](target) — images share the syntax
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")
_CODE_FENCE = re.compile(r"^(```|~~~)")


def _slugify(heading: str) -> str:
    """GitHub's heading → anchor rule: lowercase, strip punctuation, dashes."""
    heading = re.sub(r"[`*_]", "", heading.strip().lower())
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match:
            anchors.add(_slugify(match.group(1)))
    return anchors


def _links(path: Path) -> list[tuple[int, str]]:
    links: list[tuple[int, str]] = []
    in_fence = False
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        links.extend((number, match.group(1)) for match in _LINK.finditer(line))
    return links


def check_file(path: Path) -> list[str]:
    problems: list[str] = []
    for line_number, target in _links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        resolved = path if not base else (path.parent / base).resolve()
        if base and not resolved.exists():
            problems.append(f"{path}:{line_number}: broken link target {target!r}")
            continue
        if fragment and resolved.suffix.lower() in (".md", ""):
            if resolved.is_file() and fragment not in _anchors(resolved):
                problems.append(
                    f"{path}:{line_number}: no heading for anchor {target!r}"
                )
    return problems


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    problems: list[str] = []
    checked = 0
    for name in argv:
        path = Path(name)
        if not path.is_file():
            problems.append(f"{path}: no such file")
            continue
        checked += 1
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {checked} file(s): {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
