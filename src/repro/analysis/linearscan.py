"""Linear scanning of code gaps (the angr-style unsafe approach).

After recursive disassembly, angr linearly sweeps the remaining gaps and
treats the beginning of each successfully-decoded piece of code as a new
function start (§II-B item 3).  The paper shows this eliminates full-accuracy
binaries entirely; we reproduce the behaviour: skip leading padding, decode
linearly, and report the address where decoding succeeded.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.padding import skip_padding_bytes
from repro.elf.image import BinaryImage
from repro.x86.disassembler import decode_range

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.context import AnalysisContext

#: Minimum decodable instructions for a gap piece to count as code.
_MIN_INSTRUCTIONS = 2
#: Maximum function-start candidates reported per gap.
_MAX_PIECES_PER_GAP = 4

_ENDBR64 = b"\xf3\x0f\x1e\xfa"


def linear_scan_gaps(
    image: BinaryImage,
    gaps: list[tuple[int, int]],
    *,
    context: "AnalysisContext | None" = None,
    require_endbr: bool = False,
) -> set[int]:
    """Return the starts of decodable code pieces found inside ``gaps``.

    ``require_endbr`` is the CET-aware mode: with indirect-branch tracking a
    function entry must be an ``endbr64`` landing pad, so pieces that do not
    start with one are rejected (scan-based detectors on CET binaries use
    this to suppress mid-function false starts).
    """
    cache = context.decode_cache if context is not None else None
    starts: set[int] = set()
    for gap_start, gap_end in gaps:
        section = image.section_containing(gap_start)
        if section is None:
            continue
        data = section.data
        cursor = gap_start
        end = min(gap_end, section.end_address)
        pieces = 0
        while cursor < end and pieces < _MAX_PIECES_PER_GAP:
            cursor = skip_padding_bytes(data, section.address, cursor, end)
            if cursor >= end:
                break
            decoded = list(
                decode_range(
                    data,
                    section.address,
                    cursor - section.address,
                    end - section.address,
                    stop_on_error=True,
                    cache=cache,
                )
            )
            meaningful = [i for i in decoded if not i.is_padding]
            if len(meaningful) >= _MIN_INSTRUCTIONS:
                pieces += 1
                # Report the first non-padding instruction: multi-byte NOP
                # runs (66 0f 1f ...) decode fine but are filler, exactly
                # like the single-byte padding skipped above.
                piece_start = meaningful[0].address
                offset = piece_start - section.address
                if not require_endbr or data[offset : offset + 4] == _ENDBR64:
                    starts.add(piece_start)
            if decoded:
                cursor = decoded[-1].end + 1
            else:
                cursor += 1
    return starts
