"""Tests for the scenario-matrix corpus subsystem and its evaluation runner:
PIE/PLT, CET, ICF, padded-entry and stripped-noeh binaries, the CET-aware
detector paths, the ScenarioMatrix runner and the process-pool backend."""

from __future__ import annotations

import pytest

from repro.analysis.prologue import (
    CET_PROLOGUE_PATTERNS,
    PROLOGUE_PATTERNS,
    select_prologue_patterns,
)
from repro.core import FetchDetector, FetchOptions
from repro.elf import constants as EC
from repro.elf.image import BinaryImage
from repro.eval import CorpusEvaluator, ScenarioMatrix, compute_metrics, run_scenario_matrix
from repro.synth import (
    SCENARIO_NAMES,
    build_scenario_corpus,
    compile_program,
    plan_program,
)
from repro.synth.profiles import CompilerFamily, OptLevel, default_profile

_ENDBR = b"\xf3\x0f\x1e\xfa"


def _build(scenario, seed=7, count=25, **kwargs):
    profile = default_profile(CompilerFamily.GCC, OptLevel.O2)
    plan = plan_program(
        f"scen-{scenario}", profile, seed=seed, scenario=scenario,
        function_count=count, **kwargs
    )
    return compile_program(plan, keep_elf_bytes=True)


@pytest.fixture(scope="module")
def scenario_binaries():
    return {scenario: _build(scenario) for scenario in SCENARIO_NAMES}


# ----------------------------------------------------------------------
# Scenario construction invariants
# ----------------------------------------------------------------------

def test_unknown_scenario_is_rejected():
    profile = default_profile(CompilerFamily.GCC, OptLevel.O2)
    with pytest.raises(ValueError, match="unknown scenario"):
        plan_program("bad", profile, seed=1, scenario="riscv")
    with pytest.raises(ValueError, match="unknown scenario"):
        build_scenario_corpus("riscv")


def test_vanilla_plans_are_unchanged_by_the_scenario_machinery():
    profile = default_profile(CompilerFamily.GCC, OptLevel.O2)
    explicit = plan_program("same", profile, seed=3, scenario="vanilla")
    implicit = plan_program("same", profile, seed=3)
    assert [f.name for f in explicit.functions] == [f.name for f in implicit.functions]
    assert compile_program(explicit).image.elf.sections[0].data == \
        compile_program(implicit).image.elf.sections[0].data


def test_pie_scenario_builds_et_dyn_with_plt(scenario_binaries):
    binary = scenario_binaries["pie"]
    image = binary.image
    assert image.is_pie
    assert image.elf.elf_type == EC.ET_DYN
    plt = image.section(".plt")
    got = image.section(".got.plt")
    assert plt is not None and plt.is_executable
    assert got is not None and got.is_writable and not got.is_executable

    stubs = [f for f in binary.ground_truth.functions if f.kind == "plt"]
    assert len(stubs) >= 4  # the header plus >= 3 stubs
    for info in stubs:
        assert plt.contains(info.address)
        assert not info.has_fde
    # GOT lazy slots point into the middle of their stubs (stub + 6).
    reserved = 3 * 8
    slots = [
        int.from_bytes(got.data[offset : offset + 8], "little")
        for offset in range(reserved, len(got.data), 8)
    ]
    stub_addresses = {f.address for f in stubs if f.name.endswith("@plt")}
    assert {slot - 6 for slot in slots} == stub_addresses
    # PIE survives an ELF write/read round trip.
    reloaded = BinaryImage.from_bytes(binary.elf_bytes, "rt")
    assert reloaded.is_pie and reloaded.section(".plt") is not None


def test_pie_plt_stubs_are_recovered_by_call_targets(scenario_binaries):
    binary = scenario_binaries["pie"]
    result = FetchDetector().detect(binary.image)
    stub_addresses = {
        f.address
        for f in binary.ground_truth.functions
        if f.kind == "plt" and f.name.endswith("@plt")
    }
    assert stub_addresses <= result.function_starts


def test_cet_scenario_prefixes_every_fde_function_with_endbr(scenario_binaries):
    binary = scenario_binaries["cet"]
    image = binary.image
    assert image.uses_cet
    for info in binary.ground_truth.functions:
        if info.has_fde:
            assert image.read(info.address, 4) == _ENDBR, info.name
    # Non-CET binaries are not misclassified.
    assert not scenario_binaries["vanilla"].image.uses_cet


def test_cet_aware_pattern_selection(scenario_binaries):
    assert select_prologue_patterns(scenario_binaries["cet"].image) == CET_PROLOGUE_PATTERNS
    assert select_prologue_patterns(scenario_binaries["vanilla"].image) == PROLOGUE_PATTERNS


def test_icf_scenario_folds_symbols_onto_shared_bodies(scenario_binaries):
    binary = scenario_binaries["icf"]
    folded = [f for f in binary.ground_truth.functions if f.folded_aliases]
    assert folded, "ICF scenario must fold at least one function"
    symbols = {s.name: s.address for s in binary.image.symbols}
    for info in folded:
        for alias in info.folded_aliases:
            assert symbols[alias] == info.address
    # Folding adds symbols, not functions: more symbols than bodies at .text.
    function_symbols = [s for s in binary.image.function_symbols]
    assert len(function_symbols) > len({s.address for s in function_symbols})


def test_padded_scenario_entries_start_with_nop_runs(scenario_binaries):
    binary = scenario_binaries["padded"]
    padded = [f for f in binary.ground_truth.functions if f.entry_padding]
    assert padded, "padded scenario must pad at least one entry"
    from repro.x86.disassembler import decode_instruction

    for info in padded:
        section = binary.image.section_containing(info.address)
        offset = info.address - section.address
        consumed = 0
        while consumed < info.entry_padding:
            insn = decode_instruction(section.data, offset + consumed, info.address + consumed)
            assert insn.mnemonic == "nop"
            consumed += insn.size
        assert consumed == info.entry_padding
    # The FDE still covers the true (padded) start, so FETCH stays exact.
    result = FetchDetector().detect(binary.image)
    metrics = compute_metrics(binary.ground_truth, result.function_starts)
    assert {f.address for f in padded} & metrics.false_negatives == set()


def test_stripped_noeh_scenario_has_neither_symbols_nor_eh(scenario_binaries):
    binary = scenario_binaries["stripped-noeh"]
    image = binary.image
    assert not image.has_eh_frame and not image.has_symbols
    # The written ELF drops .symtab entirely, like `strip` output.
    reloaded = BinaryImage.from_bytes(binary.elf_bytes, "rt")
    assert reloaded.elf.section(".symtab") is None


def test_fetch_entry_fallback_recovers_functions_without_eh(scenario_binaries):
    binary = scenario_binaries["stripped-noeh"]
    with_fallback = FetchDetector().detect(binary.image)
    without = FetchDetector(FetchOptions(fallback_entry_seed=False)).detect(binary.image)
    # Without the fallback only pointer-validated starts survive (no FDE and
    # no entry seed); the entry function itself is unreachable.
    assert binary.image.entry_point not in without.function_starts
    assert without.function_starts < with_fallback.function_starts
    metrics = compute_metrics(binary.ground_truth, with_fallback.function_starts)
    # Recursive traversal from the entry point recovers most call-reachable
    # functions even with no .eh_frame and no symbols.
    assert metrics.recall > 0.8


# ----------------------------------------------------------------------
# ScenarioMatrix runner and the process-pool backend
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def tiny_corpora():
    return {
        scenario: build_scenario_corpus(scenario, scale=0.25, programs=2, seed=11)
        for scenario in ("vanilla", "cet", "stripped-noeh")
    }


def test_scenario_matrix_covers_every_cell(tiny_corpora):
    cells = run_scenario_matrix(tiny_corpora)
    assert set(cells) == set(tiny_corpora)
    for scenario, row in cells.items():
        assert len(row) == 10
        for tool, summary in row.items():
            assert summary["binaries"] == 2, (scenario, tool)


def test_scenario_matrix_bench_record(tmp_path, tiny_corpora):
    matrix = ScenarioMatrix(
        {"vanilla": tiny_corpora["vanilla"]}, bench_dir=tmp_path
    )
    matrix.run()
    path = matrix.write_bench("matrix_smoke", extra={"note": 1})
    assert path is not None and path.name == "BENCH_matrix_smoke.json"
    import json

    record = json.loads(path.read_text())
    assert record["cells"]["vanilla"]["fetch"]["binaries"] == 2
    assert record["scenarios"] == {"vanilla": 2}
    assert record["extra"] == {"note": 1}
    assert any(key.startswith("vanilla:") for key in record["timings_seconds"])


def test_process_pool_matches_serial_evaluation(tiny_corpora):
    corpus = tiny_corpora["vanilla"] + tiny_corpora["cet"]
    serial = CorpusEvaluator(corpus).run_detector(FetchDetector)
    with CorpusEvaluator(corpus, workers=2) as evaluator:
        parallel = evaluator.run_detector(FetchDetector)
        fde_serial = CorpusEvaluator(corpus).fde_only_metrics()
        fde_parallel = evaluator.fde_only_metrics()
    assert [m.__dict__ for m in parallel.per_binary] == [m.__dict__ for m in serial.per_binary]
    assert [m.__dict__ for m in fde_parallel.per_binary] == [m.__dict__ for m in fde_serial.per_binary]


def test_process_pool_aggregates_decode_stats(tiny_corpora):
    """Worker decode counts fold back into the parent's ``DECODE_STATS``."""
    from repro.x86.disassembler import DECODE_STATS

    corpus = tiny_corpora["vanilla"]
    before = DECODE_STATS.raw_decodes
    CorpusEvaluator(corpus).run_detector(FetchDetector)
    serial_decodes = DECODE_STATS.raw_decodes - before
    assert serial_decodes > 0

    before = DECODE_STATS.raw_decodes
    with CorpusEvaluator(corpus, workers=2) as evaluator:
        evaluator.run_detector(FetchDetector)
    assert DECODE_STATS.raw_decodes - before == serial_decodes


def test_cold_detection_decode_count_is_exact(tiny_corpora):
    """``DECODE_STATS.raw_decodes`` counts exactly the cache-filling work.

    The span-cached cold pipeline must decode every instruction at most once
    and never decode past what it records: the raw-decode delta of a cold
    detection equals the decode-cache population (each raw decode fills
    exactly one slot — no prefetch overshoot, no uncached decodes), and a
    warm re-run on the same context performs zero raw decodes.
    """
    from repro.core import AnalysisContext
    from repro.x86.disassembler import DECODE_STATS

    for corpus in tiny_corpora.values():
        for binary in corpus:
            image = BinaryImage(elf=binary.image.elf, name=binary.name)
            context = AnalysisContext(image)
            before = DECODE_STATS.raw_decodes
            FetchDetector().detect(image, context)
            cold = DECODE_STATS.raw_decodes - before
            assert cold == len(context.decode_cache) > 0

            before = DECODE_STATS.raw_decodes
            FetchDetector().detect(image, context)
            assert DECODE_STATS.raw_decodes == before


def test_process_pool_tool_comparison_matches_threads(tiny_corpora):
    from repro.eval import run_tool_comparison

    corpus = tiny_corpora["vanilla"]
    threads = CorpusEvaluator(corpus, jobs=2)
    with CorpusEvaluator(corpus, workers=2) as processes:
        assert run_tool_comparison(corpus, evaluator=processes) == run_tool_comparison(
            corpus, evaluator=threads
        )


def test_closures_fall_back_to_the_thread_backend(tiny_corpora):
    corpus = tiny_corpora["vanilla"]
    with CorpusEvaluator(corpus, workers=2) as evaluator:
        seen = []

        def not_picklable(binary, context):
            seen.append(binary.name)
            return binary.name

        names = evaluator.map(not_picklable, corpus)
    assert names == [binary.name for binary in corpus]
    assert sorted(seen) == sorted(names)


def test_foreign_binaries_fall_back_to_the_thread_backend(tiny_corpora):
    with CorpusEvaluator(tiny_corpora["vanilla"], workers=2) as evaluator:
        foreign = tiny_corpora["cet"]
        from repro.eval.runner import _fde_only_binary_metrics

        per = evaluator.map(_fde_only_binary_metrics, foreign)
    assert len(per) == len(foreign)


def test_unshared_evaluator_with_workers_stays_off_the_process_pool(tiny_corpora):
    # share_contexts=False promises a fresh context per request; the process
    # backend cannot honor that, so such an evaluator must stay on threads.
    from repro.eval.runner import _fde_only_binary_metrics

    corpus = tiny_corpora["vanilla"]
    unshared = CorpusEvaluator(corpus, workers=2, share_contexts=False)
    assert not unshared._can_use_processes(_fde_only_binary_metrics, corpus, ())
    shared = CorpusEvaluator(corpus, workers=2)
    assert shared._can_use_processes(_fde_only_binary_metrics, corpus, ())
    shared.close()
    # Results are identical either way.
    assert [m.__dict__ for m in unshared.fde_only_metrics().per_binary] == [
        m.__dict__ for m in CorpusEvaluator(corpus).fde_only_metrics().per_binary
    ]


def test_unpicklable_fn_args_fall_back_to_threads(tiny_corpora):
    from repro.eval.runner import _detect_binary_metrics

    corpus = tiny_corpora["vanilla"]

    class UnpicklableDetector:
        name = "unpicklable"
        _handle = lambda: None  # noqa: E731 - instance-level lambda defeats pickle

        def __init__(self):
            self.closure = lambda: None

        def detect(self, image, context=None):
            return FetchDetector().detect(image, context)

    with CorpusEvaluator(corpus, workers=2) as evaluator:
        per = evaluator.map(
            _detect_binary_metrics, corpus, fn_args=(UnpicklableDetector(),)
        )
    assert len(per) == len(corpus)


def test_pattern_baselines_survive_malformed_eh_frame(scenario_binaries):
    # uses_cet probes FDE starts; a corrupt .eh_frame must degrade to
    # "not CET", not crash detectors that never read .eh_frame themselves.
    from repro.baselines import ByteWeightLike
    from repro.elf.structs import ElfFile, Section

    source = scenario_binaries["cet"].image
    broken_sections = []
    for section in source.elf.sections:
        if section.name == ".eh_frame":
            data = bytearray(section.data)
            data[4:8] = b"\xff\xfe\xfd\xfc"  # corrupt the first CIE id field
            section = Section(name=section.name, data=bytes(data),
                              address=section.address, flags=section.flags)
        broken_sections.append(section)
    image = BinaryImage(
        elf=ElfFile(sections=broken_sections, symbols=source.elf.symbols,
                    entry_point=0),  # no entry: force the FDE-sampling path
        name="broken-eh",
    )
    assert image.uses_cet is False
    result = ByteWeightLike().detect(image)
    assert result.function_starts  # signature matching still ran
