#!/usr/bin/env python3
"""Mini tool comparison: FETCH against the eight baseline models (§VI).

Builds a small self-built-style corpus and prints a condensed version of the
paper's Table III (false positives / false negatives per tool) plus average
per-binary analysis time (Table V).  The full-size versions live in
``benchmarks/bench_table3_comparison.py`` and ``bench_table5_timing.py``.
"""

from __future__ import annotations

import time

from repro.baselines import all_comparison_tools
from repro.core import FetchDetector
from repro.eval.metrics import compute_metrics
from repro.synth import build_selfbuilt_corpus


def main() -> None:
    corpus = build_selfbuilt_corpus(scale=0.4, max_binaries=16)
    functions = sum(b.function_count for b in corpus)
    print(f"corpus: {len(corpus)} binaries, {functions} functions\n")

    print(f"{'tool':<12} {'FP':>6} {'FN':>6} {'time/binary':>12}")
    for tool in all_comparison_tools() + [FetchDetector()]:
        false_positives = false_negatives = 0
        started = time.perf_counter()
        for binary in corpus:
            result = tool.detect(binary.image)
            metrics = compute_metrics(binary.ground_truth, result.function_starts)
            false_positives += metrics.fp_count
            false_negatives += metrics.fn_count
        elapsed = (time.perf_counter() - started) / len(corpus)
        print(f"{tool.name:<12} {false_positives:>6d} {false_negatives:>6d} {elapsed:>11.3f}s")

    print("\nFETCH should show by far the fewest false positives and false")
    print("negatives, at a runtime comparable to the fastest tools.")


if __name__ == "__main__":
    main()
