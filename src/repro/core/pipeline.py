"""The FETCH detection pipeline.

FETCH (§VI) composes four stages, every one of them switchable so the
coverage/accuracy ladders of the paper (Figure 5) can be reproduced:

1. **FDE extraction** — take every FDE ``PC Begin`` as a candidate start, and
   optionally drop candidates whose entry violates calling conventions (the
   hand-written-CFI errors of §V-A).
2. **Safe recursive disassembly** — grow the set with targets of direct calls
   (§IV-C), using conservative jump-table and noreturn handling.
3. **Function-pointer validation** — collect the conservative pointer
   super-set and accept only candidates that survive re-disassembly without
   errors (§IV-E).
4. **Algorithm 1** — detect tail calls and merge non-contiguous parts (§V-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.recursive import RecursiveDisassembler
from repro.analysis.xrefs import collect_potential_pointers, validate_function_pointer
from repro.core.context import AnalysisContext, context_for
from repro.core.fde_source import extract_fde_starts
from repro.core.registry import register_detector
from repro.core.results import DetectionResult
from repro.core.tailcall import detect_tail_calls_and_merge
from repro.elf.image import BinaryImage


@dataclass(frozen=True)
class FetchOptions:
    """Stage toggles for the FETCH pipeline."""

    #: also seed from function symbols (the paper's tool studies do; plain
    #: FETCH does not need symbols)
    use_symbols: bool = False
    #: drop FDE starts whose entry violates calling conventions (§V-B end)
    validate_fde_starts: bool = True
    #: run safe recursive disassembly (stage 2)
    use_recursion: bool = True
    #: run function-pointer collection + validation (stage 3)
    use_pointer_validation: bool = True
    #: run Algorithm 1 tail-call detection / merging (stage 4)
    use_tail_call_analysis: bool = True
    #: on binaries with no usable ``.eh_frame`` (the stripped-and-stripped-of-
    #: eh scenario), fall back to seeding from the entry point so recursive
    #: disassembly still recovers the call-reachable functions.  Never fires
    #: when FDEs are present, so EH-carrying binaries are unaffected.
    fallback_entry_seed: bool = True


@register_detector(
    "fetch",
    options=FetchOptions,
    order=100,
    needs_eh_frame=True,
    description="FDE seeds, safe recursion, pointer validation, Algorithm 1",
)
class FetchDetector:
    """Function-start detection with exception-handling information."""

    def __init__(self, options: FetchOptions | None = None):
        self.options = options or FetchOptions()

    # ------------------------------------------------------------------
    def detect(
        self, image: BinaryImage, context: AnalysisContext | None = None
    ) -> DetectionResult:
        """Run the configured pipeline stages on ``image``.

        ``context`` shares decoded instructions, CFA tables and image scans
        with other detector runs over the same image; omitting it gives the
        run a private context with identical results.
        """
        options = self.options
        context = context_for(image, context)
        result = DetectionResult(binary_name=image.name)

        # Stage 1: FDE starts (plus symbols when requested).
        seeds = extract_fde_starts(image)
        if options.use_symbols:
            seeds |= {s.address for s in image.function_symbols}
        if not seeds and options.fallback_entry_seed and image.entry_point:
            seeds = {image.entry_point}
        seeds = {address for address in seeds if image.is_executable_address(address)}

        invalid_fde_starts: set[int] = set()
        if options.validate_fde_starts:
            invalid_fde_starts = context.filter_invalid_entries(seeds)
        result.record_stage("fde", seeds - invalid_fde_starts, set())
        if invalid_fde_starts:
            result.removed_by_stage["fde_validation"] = invalid_fde_starts

        if not options.use_recursion:
            return result

        # Stage 2: safe recursive disassembly.
        disassembler = RecursiveDisassembler(image, context=context)
        disassembly = disassembler.disassemble(result.function_starts)
        result.disassembly = disassembly
        recursion_added = {
            target
            for target in disassembly.call_targets
            if image.is_executable_address(target) and target not in result.function_starts
        }
        result.record_stage("recursion", recursion_added, set())

        # Stage 3: function-pointer collection and validation.
        validated_pointers: set[int] = set()
        if options.use_pointer_validation:
            candidates = collect_potential_pointers(image, disassembly, context=context)
            for candidate in sorted(candidates):
                if candidate in result.function_starts:
                    continue
                if validate_function_pointer(
                    image, candidate, disassembly, result.function_starts, context=context
                ):
                    validated_pointers.add(candidate)
            if validated_pointers:
                extension = disassembler.disassemble(validated_pointers)
                disassembly.functions.update(extension.functions)
                disassembly.instructions.update(extension.instructions)
                disassembly.call_targets.update(extension.call_targets)
                disassembly.code_constants.update(extension.code_constants)
            result.record_stage("xref", validated_pointers, set())

        # Stage 4: Algorithm 1 — tail calls and non-contiguous merging.
        if options.use_tail_call_analysis:
            outcome = detect_tail_calls_and_merge(
                image,
                disassembly,
                result.function_starts,
                extra_references=validated_pointers,
                context=context,
            )
            new_tail_targets = outcome.added_starts - result.function_starts
            if new_tail_targets:
                extension = disassembler.disassemble(new_tail_targets)
                disassembly.functions.update(extension.functions)
                disassembly.instructions.update(extension.instructions)
            result.tail_call_targets = outcome.tail_call_targets
            result.merged_parts = outcome.merged
            result.record_stage("tailcall", new_tail_targets, outcome.removed_starts)

        return result
