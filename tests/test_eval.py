"""Tests for metrics, experiment runners and table renderers."""

from repro.eval import (
    BinaryMetrics,
    CorpusMetrics,
    compute_metrics,
    render_figure5,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    run_algorithm1_study,
    run_fde_coverage_study,
    run_fde_error_study,
    run_figure5c,
    run_selfbuilt_fde_study,
    run_stack_height_study,
    run_timing_study,
    run_tool_comparison,
    run_wild_study,
)
from repro.eval.tables import render_algorithm1, render_fde_coverage, render_fde_errors
from repro.synth import build_wild_corpus
from repro.synth.groundtruth import FunctionInfo, GroundTruth


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

def make_truth():
    truth = GroundTruth(name="demo")
    truth.functions = [
        FunctionInfo(name="a", address=0x1000, size=16),
        FunctionInfo(name="b", address=0x1010, size=16, cold_part_addresses=[0x2000]),
        FunctionInfo(name="c", address=0x1020, size=16),
    ]
    return truth


def test_metrics_exact_detection():
    metrics = compute_metrics(make_truth(), {0x1000, 0x1010, 0x1020})
    assert metrics.fp_count == 0 and metrics.fn_count == 0
    assert metrics.full_accuracy and metrics.full_coverage
    assert metrics.precision == 1.0 and metrics.recall == 1.0


def test_metrics_classifies_cold_part_false_positives():
    metrics = compute_metrics(make_truth(), {0x1000, 0x1010, 0x1020, 0x2000, 0x3000})
    assert metrics.fp_count == 2
    assert metrics.cold_part_false_positives == {0x2000}
    assert not metrics.full_accuracy and metrics.full_coverage


def test_metrics_false_negatives():
    metrics = compute_metrics(make_truth(), {0x1000})
    assert metrics.fn_count == 2
    assert not metrics.full_coverage
    assert metrics.recall == 1 / 3


def test_corpus_metrics_aggregation():
    corpus = CorpusMetrics()
    corpus.add(compute_metrics(make_truth(), {0x1000, 0x1010, 0x1020}))
    corpus.add(compute_metrics(make_truth(), {0x1000, 0x2000}))
    assert corpus.binary_count == 2
    assert corpus.total_functions == 6
    assert corpus.total_false_positives == 1
    assert corpus.total_false_negatives == 2
    assert corpus.binaries_with_full_accuracy == 1
    assert corpus.binaries_with_full_coverage == 1
    summary = corpus.summary()
    assert summary["binaries"] == 2 and summary["false_positives"] == 1


def test_empty_truth_has_perfect_defaults():
    metrics = BinaryMetrics(binary_name="x", true_count=0, detected_count=0)
    assert metrics.precision == 1.0 and metrics.recall == 1.0


# ----------------------------------------------------------------------
# Experiment runners (shapes of the paper's results)
# ----------------------------------------------------------------------

def test_fde_coverage_study_shape(small_corpus):
    study = run_fde_coverage_study(small_corpus)
    assert study.binary_count == len(small_corpus)
    assert 95.0 < study.coverage_percent <= 100.0
    # Anything FDEs miss must be assembly functions or clang's terminate stub.
    assert set(study.missed_by_kind) <= {"asm", "terminate"}


def test_fde_error_study_blames_non_contiguous_functions(small_corpus):
    study = run_fde_error_study(small_corpus)
    assert study.total_false_positives >= study.from_non_contiguous_functions
    assert study.from_non_contiguous_functions + study.from_handwritten_fdes == (
        study.total_false_positives
    )
    assert study.binaries_with_false_positives <= study.binary_count


def test_algorithm1_study_removes_most_false_positives(small_corpus):
    study = run_algorithm1_study(small_corpus)
    assert study.false_positives_after <= study.false_positives_before
    assert study.full_accuracy_after >= study.full_accuracy_before
    assert study.new_false_negatives >= study.new_false_negatives_tailcall_only
    if study.false_positives_before:
        assert study.false_positive_reduction_percent >= 80.0


def test_figure5c_ladder_shape(small_corpus):
    outcomes = run_figure5c(small_corpus)
    labels = [o.label for o in outcomes]
    assert labels == ["FDE", "FDE+Rec", "FDE+Rec+Xref", "FDE+Rec+Xref+Tcall"]
    by_label = {o.label: o for o in outcomes}
    # Recursion and pointer validation only improve coverage.
    assert by_label["FDE+Rec"].full_coverage >= by_label["FDE"].full_coverage
    assert by_label["FDE+Rec+Xref"].full_coverage >= by_label["FDE+Rec"].full_coverage
    # Algorithm 1 is what fixes accuracy.
    assert (
        by_label["FDE+Rec+Xref+Tcall"].full_accuracy
        >= by_label["FDE+Rec+Xref"].full_accuracy
    )


def test_tool_comparison_has_all_tools_and_levels(small_corpus):
    results = run_tool_comparison(small_corpus)
    assert "Avg." in results
    for row in results.values():
        assert "fetch" in row and "ghidra" in row and "bap" in row
    average = results["Avg."]
    assert average["fetch"].false_positives <= average["bap"].false_positives


def test_stack_height_study_reports_high_precision(small_corpus):
    results = run_stack_height_study(small_corpus[:3])
    assert results
    for cells in results.values():
        for flavor in ("angr", "dyninst"):
            for scope in ("full", "jump"):
                cell = cells[flavor][scope]
                assert 0 <= cell.matching <= cell.reported <= cell.total
                if cell.reported:
                    assert cell.precision > 80.0


def test_timing_study_reports_all_tools(small_corpus):
    timings = run_timing_study(small_corpus[:2])
    assert set(timings) >= {"fetch", "ghidra", "angr", "dyninst"}
    assert all(value >= 0 for value in timings.values())


def test_wild_study_reports_symbolless_binaries_without_ratio():
    corpus = build_wild_corpus(scale=0.15, max_binaries=6)
    rows = run_wild_study(corpus)
    assert len(rows) == 6
    for row, (profile, _) in zip(rows, corpus):
        assert row.has_eh_frame
        if profile.has_symbols:
            assert row.fde_symbol_percent is not None
        else:
            assert row.fde_symbol_percent is None


def test_selfbuilt_fde_study_groups_by_project(small_corpus):
    rows = run_selfbuilt_fde_study(small_corpus)
    assert rows
    for row in rows:
        assert row.has_eh_frame
        assert 90.0 <= row.fde_symbol_percent <= 100.0


# ----------------------------------------------------------------------
# Renderers
# ----------------------------------------------------------------------

def test_renderers_produce_readable_tables(small_corpus):
    coverage = render_fde_coverage(run_fde_coverage_study(small_corpus[:2]))
    errors = render_fde_errors(run_fde_error_study(small_corpus[:2]))
    algorithm1 = render_algorithm1(run_algorithm1_study(small_corpus[:2]))
    assert "coverage" in coverage and "Q1" in coverage
    assert "false positives" in errors
    assert "Algorithm 1" in algorithm1

    table3 = render_table3(run_tool_comparison(small_corpus[:2]))
    assert "fetch" in table3 and "Avg." in table3

    table4 = render_table4(run_stack_height_study(small_corpus[:2]))
    assert "angr" in table4 and "dyninst" in table4

    table5 = render_table5(run_timing_study(small_corpus[:1]))
    assert "fetch" in table5

    wild = build_wild_corpus(scale=0.15, max_binaries=3)
    table1 = render_table1(run_wild_study(wild))
    assert "Table I" in table1

    table2 = render_table2(run_selfbuilt_fde_study(small_corpus[:4]))
    assert "Table II" in table2

    ladder = run_figure5c(small_corpus[:2])
    figure = render_figure5(ladder, ladder, ladder)
    assert "Figure 5a" in figure and "Figure 5c" in figure
