"""Experiment runners for every table and figure of the paper.

Each ``run_*`` function takes a corpus of synthetic binaries (see
:mod:`repro.synth.corpus`) and returns plain data structures; the renderers
in :mod:`repro.eval.tables` turn them into the text tables the benchmarks
print and EXPERIMENTS.md records.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field

from repro.analysis.gadgets import count_rop_gadgets
from repro.analysis.recursive import RecursiveDisassembler
from repro.analysis.stackheight import StackHeightAnalysis
from repro.baselines import AngrLike, AngrOptions, GhidraLike, GhidraOptions, all_comparison_tools
from repro.core import FetchDetector, FetchOptions
from repro.core.fde_source import extract_fde_starts, fde_symbol_coverage
from repro.dwarf.cfa_table import build_cfa_table
from repro.eval.metrics import BinaryMetrics, CorpusMetrics, compute_metrics
from repro.synth.compiler import SyntheticBinary
from repro.synth.profiles import WildProfile


# ----------------------------------------------------------------------
# Strategy ladders (Figure 5)
# ----------------------------------------------------------------------

@dataclass
class StrategyOutcome:
    """One bar pair of Figure 5: a strategy and its corpus-level metrics."""

    label: str
    metrics: CorpusMetrics

    @property
    def full_coverage(self) -> int:
        return self.metrics.binaries_with_full_coverage

    @property
    def full_accuracy(self) -> int:
        return self.metrics.binaries_with_full_accuracy


def _fde_only_metrics(corpus: list[SyntheticBinary]) -> CorpusMetrics:
    metrics = CorpusMetrics()
    for binary in corpus:
        detected = extract_fde_starts(binary.image)
        metrics.add(compute_metrics(binary.ground_truth, detected))
    return metrics


def _run_detector_over(corpus: list[SyntheticBinary], detector_factory) -> CorpusMetrics:
    metrics = CorpusMetrics()
    for binary in corpus:
        detector = detector_factory()
        result = detector.detect(binary.image)
        metrics.add(compute_metrics(binary.ground_truth, result.function_starts))
    return metrics


def run_figure5a(corpus: list[SyntheticBinary]) -> list[StrategyOutcome]:
    """GHIDRA strategy ladder (Figure 5a)."""
    ladder = [
        ("FDE", None),
        ("FDE+Rec+CFR", GhidraOptions(control_flow_repair=True)),
        ("FDE+Rec", GhidraOptions()),
        ("FDE+Rec+Fsig", GhidraOptions(function_matching=True)),
        ("FDE+Rec+Tcall", GhidraOptions(tail_call_heuristic=True)),
    ]
    outcomes = []
    for label, options in ladder:
        if options is None:
            metrics = _fde_only_metrics(corpus)
        else:
            metrics = _run_detector_over(corpus, lambda o=options: GhidraLike(o))
        outcomes.append(StrategyOutcome(label=label, metrics=metrics))
    return outcomes


def run_figure5b(corpus: list[SyntheticBinary]) -> list[StrategyOutcome]:
    """ANGR strategy ladder (Figure 5b)."""
    ladder = [
        ("FDE", None),
        ("FDE+Rec+Fmerg", AngrOptions(function_merging=True)),
        ("FDE+Rec", AngrOptions()),
        ("FDE+Rec+Fsig", AngrOptions(function_matching=True)),
        ("FDE+Rec+Scan", AngrOptions(linear_scan=True)),
        ("FDE+Rec+Tcall", AngrOptions(tail_call_heuristic=True)),
    ]
    outcomes = []
    for label, options in ladder:
        if options is None:
            metrics = _fde_only_metrics(corpus)
        else:
            metrics = _run_detector_over(corpus, lambda o=options: AngrLike(o))
        outcomes.append(StrategyOutcome(label=label, metrics=metrics))
    return outcomes


def run_figure5c(corpus: list[SyntheticBinary]) -> list[StrategyOutcome]:
    """The optimal-strategy ladder (Figure 5c) culminating in full FETCH."""
    ladder = [
        ("FDE", None),
        (
            "FDE+Rec",
            FetchOptions(
                validate_fde_starts=False,
                use_pointer_validation=False,
                use_tail_call_analysis=False,
            ),
        ),
        (
            "FDE+Rec+Xref",
            FetchOptions(validate_fde_starts=False, use_tail_call_analysis=False),
        ),
        ("FDE+Rec+Xref+Tcall", FetchOptions()),
    ]
    outcomes = []
    for label, options in ladder:
        if options is None:
            metrics = _fde_only_metrics(corpus)
        else:
            metrics = _run_detector_over(corpus, lambda o=options: FetchDetector(o))
        outcomes.append(StrategyOutcome(label=label, metrics=metrics))
    return outcomes


# ----------------------------------------------------------------------
# §IV-B — Q1: FDE-only coverage
# ----------------------------------------------------------------------

@dataclass
class FdeCoverageStudy:
    """Q1 results: how well FDEs alone cover true function starts."""

    binary_count: int = 0
    total_functions: int = 0
    covered_functions: int = 0
    binaries_with_misses: int = 0
    missed_by_kind: dict[str, int] = field(default_factory=dict)
    symbol_count: int = 0
    symbols_covered_by_fdes: int = 0

    @property
    def coverage_percent(self) -> float:
        if self.total_functions == 0:
            return 100.0
        return 100.0 * self.covered_functions / self.total_functions


def run_fde_coverage_study(corpus: list[SyntheticBinary]) -> FdeCoverageStudy:
    study = FdeCoverageStudy()
    missed_kinds: dict[str, int] = defaultdict(int)
    for binary in corpus:
        study.binary_count += 1
        fde_starts = extract_fde_starts(binary.image)
        truth = binary.ground_truth
        study.total_functions += truth.function_count
        covered = truth.function_starts & fde_starts
        study.covered_functions += len(covered)
        missed = truth.function_starts - fde_starts
        if missed:
            study.binaries_with_misses += 1
            for address in missed:
                info = truth.by_address(address)
                missed_kinds[info.kind if info else "unknown"] += 1
        coverage = fde_symbol_coverage(binary.image)
        study.symbol_count += coverage.symbol_count
        study.symbols_covered_by_fdes += coverage.covered_symbols
    study.missed_by_kind = dict(missed_kinds)
    return study


# ----------------------------------------------------------------------
# §V-A — errors introduced by FDEs
# ----------------------------------------------------------------------

@dataclass
class FdeErrorStudy:
    """How many false starts FDEs introduce and what they are."""

    binary_count: int = 0
    total_false_positives: int = 0
    binaries_with_false_positives: int = 0
    from_non_contiguous_functions: int = 0
    from_handwritten_fdes: int = 0
    rop_gadgets_at_false_starts: int = 0
    worst_binary: str = ""
    worst_binary_false_positives: int = 0


def run_fde_error_study(corpus: list[SyntheticBinary]) -> FdeErrorStudy:
    study = FdeErrorStudy()
    for binary in corpus:
        study.binary_count += 1
        truth = binary.ground_truth
        fde_starts = extract_fde_starts(binary.image)
        false_positives = fde_starts - truth.function_starts
        if false_positives:
            study.binaries_with_false_positives += 1
        study.total_false_positives += len(false_positives)
        cold = false_positives & truth.cold_part_starts
        study.from_non_contiguous_functions += len(cold)
        study.from_handwritten_fdes += len(false_positives - cold)
        study.rop_gadgets_at_false_starts += sum(
            count_rop_gadgets(binary.image, address) for address in false_positives
        )
        if len(false_positives) > study.worst_binary_false_positives:
            study.worst_binary_false_positives = len(false_positives)
            study.worst_binary = binary.name
    return study


# ----------------------------------------------------------------------
# §V-C — Algorithm 1 evaluation
# ----------------------------------------------------------------------

@dataclass
class Algorithm1Study:
    """Effect of Algorithm 1 on FDE-introduced errors."""

    false_positives_before: int = 0
    false_positives_after: int = 0
    full_accuracy_before: int = 0
    full_accuracy_after: int = 0
    full_coverage_before: int = 0
    full_coverage_after: int = 0
    new_false_negatives: int = 0
    new_false_negatives_tailcall_only: int = 0

    @property
    def false_positive_reduction_percent(self) -> float:
        if self.false_positives_before == 0:
            return 0.0
        removed = self.false_positives_before - self.false_positives_after
        return 100.0 * removed / self.false_positives_before


def run_algorithm1_study(corpus: list[SyntheticBinary]) -> Algorithm1Study:
    study = Algorithm1Study()
    before_options = FetchOptions(validate_fde_starts=False, use_tail_call_analysis=False)
    after_options = FetchOptions()

    for binary in corpus:
        truth = binary.ground_truth
        before = FetchDetector(before_options).detect(binary.image)
        after = FetchDetector(after_options).detect(binary.image)
        metrics_before = compute_metrics(truth, before.function_starts)
        metrics_after = compute_metrics(truth, after.function_starts)

        study.false_positives_before += metrics_before.fp_count
        study.false_positives_after += metrics_after.fp_count
        study.full_accuracy_before += int(metrics_before.full_accuracy)
        study.full_accuracy_after += int(metrics_after.full_accuracy)
        study.full_coverage_before += int(metrics_before.full_coverage)
        study.full_coverage_after += int(metrics_after.full_coverage)

        introduced = metrics_after.false_negatives - metrics_before.false_negatives
        study.new_false_negatives += len(introduced)
        for address in introduced:
            info = truth.by_address(address)
            if info is not None and info.reachable_via == "tailcall":
                study.new_false_negatives_tailcall_only += 1
    return study


# ----------------------------------------------------------------------
# Table III — tool comparison
# ----------------------------------------------------------------------

@dataclass
class ToolComparisonCell:
    false_positives: int
    false_negatives: int
    functions: int


def run_tool_comparison(
    corpus: list[SyntheticBinary], *, include_fetch: bool = True
) -> dict[str, dict[str, ToolComparisonCell]]:
    """FP/FN per tool per optimisation level (Table III).

    Returns ``{opt_level: {tool_name: ToolComparisonCell}}`` plus an ``Avg.``
    row aggregating all levels.
    """
    tools = all_comparison_tools()
    if include_fetch:
        tools = tools + [FetchDetector()]

    by_level: dict[str, dict[str, ToolComparisonCell]] = {}
    totals: dict[str, list[int]] = defaultdict(lambda: [0, 0, 0])

    groups: dict[str, list[SyntheticBinary]] = defaultdict(list)
    for binary in corpus:
        groups[binary.plan.profile.opt_level.value].append(binary)

    for level, binaries in sorted(groups.items()):
        row: dict[str, ToolComparisonCell] = {}
        for tool in tools:
            fp = fn = functions = 0
            for binary in binaries:
                result = tool.detect(binary.image)
                metrics = compute_metrics(binary.ground_truth, result.function_starts)
                fp += metrics.fp_count
                fn += metrics.fn_count
                functions += metrics.true_count
            row[tool.name] = ToolComparisonCell(fp, fn, functions)
            totals[tool.name][0] += fp
            totals[tool.name][1] += fn
            totals[tool.name][2] += functions
        by_level[level] = row

    by_level["Avg."] = {
        name: ToolComparisonCell(*values) for name, values in totals.items()
    }
    return by_level


# ----------------------------------------------------------------------
# Table IV — stack-height analysis quality
# ----------------------------------------------------------------------

@dataclass
class StackHeightCell:
    """Precision / recall of a static stack-height analysis vs CFI."""

    matching: int = 0
    reported: int = 0
    total: int = 0

    @property
    def precision(self) -> float:
        return 100.0 * self.matching / self.reported if self.reported else 100.0

    @property
    def recall(self) -> float:
        return 100.0 * self.matching / self.total if self.total else 100.0


def run_stack_height_study(
    corpus: list[SyntheticBinary],
) -> dict[str, dict[str, dict[str, StackHeightCell]]]:
    """Compare static stack-height analyses against CFI heights (Table IV).

    Returns ``{opt_level: {flavor: {"full": cell, "jump": cell}}}``.
    """
    flavors = ("angr", "dyninst")
    results: dict[str, dict[str, dict[str, StackHeightCell]]] = {}

    groups: dict[str, list[SyntheticBinary]] = defaultdict(list)
    for binary in corpus:
        groups[binary.plan.profile.opt_level.value].append(binary)

    for level, binaries in sorted(groups.items()):
        cells = {
            flavor: {"full": StackHeightCell(), "jump": StackHeightCell()}
            for flavor in flavors
        }
        for binary in binaries:
            image = binary.image
            fdes = {fde.pc_begin: fde for fde in image.fdes}
            disassembler = RecursiveDisassembler(image)
            disassembly = disassembler.disassemble(set(fdes))
            for start, function in disassembly.functions.items():
                fde = fdes.get(start)
                if fde is None:
                    continue
                table = build_cfa_table(fde)
                if not table.has_complete_stack_height:
                    continue
                reference = {
                    address: table.stack_height_at(address)
                    for address in function.instructions
                    if fde.covers(address)
                }
                for flavor in flavors:
                    analysis = StackHeightAnalysis(flavor).analyze(function)
                    for scope in ("full", "jump"):
                        cell = cells[flavor][scope]
                        for address, expected in reference.items():
                            insn = function.instructions[address]
                            if scope == "jump" and not insn.is_jump:
                                continue
                            cell.total += 1
                            observed = analysis.get(address)
                            if observed is None:
                                continue
                            cell.reported += 1
                            if observed == expected:
                                cell.matching += 1
        results[level] = cells
    return results


# ----------------------------------------------------------------------
# Table V — timing
# ----------------------------------------------------------------------

def run_timing_study(
    corpus: list[SyntheticBinary], *, include_fetch: bool = True
) -> dict[str, float]:
    """Average analysis time per binary per tool, in seconds (Table V)."""
    tools = all_comparison_tools()
    if include_fetch:
        tools = tools + [FetchDetector()]
    timings: dict[str, float] = {}
    for tool in tools:
        start = time.perf_counter()
        for binary in corpus:
            tool.detect(binary.image)
        elapsed = time.perf_counter() - start
        timings[tool.name] = elapsed / max(len(corpus), 1)
    return timings


# ----------------------------------------------------------------------
# Tables I and II — corpus characteristics
# ----------------------------------------------------------------------

@dataclass
class WildRow:
    software: str
    open_source: bool
    language: str
    has_eh_frame: bool
    has_symbols: bool
    fde_symbol_percent: float | None


def run_wild_study(corpus: list[tuple[WildProfile, SyntheticBinary]]) -> list[WildRow]:
    """FDE-vs-symbol coverage over the wild corpus (Table I)."""
    rows: list[WildRow] = []
    for profile, binary in corpus:
        image = binary.image
        if image.has_symbols:
            ratio = fde_symbol_coverage(image).percent
        else:
            ratio = None
        rows.append(
            WildRow(
                software=profile.software,
                open_source=profile.open_source,
                language=profile.language,
                has_eh_frame=image.has_eh_frame,
                has_symbols=image.has_symbols,
                fde_symbol_percent=ratio,
            )
        )
    return rows


@dataclass
class SelfBuiltRow:
    project: str
    category: str
    language: str
    binaries: int
    has_eh_frame: bool
    fde_symbol_percent: float


def run_selfbuilt_fde_study(corpus: list[SyntheticBinary]) -> list[SelfBuiltRow]:
    """FDE-vs-symbol coverage per project over the self-built corpus (Table II)."""
    by_project: dict[str, list[SyntheticBinary]] = defaultdict(list)
    for binary in corpus:
        project = binary.name.split("-")[0] if "-" in binary.name else binary.name
        by_project[binary.name.split(":")[0].rsplit("-", 1)[0]].append(binary)

    rows: list[SelfBuiltRow] = []
    for project, binaries in sorted(by_project.items()):
        symbols = 0
        covered = 0
        has_eh = True
        for binary in binaries:
            coverage = fde_symbol_coverage(binary.image)
            symbols += coverage.symbol_count
            covered += coverage.covered_symbols
            has_eh &= binary.image.has_eh_frame
        percent = 100.0 * covered / symbols if symbols else 100.0
        rows.append(
            SelfBuiltRow(
                project=project,
                category="",
                language="",
                binaries=len(binaries),
                has_eh_frame=has_eh,
                fde_symbol_percent=percent,
            )
        )
    return rows
