"""Tests for the x86-64 encoder: exact byte sequences for known encodings."""

import pytest

from repro.x86.assembler import Assembler, EncodingError
from repro.x86.operands import Mem
from repro.x86.registers import R8, R10, R12, RAX, RBP, RBX, RDI, RSI, RSP

asm = Assembler()


def test_push_pop_classic_registers():
    assert asm.push(RBP) == b"\x55"
    assert asm.push(RBX) == b"\x53"
    assert asm.pop(RBP) == b"\x5d"


def test_push_pop_extended_registers_need_rex():
    assert asm.push(R12) == b"\x41\x54"
    assert asm.pop(R12) == b"\x41\x5c"


def test_mov_register_register():
    # mov rbp, rsp — the canonical frame-pointer setup.
    assert asm.mov_rr(RBP, RSP) == b"\x48\x89\xe5"


def test_mov_immediate_small_uses_sign_extended_form():
    encoded = asm.mov_ri(RAX, 0x1234)
    assert encoded == b"\x48\xc7\xc0\x34\x12\x00\x00"


def test_mov_immediate_large_uses_movabs():
    encoded = asm.mov_ri(R10, 0x1_2345_6789)
    assert encoded[0] == 0x49 and encoded[1] == 0xB8 + (R10.number & 7)
    assert len(encoded) == 10


def test_mov_ri32_zero_extends():
    assert asm.mov_ri32(RDI, 5) == b"\xbf\x05\x00\x00\x00"
    assert asm.mov_ri32(R8, 5) == b"\x41\xb8\x05\x00\x00\x00"


def test_sub_add_rsp_imm8():
    assert asm.sub_ri(RSP, 0x28) == b"\x48\x83\xec\x28"
    assert asm.add_ri(RSP, 0x28) == b"\x48\x83\xc4\x28"


def test_group1_imm32_form_for_large_values():
    encoded = asm.sub_ri(RSP, 0x1000)
    assert encoded[:3] == b"\x48\x81\xec"
    assert int.from_bytes(encoded[3:], "little") == 0x1000


def test_group1_rejects_values_beyond_32_bits():
    with pytest.raises(EncodingError):
        asm.add_ri(RAX, 1 << 40)


def test_lea_rip_relative():
    encoded = asm.lea(RDI, Mem(rip_relative=True, disp=0x100))
    assert encoded == b"\x48\x8d\x3d\x00\x01\x00\x00"


def test_lea_requires_memory_operand():
    with pytest.raises(EncodingError):
        asm.lea(RDI, RSI)  # type: ignore[arg-type]


def test_memory_with_rbp_base_always_has_displacement():
    # [rbp] cannot be encoded with mod=00; a disp8 of 0 is required.
    encoded = asm.mov_load(RAX, Mem(base=RBP, disp=0))
    assert encoded == b"\x48\x8b\x45\x00"


def test_memory_with_rsp_base_uses_sib():
    encoded = asm.mov_store(Mem(base=RSP, disp=8), RDI)
    assert encoded == b"\x48\x89\x7c\x24\x08"


def test_memory_with_index_scale():
    encoded = asm.jmp_mem(Mem(base=RAX, index=RDI, scale=8))
    assert encoded == b"\xff\x24\xf8"


def test_rsp_cannot_be_an_index_register():
    with pytest.raises(EncodingError):
        asm.mov_load(RAX, Mem(base=RAX, index=RSP, scale=8))


def test_call_and_jump_relative_forms():
    assert asm.call_rel32(0x50) == b"\xe8\x50\x00\x00\x00"
    assert asm.jmp_rel32(-0x30) == b"\xe9\xd0\xff\xff\xff"
    assert asm.jmp_rel8(5) == b"\xeb\x05"


def test_conditional_jumps():
    assert asm.jcc_rel8("e", -4) == b"\x74\xfc"
    assert asm.jcc_rel32("ne", 0x20) == b"\x0f\x85\x20\x00\x00\x00"


def test_indirect_call_through_register_and_memory():
    assert asm.call_reg(RAX) == b"\xff\xd0"
    assert asm.call_mem(Mem(rip_relative=True, disp=0x2000)) == b"\xff\x15\x00\x20\x00\x00"


def test_simple_opcodes():
    assert asm.ret() == b"\xc3"
    assert asm.leave() == b"\xc9"
    assert asm.endbr64() == b"\xf3\x0f\x1e\xfa"
    assert asm.syscall() == b"\x0f\x05"
    assert asm.ud2() == b"\x0f\x0b"
    assert asm.hlt() == b"\xf4"


def test_nop_padding_produces_exact_length():
    for length in range(0, 40):
        assert len(asm.nop(length)) == length


def test_int3_padding():
    assert asm.int3_padding(3) == b"\xcc\xcc\xcc"


def test_xor_zeroing_idiom_is_short():
    assert asm.xor_rr32(RAX, RAX) == b"\x31\xc0"


def test_shift_and_movsxd():
    assert asm.shl_ri(RAX, 3) == b"\x48\xc1\xe0\x03"
    assert asm.movsxd(RAX, RDI) == b"\x48\x63\xc7"
