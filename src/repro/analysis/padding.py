"""Shared inter-function padding knowledge.

Compilers fill the space between functions with one of three single-byte
fillers — ``nop`` (0x90), ``int3`` (0xCC) or zero bytes — or with the
multi-byte NOP family (``0f 1f /0``, optionally ``66``-prefixed).  The
single-byte set is consumed by byte-level skippers (linear scanning, the
angr-style alignment heuristic); multi-byte NOPs decode as ``nop``
instructions and are recognised via :attr:`Instruction.is_padding` instead,
since their prefix bytes (``0x66``, ``0x0f``) are *not* padding on their own.
"""

from __future__ import annotations

#: Single-byte inter-function filler values.
PADDING_BYTES = frozenset((0x90, 0xCC, 0x00))

#: First bytes of the multi-byte NOP family (``0f 1f``, ``66 0f 1f``, ...).
#: Only meaningful as instruction *starts* — never skip these byte-wise.
MULTI_BYTE_NOP_PREFIXES = (b"\x0f\x1f", b"\x66\x0f\x1f")


def skip_padding_bytes(data: bytes, base: int, cursor: int, end: int) -> int:
    """Advance ``cursor`` past single-byte padding (addresses, not offsets)."""
    while cursor < end and data[cursor - base] in PADDING_BYTES:
        cursor += 1
    return cursor
