"""Evaluation of CFI programs into per-PC unwind rows.

The FETCH tail-call detector (§V-B of the paper) deliberately reads stack
heights from call-frame information instead of running its own static
analysis.  This module materialises an FDE's CFI program into a row table
(one row per PC range) from which the stack height at any covered address can
be looked up, and implements the paper's "complete stack height information"
check: the CFA must always be expressed as ``rsp + offset`` with the canonical
initial offset of 8.

Tables are lazy: :func:`build_cfa_table` returns immediately, and the CFI
program is evaluated into rows only on the first query (or ``rows`` /
``uses_expression`` access).  FDE headers are parsed eagerly elsewhere — they
seed entry candidates — but most functions in a binary are never unwound, so
deferring row evaluation keeps it off the cold detection path.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.dwarf import constants as C
from repro.dwarf.leb128 import decode_sleb128, decode_uleb128
from repro.dwarf.structs import FdeRecord


@dataclass(slots=True)
class CfaRow:
    """Unwind rules valid for addresses in ``[start, end)``.

    ``cfa_register``/``cfa_offset`` are ``None`` when the CFA is defined by a
    DWARF expression (which the conservative consumers treat as unknown).
    """

    start: int
    end: int
    cfa_register: int | None
    cfa_offset: int | None
    register_offsets: dict[int, int] = field(default_factory=dict)

    @property
    def stack_height(self) -> int | None:
        """Bytes pushed since function entry, derived from the CFA rule.

        On x86-64 the CFA is the value of ``rsp`` just before the ``call``
        into this function, so when the CFA is ``rsp + offset`` the current
        stack height is ``offset - 8`` (the 8 accounts for the pushed return
        address).  Returns ``None`` for frame-pointer-based or
        expression-based CFA rules.
        """
        if self.cfa_register == C.DWARF_REG_RSP and self.cfa_offset is not None:
            return self.cfa_offset - 8
        return None


class CfaTable:
    """The evaluated row table of a single FDE.

    Row evaluation is deferred until the first access; the table rows are
    contiguous from ``fde.pc_begin`` to ``fde.pc_end``, so lookups run on a
    bisect over row start addresses.
    """

    __slots__ = ("fde", "_rows", "_starts", "_uses_expression", "_complete")

    def __init__(self, fde: FdeRecord):
        self.fde = fde
        self._rows: list[CfaRow] | None = None
        self._starts: list[int] | None = None
        self._uses_expression = False
        self._complete: bool | None = None

    def _materialize(self) -> list[CfaRow]:
        rows, uses_expression = _evaluate_fde(self.fde)
        self._rows = rows
        self._starts = [row.start for row in rows]
        self._uses_expression = uses_expression
        return rows

    @property
    def rows(self) -> list[CfaRow]:
        rows = self._rows
        return rows if rows is not None else self._materialize()

    @property
    def uses_expression(self) -> bool:
        if self._rows is None:
            self._materialize()
        return self._uses_expression

    def row_at(self, address: int) -> CfaRow | None:
        """The row covering ``address``, or ``None`` if outside the FDE."""
        rows = self._rows
        if rows is None:
            rows = self._materialize()
        position = bisect_right(self._starts, address) - 1
        if position < 0:
            return None
        row = rows[position]
        return row if address < row.end else None

    def stack_height_at(self, address: int) -> int | None:
        """Stack height at ``address`` (bytes pushed since entry), if known."""
        row = self.row_at(address)
        if row is None:
            return None
        return row.stack_height

    @property
    def has_complete_stack_height(self) -> bool:
        """The paper's conservativeness check (§V-B).

        True when (i) every row's CFA is ``rsp``-relative with a known offset
        and (ii) the first row starts from the canonical ``rsp + 8``.

        Answered by a light scan over the CFI program that tracks only the
        CFA rule — building rows (with their register-save dict copies) for
        every FDE just to answer this gate was the main cost of the tail-call
        stage.  The scan reproduces the row boundaries of :func:`_evaluate_fde`
        exactly, so the verdict is identical to the row-based computation.
        """
        complete = self._complete
        if complete is None:
            complete = self._complete = _scan_complete_stack_height(self.fde)
        return complete

    def saved_registers_at(self, address: int) -> dict[int, int]:
        """DWARF register number -> CFA-relative save slot at ``address``."""
        row = self.row_at(address)
        return dict(row.register_offsets) if row is not None else {}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "unevaluated" if self._rows is None else f"{len(self._rows)} rows"
        return f"CfaTable(fde={self.fde!r}, {state})"


@dataclass
class _State:
    cfa_register: int | None = None
    cfa_offset: int | None = None
    register_offsets: dict[int, int] = field(default_factory=dict)

    def copy(self) -> "_State":
        return _State(self.cfa_register, self.cfa_offset, dict(self.register_offsets))


def build_cfa_table(fde: FdeRecord) -> CfaTable:
    """Wrap a FDE's CFI program (with its CIE prologue) as a lazy row table.

    The returned :class:`CfaTable` evaluates the program on first query.
    """
    return CfaTable(fde)


def _evaluate_fde(fde: FdeRecord) -> tuple[list[CfaRow], bool]:
    """Evaluate a FDE's CFI program into (rows, uses_expression)."""
    state = _State()
    uses_expression = False

    # CIE initial instructions establish the entry row.
    for insn in fde.cie.initial_instructions:
        uses_expression |= _apply(insn, state, [])

    rows: list[CfaRow] = []
    saved_states: list[_State] = []
    initial_state = state.copy()
    location = fde.pc_begin

    for insn in fde.instructions:
        if insn.name == "advance_loc":
            delta = insn.operands[0]
            rows.append(_snapshot(state, location, location + delta))
            location += delta
        elif insn.name == "restore":
            register = insn.operands[0]
            if register in initial_state.register_offsets:
                state.register_offsets[register] = initial_state.register_offsets[register]
            else:
                state.register_offsets.pop(register, None)
        elif insn.name == "restore_state":
            if saved_states:
                restored = saved_states.pop()
                state.cfa_register = restored.cfa_register
                state.cfa_offset = restored.cfa_offset
                state.register_offsets = dict(restored.register_offsets)
        elif insn.name == "remember_state":
            saved_states.append(state.copy())
        else:
            uses_expression |= _apply(insn, state, saved_states)

    rows.append(_snapshot(state, location, fde.pc_end))
    # Collapse empty ranges that can appear when advance_loc reaches pc_end.
    rows = [row for row in rows if row.end > row.start]
    return rows, uses_expression


def _scan_complete_stack_height(fde: FdeRecord) -> bool:
    """Row-free evaluation of :attr:`CfaTable.has_complete_stack_height`.

    Walks the CIE prologue and the FDE program tracking only the CFA rule
    (register, offset), snapshotting it at the same ``advance_loc``
    boundaries where :func:`_evaluate_fde` emits rows.  Instructions that
    only touch register save slots (``offset``/``restore``/``undefined``/
    ``same_value``) cannot change the verdict and are skipped; any
    expression opcode makes the full evaluation's ``uses_expression`` flag
    permanent, so it short-circuits to an incomplete verdict here.

    When both programs expose their raw bytes (parser-built
    :class:`~repro.dwarf.cfi.LazyCfiProgram` records), the scan runs directly
    over the opcodes and never builds a ``CfiInstruction`` — this gate runs
    for every FDE-backed start, and keeping it allocation-free is what lets
    the lazy parser skip the program decode entirely for most FDEs.  The
    instruction-based walk below remains for hand-built records whose
    programs are plain lists.
    """
    cie_program = fde.cie.initial_instructions
    fde_program = fde.instructions
    if getattr(cie_program, "raw", None) is not None and getattr(
        fde_program, "raw", None
    ) is not None:
        return _scan_complete_raw(cie_program, fde_program, fde.pc_begin, fde.pc_end)

    cfa_register: int | None = None
    cfa_offset: int | None = None
    for insn in fde.cie.initial_instructions:
        name = insn.name
        if name == "def_cfa":
            cfa_register, cfa_offset = insn.operands
        elif name == "def_cfa_register":
            cfa_register = insn.operands[0]
        elif name == "def_cfa_offset":
            cfa_offset = insn.operands[0]
        elif name in ("def_cfa_expression", "expression"):
            return False

    rows: list[tuple[int, int, int | None, int | None]] = []
    saved: list[tuple[int | None, int | None]] = []
    location = fde.pc_begin
    for insn in fde.instructions:
        name = insn.name
        if name == "advance_loc":
            delta = insn.operands[0]
            rows.append((location, location + delta, cfa_register, cfa_offset))
            location += delta
        elif name == "def_cfa":
            cfa_register, cfa_offset = insn.operands
        elif name == "def_cfa_register":
            cfa_register = insn.operands[0]
        elif name == "def_cfa_offset":
            cfa_offset = insn.operands[0]
        elif name in ("def_cfa_expression", "expression"):
            return False
        elif name == "remember_state":
            saved.append((cfa_register, cfa_offset))
        elif name == "restore_state":
            if saved:
                cfa_register, cfa_offset = saved.pop()
    rows.append((location, fde.pc_end, cfa_register, cfa_offset))

    rows = [row for row in rows if row[1] > row[0]]
    if not rows:
        return False
    if rows[0][2] != C.DWARF_REG_RSP or rows[0][3] != 8:
        return False
    return all(
        register == C.DWARF_REG_RSP and offset is not None
        for _start, _end, register, offset in rows
    )


def _raw_cfa_rule(
    data: bytes,
    data_alignment: int,
    cfa_register: int | None,
    cfa_offset: int | None,
) -> tuple[int | None, int | None] | None:
    """Track only the CFA rule through a raw (validated) CFI program.

    Returns the final ``(cfa_register, cfa_offset)``, or ``None`` as soon as
    an expression opcode appears (the verdict is then "incomplete").
    Location opcodes are ignored — this is the CIE-prologue walk, which has
    no row boundaries.
    """
    pos = 0
    n = len(data)
    while pos < n:
        opcode = data[pos]
        pos += 1
        primary = opcode & 0xC0
        if primary == C.DW_CFA_advance_loc or primary == C.DW_CFA_restore:
            continue
        if primary == C.DW_CFA_offset:
            _, pos = decode_uleb128(data, pos)
            continue
        if opcode == C.DW_CFA_def_cfa:
            cfa_register, pos = decode_uleb128(data, pos)
            cfa_offset, pos = decode_uleb128(data, pos)
        elif opcode == C.DW_CFA_def_cfa_register:
            cfa_register, pos = decode_uleb128(data, pos)
        elif opcode == C.DW_CFA_def_cfa_offset:
            cfa_offset, pos = decode_uleb128(data, pos)
        elif opcode == C.DW_CFA_def_cfa_sf:
            cfa_register, pos = decode_uleb128(data, pos)
            factored, pos = decode_sleb128(data, pos)
            cfa_offset = factored * data_alignment
        elif opcode == C.DW_CFA_def_cfa_offset_sf:
            factored, pos = decode_sleb128(data, pos)
            cfa_offset = factored * data_alignment
        elif opcode in (C.DW_CFA_def_cfa_expression, C.DW_CFA_expression):
            return None
        elif opcode == C.DW_CFA_advance_loc1:
            pos += 1
        elif opcode == C.DW_CFA_advance_loc2:
            pos += 2
        elif opcode == C.DW_CFA_advance_loc4:
            pos += 4
        elif opcode in (C.DW_CFA_offset_extended, C.DW_CFA_register):
            _, pos = decode_uleb128(data, pos)
            _, pos = decode_uleb128(data, pos)
        elif opcode == C.DW_CFA_offset_extended_sf:
            _, pos = decode_uleb128(data, pos)
            _, pos = decode_sleb128(data, pos)
        elif opcode in (
            C.DW_CFA_restore_extended,
            C.DW_CFA_undefined,
            C.DW_CFA_same_value,
            C.DW_CFA_GNU_args_size,
        ):
            _, pos = decode_uleb128(data, pos)
        # nop / remember_state / restore_state: no operands, no CFA effect
        # (the prologue walk has no row state to remember).
    return cfa_register, cfa_offset


def _scan_complete_raw(cie_program, fde_program, pc_begin: int, pc_end: int) -> bool:
    """The raw-byte fast path of :func:`_scan_complete_stack_height`.

    Streams rows instead of collecting them: each nonempty row is checked as
    its ``advance_loc`` boundary is reached, with the first row additionally
    required to be the canonical ``rsp + 8``.  Mirrors the verdict of the
    instruction-based walk exactly (the programs were validated at parse
    time, so operand reads cannot fail).
    """
    state = _raw_cfa_rule(cie_program.raw, cie_program.data_alignment, None, None)
    if state is None:
        return False
    cfa_register, cfa_offset = state

    data = fde_program.raw
    code_alignment = fde_program.code_alignment
    data_alignment = fde_program.data_alignment
    saved: list[tuple[int | None, int | None]] = []
    location = pc_begin
    first = True
    pos = 0
    n = len(data)
    while pos < n:
        opcode = data[pos]
        pos += 1
        primary = opcode & 0xC0
        delta = -1
        if primary == C.DW_CFA_advance_loc:
            delta = (opcode & 0x3F) * code_alignment
        elif primary == C.DW_CFA_offset:
            _, pos = decode_uleb128(data, pos)
            continue
        elif primary == C.DW_CFA_restore or opcode == C.DW_CFA_nop:
            continue
        elif opcode == C.DW_CFA_advance_loc1:
            delta = data[pos] * code_alignment
            pos += 1
        elif opcode == C.DW_CFA_advance_loc2:
            delta = int.from_bytes(data[pos : pos + 2], "little") * code_alignment
            pos += 2
        elif opcode == C.DW_CFA_advance_loc4:
            delta = int.from_bytes(data[pos : pos + 4], "little") * code_alignment
            pos += 4
        elif opcode == C.DW_CFA_def_cfa:
            cfa_register, pos = decode_uleb128(data, pos)
            cfa_offset, pos = decode_uleb128(data, pos)
            continue
        elif opcode == C.DW_CFA_def_cfa_register:
            cfa_register, pos = decode_uleb128(data, pos)
            continue
        elif opcode == C.DW_CFA_def_cfa_offset:
            cfa_offset, pos = decode_uleb128(data, pos)
            continue
        elif opcode == C.DW_CFA_def_cfa_sf:
            cfa_register, pos = decode_uleb128(data, pos)
            factored, pos = decode_sleb128(data, pos)
            cfa_offset = factored * data_alignment
            continue
        elif opcode == C.DW_CFA_def_cfa_offset_sf:
            factored, pos = decode_sleb128(data, pos)
            cfa_offset = factored * data_alignment
            continue
        elif opcode in (C.DW_CFA_def_cfa_expression, C.DW_CFA_expression):
            return False
        elif opcode == C.DW_CFA_remember_state:
            saved.append((cfa_register, cfa_offset))
            continue
        elif opcode == C.DW_CFA_restore_state:
            if saved:
                cfa_register, cfa_offset = saved.pop()
            continue
        elif opcode in (C.DW_CFA_offset_extended, C.DW_CFA_register):
            _, pos = decode_uleb128(data, pos)
            _, pos = decode_uleb128(data, pos)
            continue
        elif opcode == C.DW_CFA_offset_extended_sf:
            _, pos = decode_uleb128(data, pos)
            _, pos = decode_sleb128(data, pos)
            continue
        elif opcode in (
            C.DW_CFA_restore_extended,
            C.DW_CFA_undefined,
            C.DW_CFA_same_value,
            C.DW_CFA_GNU_args_size,
        ):
            _, pos = decode_uleb128(data, pos)
            continue
        else:
            continue

        # advance_loc boundary: the row [location, location + delta).
        if delta > 0:
            if cfa_register != C.DWARF_REG_RSP or cfa_offset is None:
                return False
            if first:
                if cfa_offset != 8:
                    return False
                first = False
            location += delta

    if pc_end > location:
        if cfa_register != C.DWARF_REG_RSP or cfa_offset is None:
            return False
        if first:
            if cfa_offset != 8:
                return False
            first = False
    return not first


def _apply(insn, state: _State, saved_states: list[_State]) -> bool:
    """Apply a non-location CFI instruction to ``state``.

    Returns True when the instruction makes the CFA expression-based.
    """
    name = insn.name
    if name == "def_cfa":
        state.cfa_register, state.cfa_offset = insn.operands
    elif name == "def_cfa_register":
        state.cfa_register = insn.operands[0]
    elif name == "def_cfa_offset":
        state.cfa_offset = insn.operands[0]
    elif name == "def_cfa_expression":
        state.cfa_register = None
        state.cfa_offset = None
        return True
    elif name == "offset":
        register, cfa_offset = insn.operands
        state.register_offsets[register] = cfa_offset
    elif name == "expression":
        register = insn.operands[0]
        state.register_offsets.pop(register, None)
        return True
    elif name in ("undefined", "same_value"):
        state.register_offsets.pop(insn.operands[0], None)
    elif name in ("nop", "gnu_args_size", "register"):
        pass
    return False


def _snapshot(state: _State, start: int, end: int) -> CfaRow:
    return CfaRow(
        start=start,
        end=end,
        cfa_register=state.cfa_register,
        cfa_offset=state.cfa_offset,
        register_offsets=dict(state.register_offsets),
    )
