"""DWARF CFI opcodes and LSB pointer-encoding constants."""

from __future__ import annotations

# --- Primary CFI opcodes (high two bits) -------------------------------
DW_CFA_advance_loc = 0x40  # delta in low 6 bits
DW_CFA_offset = 0x80  # register in low 6 bits, ULEB128 factored offset follows
DW_CFA_restore = 0xC0  # register in low 6 bits

# --- Extended CFI opcodes (low 6 bits, high bits zero) ------------------
DW_CFA_nop = 0x00
DW_CFA_set_loc = 0x01
DW_CFA_advance_loc1 = 0x02
DW_CFA_advance_loc2 = 0x03
DW_CFA_advance_loc4 = 0x04
DW_CFA_offset_extended = 0x05
DW_CFA_restore_extended = 0x06
DW_CFA_undefined = 0x07
DW_CFA_same_value = 0x08
DW_CFA_register = 0x09
DW_CFA_remember_state = 0x0A
DW_CFA_restore_state = 0x0B
DW_CFA_def_cfa = 0x0C
DW_CFA_def_cfa_register = 0x0D
DW_CFA_def_cfa_offset = 0x0E
DW_CFA_def_cfa_expression = 0x0F
DW_CFA_expression = 0x10
DW_CFA_offset_extended_sf = 0x11
DW_CFA_def_cfa_sf = 0x12
DW_CFA_def_cfa_offset_sf = 0x13
DW_CFA_GNU_args_size = 0x2E

# --- Pointer encodings (Linux Standard Base eh_frame spec) --------------
DW_EH_PE_absptr = 0x00
DW_EH_PE_uleb128 = 0x01
DW_EH_PE_udata2 = 0x02
DW_EH_PE_udata4 = 0x03
DW_EH_PE_udata8 = 0x04
DW_EH_PE_sleb128 = 0x09
DW_EH_PE_sdata2 = 0x0A
DW_EH_PE_sdata4 = 0x0B
DW_EH_PE_sdata8 = 0x0C

DW_EH_PE_pcrel = 0x10
DW_EH_PE_textrel = 0x20
DW_EH_PE_datarel = 0x30
DW_EH_PE_funcrel = 0x40
DW_EH_PE_aligned = 0x50
DW_EH_PE_indirect = 0x80
DW_EH_PE_omit = 0xFF

#: Signed pointer formats mapped to their unsigned counterparts.
_UNSIGNED_POINTER_FORMAT = {
    DW_EH_PE_sleb128: DW_EH_PE_uleb128,
    DW_EH_PE_sdata2: DW_EH_PE_udata2,
    DW_EH_PE_sdata4: DW_EH_PE_udata4,
    DW_EH_PE_sdata8: DW_EH_PE_udata8,
}


def unsigned_pointer_format(encoding: int) -> int:
    """The format nibble of ``encoding``, with signed formats made unsigned.

    Length fields (the FDE PC range) are unsigned quantities regardless of
    the CIE's pointer encoding; both the parser and the encoder treat them
    through this one mapping so ranges >= 2**31 round-trip.
    """
    fmt = encoding & 0x0F
    return _UNSIGNED_POINTER_FORMAT.get(fmt, fmt)

# --- Register numbers used by CFI on x86-64 -----------------------------
DWARF_REG_RSP = 7
DWARF_REG_RBP = 6
DWARF_REG_RA = 16  # return address column

#: Human readable CFI opcode names used by the pretty printer and tests.
CFA_OPCODE_NAMES = {
    DW_CFA_nop: "DW_CFA_nop",
    DW_CFA_set_loc: "DW_CFA_set_loc",
    DW_CFA_advance_loc1: "DW_CFA_advance_loc1",
    DW_CFA_advance_loc2: "DW_CFA_advance_loc2",
    DW_CFA_advance_loc4: "DW_CFA_advance_loc4",
    DW_CFA_offset_extended: "DW_CFA_offset_extended",
    DW_CFA_restore_extended: "DW_CFA_restore_extended",
    DW_CFA_undefined: "DW_CFA_undefined",
    DW_CFA_same_value: "DW_CFA_same_value",
    DW_CFA_register: "DW_CFA_register",
    DW_CFA_remember_state: "DW_CFA_remember_state",
    DW_CFA_restore_state: "DW_CFA_restore_state",
    DW_CFA_def_cfa: "DW_CFA_def_cfa",
    DW_CFA_def_cfa_register: "DW_CFA_def_cfa_register",
    DW_CFA_def_cfa_offset: "DW_CFA_def_cfa_offset",
    DW_CFA_def_cfa_expression: "DW_CFA_def_cfa_expression",
    DW_CFA_expression: "DW_CFA_expression",
    DW_CFA_GNU_args_size: "DW_CFA_GNU_args_size",
}
