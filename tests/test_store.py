"""Tests for the artifact store and the detector registry.

Covers the satellite checklist: corpus round-trip (build → persist →
reload → byte-identical images and equal ground truth), result-cache
hit/miss/invalidation on options change, ``ScenarioMatrix`` resume
recomputing only deleted cells, and registry completeness.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.baselines import BaselineTool, all_comparison_tools
from repro.core import FetchDetector, FetchOptions
from repro.core import registry
from repro.elf.writer import write_elf
from repro.eval import MATRIX_DETECTORS, CorpusEvaluator, ScenarioMatrix
from repro.store import ArtifactStore, options_digest, stable_digest
from repro.synth import build_scenario_corpus, build_wild_corpus

import repro.baselines as baselines_package


@pytest.fixture()
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store")


@pytest.fixture(scope="module")
def tiny_params() -> dict:
    return {"programs": 2, "scale": 0.1, "seed": 71}


# ----------------------------------------------------------------------
# Corpus round-trip
# ----------------------------------------------------------------------

class TestCorpusRoundTrip:
    def test_reload_is_byte_identical_and_truth_equal(self, store, tiny_params):
        built = build_scenario_corpus("vanilla", store=store, **tiny_params)
        assert store.stats["corpus_misses"] == 1

        reloaded = build_scenario_corpus("vanilla", store=store, **tiny_params)
        assert store.stats["corpus_hits"] == 1
        assert [b.name for b in reloaded] == [b.name for b in built]

        for original, loaded in zip(built, reloaded):
            # the stored blob is exactly the serialized original image
            blob = store.get_blob(store.binary_digest(loaded))
            assert blob == write_elf(original.image.elf)
            # ground truth survives the JSON round trip field-for-field
            assert dataclasses.asdict(loaded.ground_truth) == dataclasses.asdict(
                original.ground_truth
            )
            # the plan round-trips (benchmarks group rows by its profile)
            assert loaded.plan.profile == original.plan.profile
            assert loaded.plan.scenario == original.plan.scenario

    def test_reloaded_binaries_detect_identically(self, store, tiny_params):
        built = build_scenario_corpus("cet", store=store, **tiny_params)
        reloaded = build_scenario_corpus("cet", store=store, **tiny_params)
        detector = FetchDetector()
        for original, loaded in zip(built, reloaded):
            assert (
                detector.detect(original.image).function_starts
                == detector.detect(loaded.image).function_starts
            )

    def test_parameter_change_is_a_different_corpus(self, store, tiny_params):
        build_scenario_corpus("vanilla", store=store, **tiny_params)
        other = dict(tiny_params, seed=tiny_params["seed"] + 1)
        build_scenario_corpus("vanilla", store=store, **other)
        assert store.stats["corpus_misses"] == 2
        assert store.stats["corpus_hits"] == 0

    def test_wild_corpus_round_trips_profiles(self, store):
        built = build_wild_corpus(scale=0.1, max_binaries=2, seed=9, store=store)
        reloaded = build_wild_corpus(scale=0.1, max_binaries=2, seed=9, store=store)
        assert store.stats["corpus_hits"] == 1
        for (profile_a, binary_a), (profile_b, binary_b) in zip(built, reloaded):
            assert profile_a == profile_b
            assert binary_a.name == binary_b.name


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------

class TestResultCache:
    def test_hit_miss_and_options_invalidation(self, store, tiny_params):
        corpus = build_scenario_corpus("vanilla", store=store, **tiny_params)

        cold = CorpusEvaluator(corpus, store=store)
        metrics_cold = cold.run_detector(FetchDetector)
        assert cold.detector_runs == len(corpus)
        assert store.stats["result_misses"] == len(corpus)
        assert store.stats["result_hits"] == 0

        warm = CorpusEvaluator(corpus, store=store)
        metrics_warm = warm.run_detector(FetchDetector)
        assert warm.detector_runs == 0
        assert store.stats["result_hits"] == len(corpus)
        assert metrics_warm.summary() == metrics_cold.summary()
        for a, b in zip(metrics_cold.per_binary, metrics_warm.per_binary):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)

        # changing the options invalidates: distinct digest, fresh misses
        options = FetchOptions(use_tail_call_analysis=False)
        assert options_digest(FetchDetector(options)) != options_digest(FetchDetector())
        changed = CorpusEvaluator(corpus, store=store)
        changed.run_detector(lambda: FetchDetector(options))
        assert changed.detector_runs == len(corpus)

    def test_results_shared_between_rebuilt_and_reloaded_corpora(self, store, tiny_params):
        built = build_scenario_corpus("icf", store=store, **tiny_params)
        CorpusEvaluator(built, store=store).run_detector(FetchDetector)

        reloaded = build_scenario_corpus("icf", store=store, **tiny_params)
        warm = CorpusEvaluator(reloaded, store=store)
        warm.run_detector(FetchDetector)
        assert warm.detector_runs == 0, "reloaded corpus must share binary digests"

    def test_map_cache_key_round_trips_values(self, store, tiny_params):
        corpus = build_scenario_corpus("vanilla", store=store, **tiny_params)
        evaluator = CorpusEvaluator(corpus, store=store)
        first = evaluator.fde_only_metrics()
        assert store.stats["value_misses"] == len(corpus)
        again = CorpusEvaluator(corpus, store=store).fde_only_metrics()
        assert store.stats["value_hits"] == len(corpus)
        assert again.summary() == first.summary()


# ----------------------------------------------------------------------
# Resumable scenario matrix
# ----------------------------------------------------------------------

class TestScenarioMatrixResume:
    @pytest.fixture()
    def corpora(self, store, tiny_params):
        return {
            scenario: build_scenario_corpus(scenario, store=store, **tiny_params)
            for scenario in ("vanilla", "padded")
        }

    def test_warm_run_has_zero_invocations(self, store, corpora):
        cold = ScenarioMatrix(corpora, store=store, include=("fetch", "ida"))
        cells = cold.run()
        assert cold.detector_invocations == sum(len(c) for c in corpora.values()) * 2

        warm = ScenarioMatrix(corpora, store=store, include=("fetch", "ida"))
        assert warm.run() == cells
        assert warm.detector_invocations == 0

    def test_deleting_a_cell_recomputes_only_that_cell(self, store, corpora):
        cold = ScenarioMatrix(corpora, store=store, include=("fetch", "ida"))
        cells = cold.run()

        victim = cold.cell_keys[("padded", "ida")]
        store.cell_path(victim).unlink()

        before = store.stats_snapshot()
        resumed = ScenarioMatrix(corpora, store=store, include=("fetch", "ida"))
        assert resumed.run() == cells
        after = store.stats_snapshot()
        assert after["cell_misses"] - before["cell_misses"] == 1
        assert after["cell_hits"] - before["cell_hits"] == 3
        # the recomputed cell reuses the per-binary result cache, so even the
        # recomputation does not re-run any detector
        assert resumed.detector_invocations == 0

    def test_resume_false_recomputes_but_matches(self, store, corpora):
        cells = ScenarioMatrix(corpora, store=store, include=("fetch",)).run()
        forced = ScenarioMatrix(corpora, store=store, resume=False, include=("fetch",))
        assert forced.run() == cells

    def test_no_store_path_unchanged(self, corpora):
        matrix = ScenarioMatrix(corpora, include=("fetch",))
        cells = matrix.run()
        assert matrix.detector_invocations == sum(len(c) for c in corpora.values())
        assert set(cells) == set(corpora)


# ----------------------------------------------------------------------
# Registry completeness
# ----------------------------------------------------------------------

class TestRegistry:
    def test_every_baseline_class_registered_exactly_once(self):
        baseline_classes = [
            value
            for value in vars(baselines_package).values()
            if isinstance(value, type)
            and issubclass(value, BaselineTool)
            and value is not BaselineTool
        ]
        registered = {info.cls: info.name for info in registry.detectors()}
        for cls in baseline_classes:
            assert cls in registered, f"{cls.__name__} is not registered"
        # names are unique by construction (the registry is name-keyed) and
        # every class appears under exactly one name
        assert len(registered) == len(set(registered.values()))

    def test_paper_column_order_and_flags(self):
        assert registry.detector_names(comparison=True) == [
            "dyninst", "bap", "radare2", "nucleus", "ida", "ninja", "ghidra", "angr",
        ]
        assert registry.detector_names(matrix=True)[-1] == "fetch"
        assert registry.detector_info("fetch").needs_eh_frame
        assert registry.detector_info("fetch").options_cls is FetchOptions

    def test_all_comparison_tools_matches_registry(self):
        assert [tool.name for tool in all_comparison_tools()] == registry.detector_names(
            comparison=True
        )

    def test_matrix_detectors_are_uninstantiated_classes(self):
        assert [name for name, _ in MATRIX_DETECTORS] == registry.detector_names(matrix=True)
        for name, factory in MATRIX_DETECTORS:
            assert isinstance(factory, type), f"{name} entry is an instance"

    def test_unknown_names_raise(self):
        with pytest.raises(KeyError, match="unknown detector"):
            registry.detector_info("objdump")
        with pytest.raises(KeyError, match="unknown detector"):
            registry.detectors(include=("objdump",))

    def test_duplicate_registration_of_distinct_class_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            @registry.register_detector("fetch")
            class Impostor:  # noqa: F811 - deliberately clashing
                pass

    def test_create_detector_type_checks_options(self):
        detector = registry.create_detector("ghidra")
        assert detector.name == "ghidra"
        with pytest.raises(TypeError):
            registry.create_detector("ghidra", FetchOptions())


# ----------------------------------------------------------------------
# Digest stability
# ----------------------------------------------------------------------

def test_stable_digest_is_order_insensitive_and_type_aware():
    assert stable_digest({"a": 1, "b": 2}) == stable_digest({"b": 2, "a": 1})
    assert stable_digest({1, 2, 3}) == stable_digest({3, 2, 1})
    assert stable_digest((1, 2)) == stable_digest([1, 2])
    assert stable_digest(b"\x01") != stable_digest("01")


def test_options_digest_distinguishes_classes_and_options():
    from repro.baselines import AngrLike, GhidraLike

    assert options_digest(GhidraLike()) != options_digest(AngrLike())
    assert options_digest(FetchDetector()) == options_digest(FetchDetector())


def test_options_digest_includes_detector_cache_version(monkeypatch):
    from repro.baselines import IdaLike

    before = options_digest(IdaLike())
    monkeypatch.setattr(IdaLike, "cache_version", "2", raising=True)
    assert options_digest(IdaLike()) != before, (
        "bumping a detector's registered version must invalidate its cache keys"
    )
