"""Tests for the artifact store and the detector registry.

Covers the satellite checklist: corpus round-trip (build → persist →
reload → byte-identical images and equal ground truth), result-cache
hit/miss/invalidation on options change, ``ScenarioMatrix`` resume
recomputing only deleted cells, and registry completeness — plus the
store subsystem layers: layout versioning and migration (a migrated v1
store stays warm), durable umask-honouring atomic writes, lock-guarded
stats counters, the cross-process file lock (timeout, stale recovery),
the manifest index (stats without a tree walk) and garbage collection.
"""

from __future__ import annotations

import dataclasses
import os
import sys
import threading
import time

import pytest

from repro.baselines import BaselineTool, all_comparison_tools
from repro.core import FetchDetector, FetchOptions
from repro.core import registry
from repro.elf.writer import write_elf
from repro.eval import MATRIX_DETECTORS, CorpusEvaluator, ScenarioMatrix
from repro.store import (
    LAYOUT_V1,
    LAYOUT_V2,
    ArtifactStore,
    FileLock,
    FilesystemBackend,
    LockTimeout,
    options_digest,
    stable_digest,
)
from repro.synth import build_scenario_corpus, build_wild_corpus

import repro.baselines as baselines_package


@pytest.fixture()
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store")


@pytest.fixture(scope="module")
def tiny_params() -> dict:
    return {"programs": 2, "scale": 0.1, "seed": 71}


# ----------------------------------------------------------------------
# Corpus round-trip
# ----------------------------------------------------------------------

class TestCorpusRoundTrip:
    def test_reload_is_byte_identical_and_truth_equal(self, store, tiny_params):
        built = build_scenario_corpus("vanilla", store=store, **tiny_params)
        assert store.stats["corpus_misses"] == 1

        reloaded = build_scenario_corpus("vanilla", store=store, **tiny_params)
        assert store.stats["corpus_hits"] == 1
        assert [b.name for b in reloaded] == [b.name for b in built]

        for original, loaded in zip(built, reloaded):
            # the stored blob is exactly the serialized original image
            blob = store.get_blob(store.binary_digest(loaded))
            assert blob == write_elf(original.image.elf)
            # ground truth survives the JSON round trip field-for-field
            assert dataclasses.asdict(loaded.ground_truth) == dataclasses.asdict(
                original.ground_truth
            )
            # the plan round-trips (benchmarks group rows by its profile)
            assert loaded.plan.profile == original.plan.profile
            assert loaded.plan.scenario == original.plan.scenario

    def test_reloaded_binaries_detect_identically(self, store, tiny_params):
        built = build_scenario_corpus("cet", store=store, **tiny_params)
        reloaded = build_scenario_corpus("cet", store=store, **tiny_params)
        detector = FetchDetector()
        for original, loaded in zip(built, reloaded):
            assert (
                detector.detect(original.image).function_starts
                == detector.detect(loaded.image).function_starts
            )

    def test_parameter_change_is_a_different_corpus(self, store, tiny_params):
        build_scenario_corpus("vanilla", store=store, **tiny_params)
        other = dict(tiny_params, seed=tiny_params["seed"] + 1)
        build_scenario_corpus("vanilla", store=store, **other)
        assert store.stats["corpus_misses"] == 2
        assert store.stats["corpus_hits"] == 0

    def test_wild_corpus_round_trips_profiles(self, store):
        built = build_wild_corpus(scale=0.1, max_binaries=2, seed=9, store=store)
        reloaded = build_wild_corpus(scale=0.1, max_binaries=2, seed=9, store=store)
        assert store.stats["corpus_hits"] == 1
        for (profile_a, binary_a), (profile_b, binary_b) in zip(built, reloaded):
            assert profile_a == profile_b
            assert binary_a.name == binary_b.name


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------

class TestResultCache:
    def test_hit_miss_and_options_invalidation(self, store, tiny_params):
        corpus = build_scenario_corpus("vanilla", store=store, **tiny_params)

        cold = CorpusEvaluator(corpus, store=store)
        metrics_cold = cold.run_detector(FetchDetector)
        assert cold.detector_runs == len(corpus)
        assert store.stats["result_misses"] == len(corpus)
        assert store.stats["result_hits"] == 0

        warm = CorpusEvaluator(corpus, store=store)
        metrics_warm = warm.run_detector(FetchDetector)
        assert warm.detector_runs == 0
        assert store.stats["result_hits"] == len(corpus)
        assert metrics_warm.summary() == metrics_cold.summary()
        for a, b in zip(metrics_cold.per_binary, metrics_warm.per_binary):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)

        # changing the options invalidates: distinct digest, fresh misses
        options = FetchOptions(use_tail_call_analysis=False)
        assert options_digest(FetchDetector(options)) != options_digest(FetchDetector())
        changed = CorpusEvaluator(corpus, store=store)
        changed.run_detector(lambda: FetchDetector(options))
        assert changed.detector_runs == len(corpus)

    def test_results_shared_between_rebuilt_and_reloaded_corpora(self, store, tiny_params):
        built = build_scenario_corpus("icf", store=store, **tiny_params)
        CorpusEvaluator(built, store=store).run_detector(FetchDetector)

        reloaded = build_scenario_corpus("icf", store=store, **tiny_params)
        warm = CorpusEvaluator(reloaded, store=store)
        warm.run_detector(FetchDetector)
        assert warm.detector_runs == 0, "reloaded corpus must share binary digests"

    def test_map_cache_key_round_trips_values(self, store, tiny_params):
        corpus = build_scenario_corpus("vanilla", store=store, **tiny_params)
        evaluator = CorpusEvaluator(corpus, store=store)
        first = evaluator.fde_only_metrics()
        assert store.stats["value_misses"] == len(corpus)
        again = CorpusEvaluator(corpus, store=store).fde_only_metrics()
        assert store.stats["value_hits"] == len(corpus)
        assert again.summary() == first.summary()


# ----------------------------------------------------------------------
# Resumable scenario matrix
# ----------------------------------------------------------------------

class TestScenarioMatrixResume:
    @pytest.fixture()
    def corpora(self, store, tiny_params):
        return {
            scenario: build_scenario_corpus(scenario, store=store, **tiny_params)
            for scenario in ("vanilla", "padded")
        }

    def test_warm_run_has_zero_invocations(self, store, corpora):
        cold = ScenarioMatrix(corpora, store=store, include=("fetch", "ida"))
        cells = cold.run()
        assert cold.detector_invocations == sum(len(c) for c in corpora.values()) * 2

        warm = ScenarioMatrix(corpora, store=store, include=("fetch", "ida"))
        assert warm.run() == cells
        assert warm.detector_invocations == 0

    def test_deleting_a_cell_recomputes_only_that_cell(self, store, corpora):
        cold = ScenarioMatrix(corpora, store=store, include=("fetch", "ida"))
        cells = cold.run()

        victim = cold.cell_keys[("padded", "ida")]
        store.cell_path(victim).unlink()

        before = store.stats_snapshot()
        resumed = ScenarioMatrix(corpora, store=store, include=("fetch", "ida"))
        assert resumed.run() == cells
        after = store.stats_snapshot()
        assert after["cell_misses"] - before["cell_misses"] == 1
        assert after["cell_hits"] - before["cell_hits"] == 3
        # the recomputed cell reuses the per-binary result cache, so even the
        # recomputation does not re-run any detector
        assert resumed.detector_invocations == 0

    def test_resume_false_recomputes_but_matches(self, store, corpora):
        cells = ScenarioMatrix(corpora, store=store, include=("fetch",)).run()
        forced = ScenarioMatrix(corpora, store=store, resume=False, include=("fetch",))
        assert forced.run() == cells

    def test_no_store_path_unchanged(self, corpora):
        matrix = ScenarioMatrix(corpora, include=("fetch",))
        cells = matrix.run()
        assert matrix.detector_invocations == sum(len(c) for c in corpora.values())
        assert set(cells) == set(corpora)


# ----------------------------------------------------------------------
# Registry completeness
# ----------------------------------------------------------------------

class TestRegistry:
    def test_every_baseline_class_registered_exactly_once(self):
        baseline_classes = [
            value
            for value in vars(baselines_package).values()
            if isinstance(value, type)
            and issubclass(value, BaselineTool)
            and value is not BaselineTool
        ]
        registered = {info.cls: info.name for info in registry.detectors()}
        for cls in baseline_classes:
            assert cls in registered, f"{cls.__name__} is not registered"
        # names are unique by construction (the registry is name-keyed) and
        # every class appears under exactly one name
        assert len(registered) == len(set(registered.values()))

    def test_paper_column_order_and_flags(self):
        assert registry.detector_names(comparison=True) == [
            "dyninst", "bap", "radare2", "nucleus", "ida", "ninja", "ghidra", "angr",
        ]
        assert registry.detector_names(matrix=True)[-1] == "fetch"
        assert registry.detector_info("fetch").needs_eh_frame
        assert registry.detector_info("fetch").options_cls is FetchOptions

    def test_all_comparison_tools_matches_registry(self):
        assert [tool.name for tool in all_comparison_tools()] == registry.detector_names(
            comparison=True
        )

    def test_matrix_detectors_are_uninstantiated_classes(self):
        assert [name for name, _ in MATRIX_DETECTORS] == registry.detector_names(matrix=True)
        for name, factory in MATRIX_DETECTORS:
            assert isinstance(factory, type), f"{name} entry is an instance"

    def test_unknown_names_raise(self):
        with pytest.raises(KeyError, match="unknown detector"):
            registry.detector_info("objdump")
        with pytest.raises(KeyError, match="unknown detector"):
            registry.detectors(include=("objdump",))

    def test_duplicate_registration_of_distinct_class_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            @registry.register_detector("fetch")
            class Impostor:  # noqa: F811 - deliberately clashing
                pass

    def test_create_detector_type_checks_options(self):
        detector = registry.create_detector("ghidra")
        assert detector.name == "ghidra"
        with pytest.raises(TypeError):
            registry.create_detector("ghidra", FetchOptions())


# ----------------------------------------------------------------------
# Digest stability
# ----------------------------------------------------------------------

def test_stable_digest_is_order_insensitive_and_type_aware():
    assert stable_digest({"a": 1, "b": 2}) == stable_digest({"b": 2, "a": 1})
    assert stable_digest({1, 2, 3}) == stable_digest({3, 2, 1})
    assert stable_digest((1, 2)) == stable_digest([1, 2])
    assert stable_digest(b"\x01") != stable_digest("01")


def test_options_digest_distinguishes_classes_and_options():
    from repro.baselines import AngrLike, GhidraLike

    assert options_digest(GhidraLike()) != options_digest(AngrLike())
    assert options_digest(FetchDetector()) == options_digest(FetchDetector())


def test_options_digest_includes_detector_cache_version(monkeypatch):
    from repro.baselines import IdaLike

    before = options_digest(IdaLike())
    monkeypatch.setattr(IdaLike, "cache_version", "2", raising=True)
    assert options_digest(IdaLike()) != before, (
        "bumping a detector's registered version must invalidate its cache keys"
    )


# ----------------------------------------------------------------------
# Layout versioning and migration
# ----------------------------------------------------------------------

class TestLayoutAndMigration:
    def _v1_store(self, root) -> ArtifactStore:
        return ArtifactStore(backend=FilesystemBackend(root, layout=LAYOUT_V1))

    def test_v1_root_is_detected_and_read_transparently(self, tmp_path, tiny_params):
        root = tmp_path / "v1-store"
        legacy = self._v1_store(root)
        build_scenario_corpus("vanilla", store=legacy, **tiny_params)
        digest = legacy.put_blob(b"legacy payload")
        assert legacy.blob_path(digest).parent.parent.name == "objects", (
            "v1 fanout is one level deep"
        )

        # a marker-less root holding v1 content keeps operating in v1
        reopened = ArtifactStore(root)
        assert reopened.backend.layout == LAYOUT_V1
        assert reopened.get_blob(digest) == b"legacy payload"
        assert reopened.load_corpus(reopened.corpus_key(
            "scenario", {}
        )) is None  # wrong key still misses cleanly
        reloaded = build_scenario_corpus("vanilla", store=reopened, **tiny_params)
        assert reopened.stats["corpus_hits"] == 1
        assert reloaded

    def test_migrated_v1_store_stays_warm_for_the_matrix(self, tmp_path, tiny_params):
        root = tmp_path / "v1-store"
        legacy = self._v1_store(root)
        corpora = {
            scenario: build_scenario_corpus(scenario, store=legacy, **tiny_params)
            for scenario in ("vanilla", "padded")
        }
        cold = ScenarioMatrix(corpora, store=legacy, include=("fetch",))
        cells = cold.run()
        assert cold.detector_invocations > 0

        migrated = ArtifactStore(root)
        report = migrated.migrate()
        assert report["from_layout"] == LAYOUT_V1
        assert report["to_layout"] == LAYOUT_V2
        assert report["moved"] > 0
        assert (root / "layout.json").exists()

        # keys never change: the warm matrix re-run performs zero
        # detector invocations over the migrated store
        fresh = ArtifactStore(root)
        assert fresh.backend.layout == LAYOUT_V2
        warm_corpora = {
            scenario: build_scenario_corpus(scenario, store=fresh, **tiny_params)
            for scenario in ("vanilla", "padded")
        }
        warm = ScenarioMatrix(warm_corpora, store=fresh, include=("fetch",))
        assert warm.run() == cells
        assert warm.detector_invocations == 0
        assert fresh.stats["corpus_misses"] == 0

    def test_migrate_is_idempotent(self, tmp_path):
        root = tmp_path / "v1-store"
        legacy = self._v1_store(root)
        digest = legacy.put_blob(b"payload")
        ArtifactStore(root).migrate()
        second = ArtifactStore(root).migrate()
        assert second["moved"] == 0
        assert second["already_placed"] > 0
        assert ArtifactStore(root).get_blob(digest) == b"payload"

    def test_v2_reads_fall_back_to_v1_paths(self, tmp_path):
        """A half-migrated store never loses sight of its artifacts."""
        root = tmp_path / "mixed-store"
        legacy = self._v1_store(root)
        digest = legacy.put_blob(b"old home")
        v2 = FilesystemBackend(root, layout=LAYOUT_V2)
        assert v2.load_blob(digest) == b"old home"
        assert v2.find_blob(digest) == legacy.blob_path(digest)


# ----------------------------------------------------------------------
# Durable atomic writes
# ----------------------------------------------------------------------

class TestAtomicWrites:
    def test_record_files_honour_the_umask(self, store):
        previous = os.umask(0o027)
        try:
            digest = store.put_blob(b"permission probe")
            path = store.save_detection(
                store.detection_key(digest, "fetch", "opts"), {"function_starts": []}
            )
        finally:
            os.umask(previous)
        assert (os.stat(path).st_mode & 0o777) == 0o640, (
            "mkstemp's 0600 must be widened to honour the process umask"
        )
        blob = store.backend.find_blob(digest)
        assert (os.stat(blob).st_mode & 0o777) == 0o640

    def test_failed_write_leaves_no_temp_files(self, store, monkeypatch):
        from repro.store import backend as backend_module

        def explode(fd):
            raise OSError("fsync failed")

        monkeypatch.setattr(backend_module.os, "fsync", explode)
        with pytest.raises(OSError):
            store.put_blob(b"doomed")
        leftovers = [
            path
            for path in (store.root / "objects").rglob(".tmp-*")
        ] if (store.root / "objects").exists() else []
        assert leftovers == []


# ----------------------------------------------------------------------
# Stats counters under concurrency
# ----------------------------------------------------------------------

class TestStatsConcurrency:
    def test_concurrent_increments_are_never_lost(self, store):
        """Regression for the unguarded ``stats[...] += 1`` data race."""
        threads = 8
        increments = 2_000
        previous = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)  # force aggressive preemption
        try:
            def hammer():
                for _ in range(increments):
                    store._bump("result_hits")

            workers = [threading.Thread(target=hammer) for _ in range(threads)]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        finally:
            sys.setswitchinterval(previous)
        assert store.stats["result_hits"] == threads * increments

    def test_snapshot_and_delta_are_copies(self, store):
        snapshot = store.stats_snapshot()
        store._bump("cell_hits")
        assert snapshot["cell_hits"] == 0
        assert store.stats_delta(snapshot)["cell_hits"] == 1


# ----------------------------------------------------------------------
# Cross-process file lock
# ----------------------------------------------------------------------

class TestFileLock:
    def test_timeout_raises_instead_of_hanging(self, tmp_path):
        path = tmp_path / "contended.lock"
        holder = FileLock(path)
        holder.acquire()
        try:
            waiter = FileLock(path, timeout=0.1, stale_after=3600.0)
            start = time.monotonic()
            with pytest.raises(LockTimeout):
                waiter.acquire()
            assert time.monotonic() - start < 5.0
        finally:
            holder.release()

    def test_dead_owner_lock_is_broken_immediately(self, tmp_path):
        import multiprocessing

        context = multiprocessing.get_context("fork")
        probe = context.Process(target=lambda: None)
        probe.start()
        probe.join()  # a pid that provably no longer exists

        path = tmp_path / "stale.lock"
        path.write_text(f"{probe.pid} {time.time():.3f}\n")
        lock = FileLock(path, timeout=5.0, stale_after=3600.0)
        assert lock.acquire() < 5.0, "dead-owner lock must be broken, not waited out"
        lock.release()

    def test_old_lock_is_broken_by_age(self, tmp_path):
        path = tmp_path / "ancient.lock"
        path.write_text("not-a-pid\n")
        ancient = time.time() - 7200
        os.utime(path, (ancient, ancient))
        lock = FileLock(path, timeout=5.0, stale_after=60.0)
        assert lock.acquire() < 5.0
        lock.release()

    def test_pid_reused_impostor_lock_is_broken(self, tmp_path):
        """A lock whose pid is alive but belongs to a *different* process
        start (crash + pid reuse) must be reclaimed, not waited out."""
        from repro.store.locking import _process_start_ticks

        ticks = _process_start_ticks(os.getpid())
        if ticks is None:
            pytest.skip("/proc/<pid>/stat start ticks unavailable on this platform")
        path = tmp_path / "impostor.lock"
        # our own (live) pid, but with start ticks that cannot match it
        path.write_text(f"{os.getpid()} {ticks + 999_999} {time.time():.3f}\n")
        lock = FileLock(path, timeout=5.0, stale_after=3600.0)
        assert lock.acquire() < 5.0, "impostor lock must be broken immediately"
        lock.release()

    def test_live_holder_with_matching_ticks_is_respected(self, tmp_path):
        from repro.store.locking import _process_start_ticks

        ticks = _process_start_ticks(os.getpid())
        if ticks is None:
            pytest.skip("/proc/<pid>/stat start ticks unavailable on this platform")
        path = tmp_path / "live.lock"
        path.write_text(f"{os.getpid()} {ticks} {time.time():.3f}\n")
        waiter = FileLock(path, timeout=0.1, stale_after=3600.0)
        with pytest.raises(LockTimeout):
            waiter.acquire()

    def test_old_two_field_lock_format_with_live_pid_is_respected(self, tmp_path):
        # locks written before start-ticks were recorded must not be broken
        # while their holder is alive
        path = tmp_path / "legacy.lock"
        path.write_text(f"{os.getpid()} {time.time():.3f}\n")
        waiter = FileLock(path, timeout=0.1, stale_after=3600.0)
        with pytest.raises(LockTimeout):
            waiter.acquire()

    def test_lock_timeout_is_classified_retryable(self, tmp_path):
        from repro.resilience.policy import RetryPolicy

        path = tmp_path / "busy.lock"
        holder = FileLock(path)
        holder.acquire()
        try:
            waiter = FileLock(path, timeout=0.05, stale_after=3600.0)
            with pytest.raises(LockTimeout) as info:
                waiter.acquire()
        finally:
            holder.release()
        assert RetryPolicy().classify(info.value), (
            "LockTimeout must be retryable so store policies re-attempt it"
        )

    def test_acquire_reports_wait_and_store_records_it(self, store):
        with store._locked():
            pass
        assert len(store.lock_waits) == 1
        assert store.lock_waits[0] >= 0.0
        assert store.describe()["lock"]["acquisitions"] == 1


# ----------------------------------------------------------------------
# Manifest index
# ----------------------------------------------------------------------

class TestStoreIndex:
    def test_stats_answer_without_walking_the_tree(self, store, monkeypatch):
        digest = store.put_blob(b"indexed blob")
        store.save_detection(
            store.detection_key(digest, "fetch", "opts"),
            {"function_starts": [1]},
        )

        def forbidden(*args, **kwargs):
            raise AssertionError("stats must not walk the object tree")

        monkeypatch.setattr(store.backend, "iter_entries", forbidden)
        description = store.describe()
        assert description["index"]["entries"] == 2
        assert description["index"]["namespaces"]["objects"]["entries"] == 1
        assert description["index"]["namespaces"]["detections"]["entries"] == 1

    def test_manifest_listing_uses_the_index(self, store, tiny_params, monkeypatch):
        build_scenario_corpus("vanilla", store=store, **tiny_params)

        real_iter = store.backend.iter_entries

        def forbidden(*args, **kwargs):
            raise AssertionError("corpus_manifests must not walk the tree")

        monkeypatch.setattr(store.backend, "iter_entries", forbidden)
        manifests = store.corpus_manifests()
        assert len(manifests) == 1
        assert manifests[0]["kind"] == "scenario"
        monkeypatch.setattr(store.backend, "iter_entries", real_iter)

    def test_journal_compacts_into_snapshot_at_the_limit(self, tmp_path):
        store = ArtifactStore(tmp_path / "small-journal", journal_limit_bytes=256)
        for index in range(8):
            store.put_blob(f"blob {index}".encode())
        stats = store.index.stats()
        assert stats["compacted"], "the tiny journal budget must force compaction"
        assert stats["entries"] == 8
        assert stats["journal_bytes"] <= 256

    def test_duplicate_saves_index_once(self, store):
        digest = store.put_blob(b"same bytes")
        assert store.put_blob(b"same bytes") == digest
        assert store.index.stats()["entries"] == 1

    def test_rebuild_recovers_a_deleted_index(self, store):
        store.put_blob(b"one")
        store.put_blob(b"two")
        import shutil

        shutil.rmtree(store.index.directory)
        assert not store.index.has_data()
        assert ArtifactStore(store.root).rebuild_index()["entries"] == 2

    def test_torn_journal_line_is_skipped(self, store):
        store.put_blob(b"whole line")
        with open(store.index.journal_path, "ab") as stream:
            stream.write(b'{"op": "put", "ns": "objec')  # simulated torn write
        assert store.index.stats()["entries"] == 1


# ----------------------------------------------------------------------
# Garbage collection
# ----------------------------------------------------------------------

class TestGarbageCollection:
    def test_age_eviction_spares_corpus_manifests(self, store, tiny_params):
        from repro.store.gc import collect

        build_scenario_corpus("vanilla", store=store, **tiny_params)
        future = time.time() + 10 * 86400
        report = collect(store, max_age_seconds=86400.0, now=future)
        assert report.evicted > 0, "blobs older than a day must be evicted"
        assert "corpora" not in report.by_namespace or (
            report.by_namespace["corpora"]["evicted"] == 0
        )
        manifests = store.corpus_manifests()
        assert len(manifests) == 1, "manifests survive GC"
        # the gutted corpus degrades to a clean miss, never an error
        assert store.load_corpus(manifests[0]["key"]) is None

    def test_size_budget_evicts_oldest_first(self, tmp_path):
        store = ArtifactStore(tmp_path / "gc-store")
        old_digest = store.put_blob(b"o" * 1000)
        path = store.backend.find_blob(old_digest)
        ancient = time.time() - 3600
        os.utime(path, (ancient, ancient))
        new_digest = store.put_blob(b"n" * 1000)

        from repro.store.gc import collect

        report = collect(store, max_bytes=1500)
        assert report.evicted == 1
        assert store.get_blob(old_digest) is None, "the older blob goes first"
        assert store.get_blob(new_digest) is not None

    def test_dry_run_deletes_nothing_and_gc_updates_the_index(self, store):
        digest = store.put_blob(b"ephemeral")
        preview = store.gc(max_bytes=0, dry_run=True)
        assert preview.evicted == 1
        assert store.get_blob(digest) == b"ephemeral"

        report = store.gc(max_bytes=0)
        assert report.evicted == 1
        assert store.get_blob(digest) is None
        assert store.index.stats()["entries"] == 0, "GC must heal the index"

    def test_no_bounds_is_an_inventory_pass(self, store):
        store.put_blob(b"kept")
        report = store.gc()
        assert report.evicted == 0
        assert report.kept == 1
