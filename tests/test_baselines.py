"""Tests for the baseline tool models and their characteristic error modes."""

import pytest

from repro.baselines import (
    AngrLike,
    AngrOptions,
    BapLike,
    BinaryNinjaLike,
    ByteWeightLike,
    DyninstLike,
    GhidraLike,
    GhidraOptions,
    IdaLike,
    NucleusLike,
    Radare2Like,
    all_comparison_tools,
)
from repro.core import FetchDetector
from repro.eval.metrics import compute_metrics


ALL_TOOLS = [
    DyninstLike, BapLike, Radare2Like, NucleusLike, IdaLike, BinaryNinjaLike,
    GhidraLike, AngrLike, ByteWeightLike,
]


def test_comparison_tool_list_matches_the_paper():
    names = [tool.name for tool in all_comparison_tools()]
    assert names == ["dyninst", "bap", "radare2", "nucleus", "ida", "ninja", "ghidra", "angr"]


@pytest.mark.parametrize("tool_class", ALL_TOOLS)
def test_every_tool_returns_executable_starts(tool_class, rich_binary):
    result = tool_class().detect(rich_binary.image)
    assert result.function_starts, tool_class.name
    for address in result.function_starts:
        assert rich_binary.image.is_executable_address(address)


@pytest.mark.parametrize("tool_class", ALL_TOOLS)
def test_every_tool_is_deterministic(tool_class, plain_binary):
    first = tool_class().detect(plain_binary.image)
    second = tool_class().detect(plain_binary.image)
    assert first.function_starts == second.function_starts


def test_fde_based_tools_have_high_recall(rich_binary):
    truth = rich_binary.ground_truth
    for tool in (GhidraLike(), AngrLike()):
        result = tool.detect(rich_binary.image)
        metrics = compute_metrics(truth, result.function_starts)
        assert metrics.recall > 0.97, tool.name


def test_non_fde_tools_make_errors_on_rich_binaries(rich_binary):
    truth = rich_binary.ground_truth
    for tool in (DyninstLike(), Radare2Like(), BapLike()):
        result = tool.detect(rich_binary.image)
        metrics = compute_metrics(truth, result.function_starts)
        assert metrics.fp_count + metrics.fn_count > 0, tool.name


def test_fetch_is_among_the_most_accurate_tools(small_corpus):
    false_positives: dict[str, int] = {}
    errors: dict[str, int] = {}
    tools = all_comparison_tools() + [FetchDetector()]
    for tool in tools:
        fp = combined = 0
        for binary in small_corpus:
            result = tool.detect(binary.image)
            metrics = compute_metrics(binary.ground_truth, result.function_starts)
            fp += metrics.fp_count
            combined += metrics.fp_count + metrics.fn_count
        false_positives[tool.name] = fp
        errors[tool.name] = combined
    fetch_fp = false_positives.pop("fetch")
    fetch_errors = errors.pop("fetch")
    # FETCH never has more false positives than any baseline, and its
    # combined error is within a hair of the best baseline (its only misses
    # are the paper's harmless tail-call-only / unreachable functions).
    assert fetch_fp <= min(false_positives.values())
    assert fetch_errors <= min(errors.values()) + 3


# ----------------------------------------------------------------------
# GHIDRA strategy toggles (Figure 5a behaviours)
# ----------------------------------------------------------------------

def test_ghidra_control_flow_repair_reduces_coverage(rich_binary):
    truth = rich_binary.ground_truth
    base = GhidraLike(GhidraOptions()).detect(rich_binary.image)
    repaired = GhidraLike(GhidraOptions(control_flow_repair=True)).detect(rich_binary.image)
    base_metrics = compute_metrics(truth, base.function_starts)
    repaired_metrics = compute_metrics(truth, repaired.function_starts)
    assert repaired_metrics.fn_count >= base_metrics.fn_count
    assert repaired.function_starts <= base.function_starts


def test_ghidra_tail_call_heuristic_adds_false_positives(rich_binary):
    truth = rich_binary.ground_truth
    base = GhidraLike(GhidraOptions()).detect(rich_binary.image)
    heuristic = GhidraLike(GhidraOptions(tail_call_heuristic=True)).detect(rich_binary.image)
    base_fp = compute_metrics(truth, base.function_starts).fp_count
    heuristic_fp = compute_metrics(truth, heuristic.function_starts).fp_count
    assert heuristic_fp > base_fp


def test_ghidra_function_matching_is_strict(plain_binary):
    truth = plain_binary.ground_truth
    matched = GhidraLike(GhidraOptions(function_matching=True)).detect(plain_binary.image)
    metrics = compute_metrics(truth, matched.function_starts)
    # GHIDRA's matcher is conservative: it should not flood the result with
    # false positives on a plain binary.
    assert metrics.fp_count <= 3


# ----------------------------------------------------------------------
# ANGR strategy toggles (Figure 5b behaviours)
# ----------------------------------------------------------------------

def test_angr_linear_scan_destroys_accuracy(rich_binary):
    truth = rich_binary.ground_truth
    base = AngrLike(AngrOptions()).detect(rich_binary.image)
    scanned = AngrLike(AngrOptions(linear_scan=True)).detect(rich_binary.image)
    base_fp = compute_metrics(truth, base.function_starts).fp_count
    scan_fp = compute_metrics(truth, scanned.function_starts).fp_count
    assert scan_fp > base_fp


def test_angr_function_matching_adds_false_positives_from_data_blobs(small_corpus):
    fp_without = fp_with = 0
    for binary in small_corpus:
        truth = binary.ground_truth
        base = AngrLike(AngrOptions()).detect(binary.image)
        matched = AngrLike(AngrOptions(function_matching=True)).detect(binary.image)
        fp_without += compute_metrics(truth, base.function_starts).fp_count
        fp_with += compute_metrics(truth, matched.function_starts).fp_count
    assert fp_with > fp_without


def test_angr_recursion_does_not_lose_fde_starts(rich_binary):
    from repro.core.fde_source import extract_fde_starts

    result = AngrLike(AngrOptions()).detect(rich_binary.image)
    assert extract_fde_starts(rich_binary.image) <= result.function_starts


# ----------------------------------------------------------------------
# Other tools
# ----------------------------------------------------------------------

def test_bap_has_the_most_false_positives(rich_binary):
    truth = rich_binary.ground_truth
    bap_fp = compute_metrics(truth, BapLike().detect(rich_binary.image).function_starts).fp_count
    ida_fp = compute_metrics(truth, IdaLike().detect(rich_binary.image).function_starts).fp_count
    fetch_fp = compute_metrics(
        truth, FetchDetector().detect(rich_binary.image).function_starts
    ).fp_count
    assert bap_fp > ida_fp
    assert bap_fp > fetch_fp


def test_nucleus_does_not_use_symbols_or_eh_frame(stripped_binary):
    result = NucleusLike().detect(stripped_binary.image)
    metrics = compute_metrics(stripped_binary.ground_truth, result.function_starts)
    assert metrics.recall > 0.5


def test_byteweight_training_learns_corpus_prefixes(small_corpus):
    tool = ByteWeightLike()
    training = [
        (binary.image, binary.ground_truth.function_starts) for binary in small_corpus[:4]
    ]
    tool.train(training, prefix_length=4)
    assert tool.patterns
    evaluation = small_corpus[4]
    result = tool.detect(evaluation.image)
    metrics = compute_metrics(evaluation.ground_truth, result.function_starts)
    assert metrics.recall > 0.2
