"""Loaded-binary facade used by all analyses.

:class:`BinaryImage` wraps an :class:`~repro.elf.structs.ElfFile` and exposes
the views the detection pipelines need: executable sections, data sections,
the parsed ``.eh_frame`` records, function symbols, and address-based byte
access.  It is constructed either from an ELF file on disk, raw ELF bytes, or
directly from the in-memory output of the synthetic compiler.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.dwarf.parser import EhFrameParseError, parse_eh_frame
from repro.dwarf.structs import CieRecord, FdeRecord
from repro.elf import constants as C
from repro.elf.reader import read_elf, read_elf_file
from repro.elf.structs import ElfFile, Section, Symbol


@dataclass
class BinaryImage:
    """A loaded binary, ready for analysis.

    Attributes:
        elf: the underlying parsed ELF description.
        name: a human-readable identifier (file name or synthetic program name).
    """

    elf: ElfFile
    name: str = "<anonymous>"

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_bytes(cls, data: bytes, name: str = "<bytes>") -> "BinaryImage":
        """Load an image from raw ELF bytes."""
        return cls(elf=read_elf(data), name=name)

    @classmethod
    def from_file(cls, path: str) -> "BinaryImage":
        """Load an image from an ELF file on disk."""
        return cls(elf=read_elf_file(path), name=path)

    # ------------------------------------------------------------------
    # Sections
    # ------------------------------------------------------------------
    @property
    def sections(self) -> list[Section]:
        return self.elf.sections

    def section(self, name: str) -> Section | None:
        return self.elf.section(name)

    @cached_property
    def text(self) -> Section:
        """The primary executable section."""
        section = self.elf.section(".text")
        if section is not None:
            return section
        for candidate in self.elf.sections:
            if candidate.is_executable:
                return candidate
        raise ValueError(f"{self.name}: no executable section found")

    @property
    def executable_sections(self) -> list[Section]:
        return [s for s in self.elf.sections if s.is_executable and s.is_allocated]

    @property
    def data_sections(self) -> list[Section]:
        """Allocated, non-executable sections (pointer-scan candidates)."""
        return [
            s
            for s in self.elf.sections
            if s.is_allocated and not s.is_executable and s.sh_type == C.SHT_PROGBITS
            and s.name not in (".eh_frame", ".eh_frame_hdr")
        ]

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def section_containing(self, address: int) -> Section | None:
        return self.elf.section_containing(address)

    @cached_property
    def _executable_bounds(self) -> tuple[tuple[int, int], ...]:
        """``(start, end)`` per executable section, frozen on first use.

        Like the section index of :meth:`ElfFile.section_containing`, this
        assumes sections are not mutated once analysis has started.
        """
        return tuple((s.address, s.end_address) for s in self.executable_sections)

    def is_executable_address(self, address: int) -> bool:
        # Pointer scanning probes this with every 8-byte window of every data
        # section, so the check runs on precomputed integer bounds (almost
        # always a single ``.text`` range) instead of a section lookup.
        for bounds in self._executable_bounds:
            if bounds[0] <= address < bounds[1]:
                return True
        return False

    def read(self, address: int, size: int) -> bytes:
        """Read bytes from the image at a virtual address."""
        section = self.section_containing(address)
        if section is None:
            raise ValueError(f"{self.name}: unmapped address {address:#x}")
        return section.read(address, size)

    @property
    def entry_point(self) -> int:
        return self.elf.entry_point

    @property
    def is_pie(self) -> bool:
        """Whether the binary is a position-independent executable (``ET_DYN``)."""
        return self.elf.elf_type == C.ET_DYN

    @cached_property
    def uses_cet(self) -> bool:
        """Whether the binary carries CET/IBT instrumentation.

        Detected structurally: the entry point — or, failing that, the
        majority of a sample of FDE-covered function starts — begins with an
        ``endbr64`` landing pad.  Scenario-aware detectors use this to switch
        to endbr64-anchored prologue signatures.
        """
        endbr = b"\xf3\x0f\x1e\xfa"

        def starts_with_endbr(address: int) -> bool:
            try:
                return self.read(address, 4) == endbr
            except ValueError:
                return False

        if self.is_executable_address(self.entry_point):
            if starts_with_endbr(self.entry_point):
                return True
        try:
            sample = [fde.pc_begin for fde in self.fdes[:16]]
        except EhFrameParseError:
            # Pattern-only consumers of this probe never read .eh_frame
            # themselves; a malformed section must not crash them.
            return False
        hits = sum(1 for address in sample if starts_with_endbr(address))
        return bool(sample) and hits * 2 > len(sample)

    # ------------------------------------------------------------------
    # Symbols
    # ------------------------------------------------------------------
    @property
    def symbols(self) -> list[Symbol]:
        return self.elf.symbols

    @cached_property
    def function_symbols(self) -> list[Symbol]:
        """Defined function symbols, sorted by address."""
        functions = [
            s
            for s in self.elf.symbols
            if s.is_function and s.section_name is not None and s.address
        ]
        return sorted(functions, key=lambda s: s.address)

    @property
    def has_symbols(self) -> bool:
        return bool(self.function_symbols)

    # ------------------------------------------------------------------
    # Exception handling information
    # ------------------------------------------------------------------
    @property
    def has_eh_frame(self) -> bool:
        return self.elf.section(".eh_frame") is not None

    @cached_property
    def eh_frame_records(self) -> tuple[list[CieRecord], list[FdeRecord]]:
        """Parsed ``(cies, fdes)`` from ``.eh_frame`` (empty when absent).

        ``DW_EH_PE_indirect`` pointers are dereferenced through the image's
        own mapped sections.
        """
        section = self.elf.section(".eh_frame")
        if section is None or not section.data:
            return [], []
        return parse_eh_frame(
            section.data, section.address, deref=self._deref_pointer_slot
        )

    def _deref_pointer_slot(self, address: int) -> int | None:
        """Read the 8-byte pointer slot at ``address`` (``None`` if unmapped)."""
        try:
            data = self.read(address, 8)
        except ValueError:
            return None
        if len(data) < 8:
            return None
        return int.from_bytes(data, "little")

    @property
    def fdes(self) -> list[FdeRecord]:
        return self.eh_frame_records[1]

    def fde_covering(self, address: int) -> FdeRecord | None:
        """The FDE whose PC range covers ``address``, if any."""
        for fde in self.fdes:
            if fde.covers(address):
                return fde
        return None
