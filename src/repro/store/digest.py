"""Stable content digests for cache keys.

Every cache key in the artifact store is the SHA-256 of a *canonical JSON*
rendering of the keyed value: dataclasses become sorted-key objects, enums
their values, sets sorted lists, bytes hex strings.  The rendering is
deterministic across processes and Python versions, which is what makes the
store shareable between runs (and, eventually, machines).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any


def _plain(value: Any) -> Any:
    """Lower ``value`` to JSON-serialisable plain data, deterministically."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: _plain(getattr(value, f.name)) for f in dataclasses.fields(value)}
        return {"__dataclass__": type(value).__qualname__, **fields}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(key): _plain(item) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted(_plain(item) for item in value)
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, (bytes, bytearray)):
        # type-tagged so b"\x01" and the string "01" cannot collide
        return {"__bytes__": bytes(value).hex()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalise {type(value).__name__} for digesting")


def canonical_json(value: Any) -> str:
    """The canonical JSON rendering used for digests."""
    return json.dumps(_plain(value), sort_keys=True, separators=(",", ":"))


def stable_digest(value: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json` of ``value``."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


def blob_digest(data: bytes) -> str:
    """SHA-256 hex digest of raw bytes (content address of a blob)."""
    return hashlib.sha256(data).hexdigest()


def options_digest(detector: Any) -> str:
    """Digest of a detector instance's configuration and logic version.

    Keys on the detector class, its registered ``cache_version`` (bumped
    when the detector's logic changes, so warm stores never serve results
    of an older implementation) and whatever configuration the instance
    carries: an ``options`` dataclass (FETCH, GHIDRA, ANGR) and/or trained
    ``patterns`` (ByteWeight).  Default-configured instances of the same
    class always share one digest.
    """
    record: dict[str, Any] = {
        "class": f"{type(detector).__module__}.{type(detector).__qualname__}",
        "version": getattr(detector, "cache_version", None),
    }
    for attribute in ("options", "patterns"):
        if hasattr(detector, attribute):
            record[attribute] = getattr(detector, attribute)
    return stable_digest(record)
