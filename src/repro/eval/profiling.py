"""cProfile driver for the cold detection path.

Used by ``fetch-detect profile`` and ``tools/profile_cold.py`` to attribute
cold single-binary latency to pipeline stages.  The image and analysis
context are constructed *inside* the profiled region: a cold run pays ELF
and eh_frame parsing too, so the profile must charge them, matching the
protocol of ``benchmarks/bench_cold_latency.py``.
"""

from __future__ import annotations

import cProfile
import io
import pstats

from repro.core import AnalysisContext
from repro.core.registry import create_detector
from repro.elf.image import BinaryImage

#: sort orders accepted by :func:`profile_cold_detection`
SORT_ORDERS = ("cumulative", "tottime", "calls")

#: pstats sort keys per :data:`SORT_ORDERS` entry, used to rank the
#: structured report identically to the text one.
_SORT_INDEX = {"cumulative": 3, "tottime": 2, "calls": 1}


def _profile_one_detection(data: bytes, *, name: str, detector: str) -> cProfile.Profile:
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        image = BinaryImage.from_bytes(data, name=name)
        create_detector(detector).detect(image, AnalysisContext(image))
    finally:
        profiler.disable()
    return profiler


def profile_cold_detection(
    data: bytes,
    *,
    name: str = "binary",
    detector: str = "fetch",
    top: int = 25,
    sort: str = "cumulative",
) -> str:
    """Profile one cold detection of ``data`` (ELF bytes); returns the report.

    Everything a first-time request pays — ELF parse, eh_frame parse,
    decoding, the analysis pipeline — runs under the profiler.  The report
    is the ``pstats`` table of the ``top`` functions by ``sort`` order.
    """
    if sort not in SORT_ORDERS:
        raise ValueError(f"unknown sort order {sort!r} (choose from {SORT_ORDERS})")
    profiler = _profile_one_detection(data, name=name, detector=detector)
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(sort).print_stats(top)
    return stream.getvalue()


def profile_cold_detection_record(
    data: bytes,
    *,
    name: str = "binary",
    detector: str = "fetch",
    top: int = 25,
    sort: str = "cumulative",
) -> dict:
    """Like :func:`profile_cold_detection` but returns a structured record.

    The record is JSON-serializable — what ``--json`` emits — so profile
    snapshots can be stored next to benchmark records and diffed across
    commits instead of eyeballing two pstats tables.  ``hotspots`` holds the
    ``top`` functions ranked by ``sort``; ``ncalls`` counts all invocations,
    ``primitive_calls`` excludes recursive re-entries (the pair behind the
    ``a/b`` call counts of the text table).
    """
    if sort not in SORT_ORDERS:
        raise ValueError(f"unknown sort order {sort!r} (choose from {SORT_ORDERS})")
    profiler = _profile_one_detection(data, name=name, detector=detector)
    stats = pstats.Stats(profiler)
    index = _SORT_INDEX[sort]
    ranked = sorted(
        stats.stats.items(), key=lambda item: item[1][index], reverse=True
    )
    hotspots = [
        {
            "function": func_name,
            "file": filename,
            "line": line,
            "ncalls": ncalls,
            "primitive_calls": primitive,
            "tottime": round(tottime, 6),
            "cumtime": round(cumtime, 6),
        }
        for (filename, line, func_name), (primitive, ncalls, tottime, cumtime, _callers)
        in ranked[:top]
    ]
    return {
        "binary": name,
        "detector": detector,
        "sort": sort,
        "top": top,
        "total_calls": stats.total_calls,
        "total_seconds": round(stats.total_tt, 6),
        "hotspots": hotspots,
    }
