"""Content-addressed, on-disk artifact store.

The store persists every expensive artifact of the evaluation stack so warm
re-runs reuse instead of recompute:

* **blobs** (``objects/``) — raw content-addressed bytes: serialized ELF
  images and pickled program plans, named by their SHA-256.
* **corpus manifests** (``corpora/``) — one JSON document per built corpus,
  keyed by a digest of the build parameters (plan parameters, scenario,
  generator version).  A manifest row references each binary's ELF blob and
  plan blob and inlines its ground truth.
* **detector results** (``results/``) — one :class:`BinaryMetrics` record
  per (binary digest, detector name, options digest) triple.
* **map values** (``values/``) — pickled per-binary values for opt-in
  :meth:`CorpusEvaluator.map` caching.
* **matrix cells** (``matrix/``) — one summary record per
  (scenario, detector) cell of a :class:`~repro.eval.runner.ScenarioMatrix`
  run; deleting a cell file invalidates exactly that cell.

The store is a layered subsystem (see ``docs/ARCHITECTURE.md``):

* :mod:`repro.store.backend` owns the versioned on-disk layout (sharded
  directory fanout, v1→v2 migration, durable atomic writes);
* :mod:`repro.store.locking` provides the cross-process advisory
  :class:`FileLock` (timeout + stale-lock recovery) wrapping every
  read-modify-write;
* :mod:`repro.store.index` keeps the append-only manifest/index journal,
  so :meth:`describe`, :meth:`corpus_manifests` and key enumeration never
  scan the object tree;
* :mod:`repro.store.gc` evicts by age and size budget
  (``fetch-detect store gc``).

All artifact writes are atomic *and durable* (tempfile + fsync + rename +
directory fsync) so concurrent runs over one store never observe torn
artifacts, even across a crash.  The store root defaults to the
``REPRO_STORE_DIR`` environment variable, falling back to ``.repro-store``
in the working directory.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import pickle
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro.store.backend import FilesystemBackend, StoreBackend
from repro.store.digest import blob_digest, stable_digest
from repro.store.index import StoreIndex
from repro.store.locking import FileLock, LockTimeout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.eval.metrics import BinaryMetrics
    from repro.store.gc import GCReport
    from repro.synth.compiler import SyntheticBinary

#: Bumped when the *record* format changes; part of every key, so a format
#: change invalidates old stores instead of misreading them.  (Directory
#: layout is versioned separately — see :mod:`repro.store.backend` — and
#: never affects keys, which is what makes layout migration warm.)
STORE_FORMAT = 1

#: Attribute attached to binaries whose ELF digest is already known (set on
#: store load and after the first digest computation), so reloaded binaries
#: are never re-serialized just to learn their own digest.
_DIGEST_ATTRIBUTE = "_store_elf_digest"

#: Keep at most this many lock-wait samples (the contention benchmark
#: reads them; a long-lived service must not grow without bound).
_LOCK_WAIT_SAMPLES = 10_000


def default_store_root() -> Path:
    """The store root from ``REPRO_STORE_DIR``, or ``.repro-store``."""
    return Path(os.environ.get("REPRO_STORE_DIR") or ".repro-store")


def elf_bytes_of(binary: "SyntheticBinary") -> bytes:
    """The serialized ELF image of ``binary`` (kept bytes, else re-written)."""
    if binary.elf_bytes:
        return binary.elf_bytes
    from repro.elf.writer import write_elf

    return write_elf(binary.image.elf)


def digest_of_binary(binary: "SyntheticBinary") -> str:
    """The content digest of ``binary``'s serialized ELF image, memoized.

    Computed once per binary object and cached on it (the same attribute
    :meth:`ArtifactStore.binary_digest` and the corpus loader use), so
    repeated submissions of one in-memory binary never re-serialize it —
    with or without a store.
    """
    cached = getattr(binary, _DIGEST_ATTRIBUTE, None)
    if cached is not None:
        return cached
    digest = blob_digest(elf_bytes_of(binary))
    setattr(binary, _DIGEST_ATTRIBUTE, digest)
    return digest


class ArtifactStore:
    """Content-addressed cache of corpora, detector results and matrix cells.

    Thread safety: every write goes through the backend's durable atomic
    write (tempfile + fsync + ``os.replace``), so readers — in this
    process, in concurrent worker threads, or in other processes sharing
    the directory — observe either the complete artifact or none of it,
    never a torn file.  Two writers racing on one key both write the same
    content-addressed payload, so the loser's replace is harmless.  The
    :attr:`stats` counters are mutated under an internal lock, so
    concurrent workers (the :class:`~repro.eval.executor.ShardedWorkerPool`
    threads of the detection service) never lose increments; a
    multi-counter snapshot taken while workers run is still only
    approximate — take :meth:`stats_snapshot` deltas around quiescent
    points (as :class:`~repro.eval.runner.ScenarioMatrix` and the
    detection service do).

    Cross-process read-modify-write sections (index journal appends and
    compaction, GC, migration, corpus-build arbitration) serialise on one
    advisory :class:`FileLock` at ``<root>/.lock`` with timeout and
    stale-lock recovery; per-acquisition wait times accumulate in
    :attr:`lock_waits` for the contention benchmark's percentiles.
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        *,
        backend: StoreBackend | None = None,
        lock_timeout: float = 30.0,
        journal_limit_bytes: int = 1_000_000,
    ):
        if backend is not None:
            self.backend = backend
        else:
            self.backend = FilesystemBackend(
                Path(root) if root is not None else default_store_root()
            )
        self.root = self.backend.root
        self.index = StoreIndex(self.root, journal_limit_bytes=journal_limit_bytes)
        self._file_lock = FileLock(self.root / ".lock", timeout=lock_timeout)
        self._stats_lock = threading.Lock()
        #: seconds waited per cross-process lock acquisition (bounded ring)
        self.lock_waits: list[float] = []
        self.stats: dict[str, int] = {
            "corpus_hits": 0,
            "corpus_misses": 0,
            "result_hits": 0,
            "result_misses": 0,
            "value_hits": 0,
            "value_misses": 0,
            "cell_hits": 0,
            "cell_misses": 0,
            "detection_hits": 0,
            "detection_misses": 0,
        }

    # -- plumbing -------------------------------------------------------
    def _bump(self, counter: str) -> None:
        """Increment one stats counter (lock-guarded: never loses updates)."""
        with self._stats_lock:
            self.stats[counter] += 1

    def _note_lock_wait(self, waited: float) -> None:
        with self._stats_lock:
            self.lock_waits.append(waited)
            if len(self.lock_waits) > _LOCK_WAIT_SAMPLES:
                del self.lock_waits[: _LOCK_WAIT_SAMPLES // 2]

    @contextlib.contextmanager
    def _locked(self) -> Iterator[None]:
        """Hold the store-wide cross-process lock (RMW sections only)."""
        self._note_lock_wait(self._file_lock.acquire())
        try:
            yield
        finally:
            self._file_lock.release()

    def _index_put(self, namespace: str, key: str, size_bytes: int) -> None:
        """Journal one new artifact; compact when the journal outgrows its
        budget.  The lock makes append-then-maybe-compact atomic across
        processes — a concurrent writer's append can never be dropped."""
        with self._locked():
            size = self.index.append("put", namespace, key, size_bytes)
            if size > self.index.journal_limit_bytes:
                self.index.compact()

    def _record_path(self, namespace: str, key: str) -> Path:
        return self.backend.record_path(namespace, key)

    def _load_record(self, namespace: str, key: str) -> dict[str, Any] | None:
        data = self.backend.load_record_bytes(namespace, key)
        if data is None:
            return None
        try:
            record = json.loads(data)
        except ValueError:
            return None
        if record.get("format") != STORE_FORMAT:
            return None
        return record

    def _save_record(self, namespace: str, key: str, record: dict[str, Any]) -> Path:
        record = {"format": STORE_FORMAT, **record}
        data = (json.dumps(record, indent=2, sort_keys=True) + "\n").encode()
        path, existed = self.backend.save_record_bytes(namespace, key, data)
        if not existed:
            self._index_put(namespace, key, len(data))
        return path

    # -- blobs ----------------------------------------------------------
    def blob_path(self, digest: str) -> Path:
        """Where the blob named ``digest`` lives (whether or not it exists).

        The canonical path under the active layout; a blob written before
        a layout migration may still live at its legacy path, which
        :meth:`get_blob` finds transparently.
        """
        return self.backend.blob_path(digest)

    def put_blob(self, data: bytes) -> str:
        """Store raw bytes under their SHA-256; returns the digest.

        Idempotent and safe to race: a blob that already exists is left
        untouched (content addressing makes re-writing it a no-op by
        definition), and a concurrent writer of the same bytes produces the
        identical file via the atomic-rename path.
        """
        digest = blob_digest(data)
        _path, existed = self.backend.save_blob(digest, data)
        if not existed:
            self._index_put("objects", digest, len(data))
        return digest

    def get_blob(self, digest: str) -> bytes | None:
        """The bytes stored under ``digest``, or ``None`` when absent.

        Never raises on a missing or unreadable blob — garbage-collected
        objects read as cache misses, matching :meth:`load_corpus`.
        """
        return self.backend.load_blob(digest)

    # -- binary identity ------------------------------------------------
    def binary_digest(self, binary: "SyntheticBinary") -> str:
        """The content digest of ``binary``'s serialized ELF image.

        Computed once per binary object and cached on it; binaries loaded
        from a manifest carry the digest of the stored blob, so they are
        never re-serialized (re-serializing a *parsed* image is not
        byte-stable, the blob is the identity).
        """
        return digest_of_binary(binary)

    @staticmethod
    def _elf_bytes(binary: "SyntheticBinary") -> bytes:
        return elf_bytes_of(binary)

    # -- corpora --------------------------------------------------------
    def corpus_key(self, kind: str, params: dict[str, Any]) -> str:
        """Content key of a corpus: build kind + every build parameter."""
        return stable_digest({"kind": kind, "params": params, "format": STORE_FORMAT})

    def has_corpus(self, key: str) -> bool:
        return self._load_record("corpora", key) is not None

    @contextlib.contextmanager
    def build_lock(self, key: str, *, timeout: float = 600.0) -> Iterator[None]:
        """Cross-process arbitration for one expensive build keyed ``key``.

        Two processes racing to build the same corpus serialise here: the
        loser waits, re-checks the store, and reloads instead of
        rebuilding.  On lock timeout the caller proceeds to build anyway —
        duplicated work is always preferred over a wedged build (the save
        race itself is benign: both writers produce the same key).
        """
        lock = FileLock(
            self.root / "locks" / f"build-{key[:16]}.lock",
            timeout=timeout,
            stale_after=3600.0,
        )
        try:
            waited = lock.acquire()
        except LockTimeout:
            yield
            return
        self._note_lock_wait(waited)
        try:
            yield
        finally:
            lock.release()

    def save_corpus(
        self,
        key: str,
        kind: str,
        params: dict[str, Any],
        entries: Sequence[Any],
    ) -> Path:
        """Persist a built corpus under ``key``.

        ``entries`` are :class:`SyntheticBinary` objects or
        ``(WildProfile, SyntheticBinary)`` pairs (the wild corpus shape);
        :meth:`load_corpus` returns the same shape.
        """
        rows = []
        for entry in entries:
            profile, binary = entry if isinstance(entry, tuple) else (None, entry)
            elf_digest = self.put_blob(self._elf_bytes(binary))
            setattr(binary, _DIGEST_ATTRIBUTE, elf_digest)
            plan_digest = self.put_blob(pickle.dumps(binary.plan, protocol=4))
            rows.append(
                {
                    "name": binary.name,
                    "elf": elf_digest,
                    "plan": plan_digest,
                    "ground_truth": _ground_truth_to_record(binary.ground_truth),
                    "wild_profile": dataclasses.asdict(profile) if profile else None,
                }
            )
        return self._save_record(
            "corpora",
            key,
            {"kind": kind, "params": _jsonable(params), "binaries": rows},
        )

    def load_corpus(self, key: str) -> list[Any] | None:
        """Reload the corpus stored under ``key`` (``None`` on a miss).

        A manifest whose blobs have been garbage-collected counts as a miss,
        never as an error.
        """
        record = self._load_record("corpora", key)
        if record is None:
            self._bump("corpus_misses")
            return None
        from repro.elf.image import BinaryImage
        from repro.synth.compiler import SyntheticBinary
        from repro.synth.profiles import WildProfile

        entries: list[Any] = []
        for row in record["binaries"]:
            elf_data = self.get_blob(row["elf"])
            plan_data = self.get_blob(row["plan"])
            if elf_data is None or plan_data is None:
                self._bump("corpus_misses")
                return None
            binary = SyntheticBinary(
                name=row["name"],
                image=BinaryImage.from_bytes(elf_data, name=row["name"]),
                ground_truth=_ground_truth_from_record(row["ground_truth"]),
                plan=pickle.loads(plan_data),
            )
            setattr(binary, _DIGEST_ATTRIBUTE, row["elf"])
            if row.get("wild_profile"):
                entries.append((WildProfile(**row["wild_profile"]), binary))
            else:
                entries.append(binary)
        self._bump("corpus_hits")
        return entries

    def corpus_manifests(self) -> list[dict[str, Any]]:
        """Every stored corpus manifest (for ``fetch-detect corpus info``).

        Answered from the manifest index — no tree walk; a legacy
        (pre-index) store falls back to one walk of ``corpora/`` until its
        index is rebuilt (``store migrate`` / ``store stats --rebuild``).
        """
        manifests = []
        if self.index.has_data():
            keys = self.index.keys("corpora")
        else:
            keys = sorted(
                key
                for namespace, key, _path, _size, _mtime in self.backend.iter_entries()
                if namespace == "corpora"
            )
        for key in keys:
            record = self._load_record("corpora", key)
            if record is None:
                continue
            record["key"] = key
            manifests.append(record)
        return manifests

    # -- detector results -----------------------------------------------
    def _result_key(self, binary: "SyntheticBinary", detector: str, options_digest: str) -> str:
        return stable_digest(
            {
                "binary": self.binary_digest(binary),
                "detector": detector,
                "options": options_digest,
                "format": STORE_FORMAT,
            }
        )

    def load_result(
        self, binary: "SyntheticBinary", detector: str, options_digest: str
    ) -> "BinaryMetrics | None":
        """The cached :class:`BinaryMetrics` of one detector run, or ``None``.

        Keyed by (binary content digest, detector name, options digest), so
        a hit is only served for byte-identical input analysed by an
        identically-configured, identically-versioned detector.  Safe to
        call from concurrent workers: a record is read back only after its
        atomic rename, never mid-write.
        """
        record = self._load_record("results", self._result_key(binary, detector, options_digest))
        if record is None:
            self._bump("result_misses")
            return None
        self._bump("result_hits")
        return _metrics_from_record(record["metrics"])

    def save_result(
        self,
        binary: "SyntheticBinary",
        detector: str,
        options_digest: str,
        metrics: "BinaryMetrics",
    ) -> Path:
        """Persist one detector run's :class:`BinaryMetrics` (atomic write).

        Concurrent saves of the same key are benign — both writers derived
        the metrics from identical inputs, so last-rename-wins replaces the
        record with equal content.
        """
        return self._save_record(
            "results",
            self._result_key(binary, detector, options_digest),
            {"detector": detector, "metrics": _metrics_to_record(metrics)},
        )

    # -- opt-in map-value cache -----------------------------------------
    def _value_key(self, binary: "SyntheticBinary", cache_key: str) -> str:
        return stable_digest(
            {"binary": self.binary_digest(binary), "key": cache_key, "format": STORE_FORMAT}
        )

    def load_value(self, binary: "SyntheticBinary", cache_key: str) -> tuple[bool, Any]:
        """``(hit, value)`` for a cached per-binary map value."""
        data = self.backend.load_record_bytes(
            "values", self._value_key(binary, cache_key)
        )
        if data is None:
            self._bump("value_misses")
            return False, None
        self._bump("value_hits")
        return True, pickle.loads(data)

    def save_value(self, binary: "SyntheticBinary", cache_key: str, value: Any) -> None:
        """Persist a picklable per-binary value under ``cache_key`` (atomic).

        The caller owns the key's meaning — see
        :meth:`CorpusEvaluator.map`'s ``cache_key`` contract.
        """
        key = self._value_key(binary, cache_key)
        data = pickle.dumps(value, protocol=4)
        _path, existed = self.backend.save_record_bytes("values", key, data)
        if not existed:
            self._index_put("values", key, len(data))

    # -- scenario-matrix cells ------------------------------------------
    def cell_key(
        self,
        scenario: str,
        detector: str,
        binary_digests: Sequence[str],
        options_digest: str,
    ) -> str:
        """Content key of one matrix cell.

        The binary digests are part of the key, so any change to the corpus
        row (different scale, seed, generator version) invalidates the cell
        automatically.
        """
        return stable_digest(
            {
                "scenario": scenario,
                "detector": detector,
                "binaries": list(binary_digests),
                "options": options_digest,
                "format": STORE_FORMAT,
            }
        )

    def cell_path(self, key: str) -> Path:
        return self._record_path("matrix", key)

    def load_cell(self, key: str) -> dict[str, Any] | None:
        record = self._load_record("matrix", key)
        if record is None:
            self._bump("cell_misses")
            return None
        self._bump("cell_hits")
        return record

    def save_cell(self, key: str, record: dict[str, Any]) -> Path:
        return self._save_record("matrix", key, record)

    # -- CLI / service detection records --------------------------------
    def detection_key(self, file_digest: str, detector: str, options_digest: str) -> str:
        """Content key of one detection run over one binary.

        Shared by the ``fetch-detect`` CLI and the detection service, so a
        corpus analysed through either front-end warms the other: the key
        depends only on the file's content digest, the detector name and
        its options/logic digest — never on the path or the submitting
        process.
        """
        return stable_digest(
            {"file": file_digest, "detector": detector, "options": options_digest}
        )

    def load_detection(self, key: str) -> dict[str, Any] | None:
        """A cached ``fetch-detect`` run (starts, stages, merged parts)."""
        record = self._load_record("detections", key)
        if record is None:
            self._bump("detection_misses")
            return None
        self._bump("detection_hits")
        return record

    def save_detection(self, key: str, record: dict[str, Any]) -> Path:
        return self._save_record("detections", key, record)

    # -- maintenance ----------------------------------------------------
    def migrate(self) -> dict[str, int]:
        """Migrate the on-disk layout to the current version and rebuild
        the index (``fetch-detect store migrate``).

        Keys never change, so every cached artifact stays warm: a
        :class:`~repro.eval.runner.ScenarioMatrix` re-run over a migrated
        store still performs zero detector invocations.
        """
        with self._locked():
            report = self.backend.migrate()
            report.update(self.index.rebuild(self.backend))
        return report

    def rebuild_index(self) -> dict[str, int]:
        """Reconstruct the manifest index from the tree (one slow walk)."""
        with self._locked():
            return self.index.rebuild(self.backend)

    def compact_index(self) -> int:
        """Fold the index journal into its snapshot; returns live entries."""
        with self._locked():
            return self.index.compact()

    def gc(
        self,
        *,
        max_bytes: int | None = None,
        max_age_seconds: float | None = None,
        dry_run: bool = False,
    ) -> "GCReport":
        """Evict derived artifacts by age and/or size budget (see
        :mod:`repro.store.gc`; corpus manifests are never evicted)."""
        from repro.store.gc import collect

        return collect(
            self,
            max_bytes=max_bytes,
            max_age_seconds=max_age_seconds,
            dry_run=dry_run,
        )

    # -- introspection --------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """Layout, index and lock statistics — answered without walking
        the object tree (the ``fetch-detect store stats`` payload)."""
        with self._stats_lock:
            acquisitions = len(self.lock_waits)
            total_wait = sum(self.lock_waits)
        return {
            "root": str(self.root),
            "layout": self.backend.layout,
            "index": self.index.stats(),
            "lock": {
                "acquisitions": acquisitions,
                "wait_seconds_total": round(total_wait, 6),
            },
        }

    def stats_snapshot(self) -> dict[str, int]:
        """A copy of the hit/miss counters (for ``BENCH_*.json`` records)."""
        with self._stats_lock:
            return dict(self.stats)

    def stats_delta(self, before: dict[str, int]) -> dict[str, int]:
        """Counter deltas since a previous :meth:`stats_snapshot`.

        The standard way to scope hit/miss accounting to one run (a matrix
        pass, a service batch) instead of the store's lifetime.
        """
        return {
            key: value - before.get(key, 0) for key, value in self.stats_snapshot().items()
        }


# ----------------------------------------------------------------------
# Record (de)serialization
# ----------------------------------------------------------------------

def _jsonable(value: Any) -> Any:
    """Best-effort plain-JSON rendering of parameter values for manifests."""
    from repro.store.digest import _plain

    return _plain(value)


def _ground_truth_to_record(truth: Any) -> dict[str, Any]:
    return {
        "name": truth.name,
        "scenario": truth.scenario,
        "functions": [dataclasses.asdict(info) for info in truth.functions],
    }


def _ground_truth_from_record(record: dict[str, Any]) -> Any:
    from repro.synth.groundtruth import FunctionInfo, GroundTruth

    return GroundTruth(
        name=record["name"],
        scenario=record["scenario"],
        functions=[FunctionInfo(**fields) for fields in record["functions"]],
    )


def _metrics_to_record(metrics: "BinaryMetrics") -> dict[str, Any]:
    return {
        "binary_name": metrics.binary_name,
        "true_count": metrics.true_count,
        "detected_count": metrics.detected_count,
        "false_positives": sorted(metrics.false_positives),
        "false_negatives": sorted(metrics.false_negatives),
        "cold_part_false_positives": sorted(metrics.cold_part_false_positives),
    }


def _metrics_from_record(record: dict[str, Any]) -> "BinaryMetrics":
    from repro.eval.metrics import BinaryMetrics

    return BinaryMetrics(
        binary_name=record["binary_name"],
        true_count=record["true_count"],
        detected_count=record["detected_count"],
        false_positives=set(record["false_positives"]),
        false_negatives=set(record["false_negatives"]),
        cold_part_false_positives=set(record["cold_part_false_positives"]),
    )
