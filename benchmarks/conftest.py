"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The corpus
size is controlled by the ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_MAX_BINARIES``
environment variables so the full harness can be dialled between "smoke test"
and "paper scale", and ``REPRO_BENCH_JOBS`` (or ``--repro-jobs``) sets how
many binaries the shared-context :class:`~repro.eval.runner.CorpusEvaluator`
evaluates in parallel.  Rendered tables are printed to stdout and written to
``benchmarks/reports/`` for inclusion in EXPERIMENTS.md; machine-readable
timing records land in ``BENCH_<name>.json`` at the repository root.

All benchmarks share one content-addressed artifact store
(``benchmarks/.store`` by default, ``REPRO_BENCH_STORE`` overrides, value
``off`` disables): corpora are built once and reloaded by every later
benchmark or run, and detector results persist across runs, so a warm
re-run of the harness skips the expensive work.  Delete the store directory
for a guaranteed-cold run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval import CorpusEvaluator
from repro.store import ArtifactStore
from repro.synth import (
    build_scenario_matrix_corpora,
    build_selfbuilt_corpus,
    build_wild_corpus,
)

REPORT_DIRECTORY = Path(__file__).resolve().parent / "reports"
BENCH_DIRECTORY = Path(__file__).resolve().parent.parent
STORE_DIRECTORY = Path(__file__).resolve().parent / ".store"


def pytest_addoption(parser):
    parser.addoption(
        "--repro-jobs",
        type=int,
        default=None,
        help="binaries evaluated in parallel (overrides REPRO_BENCH_JOBS)",
    )


def _scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))


def _max_binaries() -> int | None:
    value = os.environ.get("REPRO_BENCH_MAX_BINARIES", "")
    return int(value) if value else None


def _jobs(config) -> int:
    option = config.getoption("--repro-jobs")
    if option is not None:
        return max(1, option)
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))


@pytest.fixture(scope="session")
def artifact_store():
    """The shared artifact store, or ``None`` when disabled.

    The session's journal appends are folded into the index snapshot on
    teardown, so the next harness run starts from a compact index.
    """
    value = os.environ.get("REPRO_BENCH_STORE", "")
    if value.lower() in ("0", "off", "none", "no"):
        yield None
        return
    store = ArtifactStore(value or STORE_DIRECTORY)
    yield store
    if store.index.has_data():
        store.compact_index()


@pytest.fixture(scope="session")
def selfbuilt_corpus(artifact_store):
    """The Dataset-2 analogue used by most benchmarks."""
    return build_selfbuilt_corpus(
        scale=_scale(), max_binaries=_max_binaries(), seed=2021, store=artifact_store
    )


@pytest.fixture(scope="session")
def selfbuilt_corpus_small(selfbuilt_corpus):
    """A subsample for the slowest benchmarks (timing, stack heights)."""
    return selfbuilt_corpus[: max(8, len(selfbuilt_corpus) // 4)]


@pytest.fixture(scope="session")
def scenario_corpora(artifact_store):
    """The scenario matrix corpora: PIE, CET, ICF, padded, stripped-noeh."""
    return build_scenario_matrix_corpora(
        scale=_scale(), programs=3, seed=2021, store=artifact_store
    )


@pytest.fixture(scope="session")
def wild_corpus(artifact_store):
    """The Dataset-1 (wild binaries) analogue."""
    return build_wild_corpus(scale=0.4, seed=2021, store=artifact_store)


@pytest.fixture(scope="session")
def bench_jobs(pytestconfig) -> int:
    """The ``--jobs`` knob of the parallel corpus evaluation."""
    return _jobs(pytestconfig)


@pytest.fixture()
def make_evaluator(bench_jobs, artifact_store):
    """Build a shared-context CorpusEvaluator emitting BENCH_*.json records."""

    def make(corpus, *, jobs: int | None = None) -> CorpusEvaluator:
        return CorpusEvaluator(
            corpus,
            jobs=bench_jobs if jobs is None else jobs,
            bench_dir=BENCH_DIRECTORY,
            store=artifact_store,
        )

    return make


@pytest.fixture(scope="session")
def report_writer():
    """Write a rendered table to benchmarks/reports/<name>.txt and stdout."""
    REPORT_DIRECTORY.mkdir(exist_ok=True)

    def write(name: str, content: str) -> str:
        path = REPORT_DIRECTORY / f"{name}.txt"
        path.write_text(content + "\n")
        print("\n" + content)
        return content

    return write
