"""End-to-end integration tests tying the whole pipeline together."""

from repro.core import FetchDetector
from repro.elf import BinaryImage
from repro.eval.metrics import compute_metrics


def test_elf_roundtrip_then_detection_matches_in_memory_analysis(rich_binary, tmp_path):
    """Writing the binary to disk and re-loading it must not change results."""
    path = tmp_path / "roundtrip.elf"
    path.write_bytes(rich_binary.elf_bytes)
    from_disk = BinaryImage.from_file(str(path))
    in_memory_result = FetchDetector().detect(rich_binary.image)
    on_disk_result = FetchDetector().detect(from_disk)
    assert in_memory_result.function_starts == on_disk_result.function_starts


def test_corpus_level_quality_bar(small_corpus):
    """FETCH on a whole corpus: precision ~1.0, recall > 0.99 (paper §VI)."""
    total_fp = total_fn = total_functions = 0
    for binary in small_corpus:
        result = FetchDetector().detect(binary.image)
        metrics = compute_metrics(binary.ground_truth, result.function_starts)
        total_fp += metrics.fp_count
        total_fn += metrics.fn_count
        total_functions += metrics.true_count
    assert total_functions > 200
    assert total_fp <= 0.01 * total_functions
    assert total_fn <= 0.01 * total_functions


def test_detection_is_independent_of_symbol_stripping(small_corpus):
    """FETCH never reads the symbol table, so stripping must not matter."""
    from repro.elf.structs import ElfFile

    binary = small_corpus[0]
    stripped_elf = ElfFile(
        sections=binary.image.elf.sections,
        symbols=[],
        entry_point=binary.image.elf.entry_point,
    )
    stripped = BinaryImage(elf=stripped_elf, name="stripped-copy")
    original = FetchDetector().detect(binary.image)
    without_symbols = FetchDetector().detect(stripped)
    assert original.function_starts == without_symbols.function_starts


def test_every_example_module_is_importable():
    import importlib.util
    import pathlib

    examples = pathlib.Path(__file__).resolve().parent.parent / "examples"
    scripts = sorted(examples.glob("*.py"))
    assert len(scripts) >= 3
    for script in scripts:
        spec = importlib.util.spec_from_file_location(script.stem, script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)  # importing must not run the demo
        assert hasattr(module, "main")
