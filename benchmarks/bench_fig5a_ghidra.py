"""Figure 5a — GHIDRA strategy ladder: full coverage / full accuracy counts."""

from repro.eval import run_figure5a
from repro.eval.tables import render_strategy_outcomes


def test_figure5a_ghidra_strategies(
    benchmark, selfbuilt_corpus, report_writer, make_evaluator
):
    evaluator = make_evaluator(selfbuilt_corpus)
    outcomes = benchmark.pedantic(
        lambda: evaluator.timed(
            "ladder", run_figure5a, selfbuilt_corpus, evaluator=evaluator
        ),
        rounds=1,
        iterations=1,
    )
    evaluator.write_bench("figure5a_ghidra")
    report_writer(
        "figure5a_ghidra", render_strategy_outcomes("Figure 5a — GHIDRA strategies", outcomes)
    )
    by_label = {o.label: o for o in outcomes}

    # Control-flow repairing reduces coverage relative to plain recursion.
    assert by_label["FDE+Rec+CFR"].full_coverage < by_label["FDE+Rec"].full_coverage
    # Recursion itself improves coverage over FDEs alone.
    assert by_label["FDE+Rec"].full_coverage >= by_label["FDE"].full_coverage
    # The heuristic tail-call detection wrecks accuracy.
    assert by_label["FDE+Rec+Tcall"].full_accuracy < by_label["FDE+Rec"].full_accuracy
    # Function matching never helps coverage meaningfully.
    assert (
        by_label["FDE+Rec+Fsig"].full_coverage - by_label["FDE+Rec"].full_coverage
        <= len(selfbuilt_corpus) * 0.05
    )
