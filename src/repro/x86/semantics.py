"""Instruction-level semantic helpers.

These helpers answer the three questions the analysis layers need:

* how an instruction changes the stack pointer (:func:`stack_delta`),
* which registers it reads before writing (:func:`registers_read`),
* which registers it writes (:func:`registers_written`).

The modelling is deliberately conservative: anything the model cannot express
precisely is reported as *unknown* (``None`` for stack deltas) rather than
guessed, which is what the "safe" analyses of the paper require.
"""

from __future__ import annotations

from repro.x86.instruction import Instruction
from repro.x86.operands import Imm, Mem
from repro.x86.registers import (
    CALLER_SAVED_REGISTERS,
    GPR64,
    RAX,
    RBP,
    RCX,
    RSP,
    R11,
    Register,
)

_WRITES_FIRST_OPERAND = frozenset(
    {"mov", "lea", "movsxd", "movzx", "movsx", "add", "sub", "and", "or", "xor", "adc", "sbb",
     "imul", "shl", "shr", "sar", "rol", "ror", "rcl", "rcr", "inc", "dec", "pop"}
)
_READS_FIRST_OPERAND = frozenset(
    {"add", "sub", "and", "or", "xor", "adc", "sbb", "imul", "shl", "shr", "sar", "rol", "ror",
     "rcl", "rcr", "cmp", "test", "inc", "dec", "push"}
)
_COMPARE_ONLY = frozenset({"cmp", "test"})

# ---------------------------------------------------------------------------
# Mask-based fast path.  Register read/write facts are computed as int bit
# masks (bit ``n`` = register encoding number ``n``); the frozenset API is
# derived from the masks through a tiny shared mask -> frozenset table (the
# distinct masks number in the dozens).  Almost every instruction on the cold
# path is examined exactly once, so the mask functions deliberately carry no
# per-instruction memo — a memo slot would pay its miss cost on every call —
# and masks avoid allocating and hashing register sets in that single pass.
# ---------------------------------------------------------------------------

#: Mnemonics that implicitly read/write the stack pointer.
_STACK_MNEMONICS = frozenset({"push", "pop", "call", "ret", "leave"})
#: Mnemonics whose first register operand is read (including read-modify-write).
_READS_POS0 = _READS_FIRST_OPERAND | _COMPARE_ONLY | frozenset({"call", "jmp"})

_RSP_BIT = 1 << RSP.number
_RBP_BIT = 1 << RBP.number
_CALLER_SAVED_MASK = 0
for _reg in CALLER_SAVED_REGISTERS:
    _CALLER_SAVED_MASK |= 1 << _reg.number
_SYSCALL_WRITES_MASK = (1 << RAX.number) | (1 << RCX.number) | (1 << R11.number)

_REGS_BY_MASK: dict[int, frozenset[Register]] = {}


def _registers_from_mask(mask: int) -> frozenset[Register]:
    try:
        return _REGS_BY_MASK[mask]
    except KeyError:
        regs = frozenset(reg for reg in GPR64 if (mask >> reg.number) & 1)
        _REGS_BY_MASK[mask] = regs
        return regs


def register_mask(registers: frozenset[Register] | set[Register] | tuple[Register, ...]) -> int:
    """Fold a register collection into a bit mask keyed by encoding number."""
    mask = 0
    for register in registers:
        mask |= 1 << register.number
    return mask


def read_mask(insn: Instruction) -> int:
    """:func:`registers_read` as a bit mask."""
    mnemonic = insn.mnemonic
    operands = insn.operands
    mask = 0
    if mnemonic in _STACK_MNEMONICS:
        mask = _RSP_BIT
        if mnemonic == "leave":
            mask |= _RBP_BIT
    if operands:
        if (
            mnemonic == "xor"
            and len(operands) == 2
            and operands[0].__class__ is Register
            and operands[0] == operands[1]
        ):
            # Register-zeroing idiom: defines the register, reads nothing.
            return mask
        position = 0
        for operand in operands:
            cls = operand.__class__
            if cls is Register:
                if position or mnemonic in _READS_POS0:
                    mask |= 1 << operand.number
            elif cls is Mem:
                base = operand.base
                if base is not None:
                    mask |= 1 << base.number
                index = operand.index
                if index is not None:
                    mask |= 1 << index.number
            position += 1
    return mask


def write_mask(insn: Instruction) -> int:
    """:func:`registers_written` as a bit mask."""
    mnemonic = insn.mnemonic
    operands = insn.operands
    mask = 0
    if mnemonic in _STACK_MNEMONICS:
        mask = _RSP_BIT
        if mnemonic == "call":
            mask |= _CALLER_SAVED_MASK
        elif mnemonic == "leave":
            mask |= _RBP_BIT
    elif mnemonic == "syscall":
        mask = _SYSCALL_WRITES_MASK
    if mnemonic in _WRITES_FIRST_OPERAND and operands:
        dst = operands[0]
        if dst.__class__ is Register:
            mask |= 1 << dst.number
    return mask


def entry_masks(insn: Instruction) -> int:
    """``(read_mask(insn) << 16) | write_mask(insn)`` in one operand pass.

    The calling-convention walk needs both masks for every instruction it
    steps over; fusing them halves the per-step call and operand-scan count.
    Register encoding numbers stay below 16, so both masks fit their halves.
    """
    mnemonic = insn.mnemonic
    operands = insn.operands
    reads = 0
    writes = 0
    if mnemonic in _STACK_MNEMONICS:
        reads = _RSP_BIT
        writes = _RSP_BIT
        if mnemonic == "call":
            writes |= _CALLER_SAVED_MASK
        elif mnemonic == "leave":
            reads |= _RBP_BIT
            writes |= _RBP_BIT
    elif mnemonic == "syscall":
        writes = _SYSCALL_WRITES_MASK
    if operands:
        if mnemonic in _WRITES_FIRST_OPERAND and operands[0].__class__ is Register:
            writes |= 1 << operands[0].number
        if (
            mnemonic == "xor"
            and len(operands) == 2
            and operands[0].__class__ is Register
            and operands[0] == operands[1]
        ):
            # Register-zeroing idiom: defines the register, reads nothing.
            return (reads << 16) | writes
        position = 0
        for operand in operands:
            cls = operand.__class__
            if cls is Register:
                if position or mnemonic in _READS_POS0:
                    reads |= 1 << operand.number
            elif cls is Mem:
                base = operand.base
                if base is not None:
                    reads |= 1 << base.number
                index = operand.index
                if index is not None:
                    reads |= 1 << index.number
            position += 1
    return (reads << 16) | writes


def stack_delta(insn: Instruction) -> int | None:
    """The change applied to ``rsp`` by this instruction, in bytes.

    Returns ``None`` when the effect is unknown or data-dependent (``leave``,
    ``mov rsp, ...``, ``and rsp, ...`` and similar), which callers must treat
    as "stack height no longer tracked".
    """
    mnemonic = insn.mnemonic
    if mnemonic == "push":
        return -8
    if mnemonic == "pop":
        return 8
    if mnemonic == "ret":
        return 8
    if mnemonic == "call":
        return 0
    if mnemonic == "leave":
        return None
    if mnemonic in ("add", "sub") and insn.operands:
        dst = insn.operands[0]
        if isinstance(dst, Register) and dst == RSP:
            imm = insn.operands[1] if len(insn.operands) > 1 else None
            if isinstance(imm, Imm):
                return imm.value if mnemonic == "add" else -imm.value
            return None
        return 0
    # Any other instruction that writes rsp makes the height unknown.
    if RSP in registers_written(insn):
        return None
    return 0


def registers_written(insn: Instruction) -> frozenset[Register]:
    """Registers whose value is (potentially) overwritten by ``insn``.

    The result is a pure per-instruction fact, derived from
    :func:`write_mask` and memoized on the (shared, cached) instruction
    object itself.
    """
    try:
        return insn._regs_written
    except AttributeError:
        result = _registers_from_mask(write_mask(insn))
        insn._regs_written = result
        return result


def registers_read(insn: Instruction) -> frozenset[Register]:
    """Registers whose previous value influences the behaviour of ``insn``.

    The register-zeroing idiom ``xor reg, reg`` is treated as reading nothing,
    matching how calling-convention validation must see it (it *defines* the
    register).  Derived from :func:`read_mask` and memoized like
    :func:`registers_written`.
    """
    try:
        return insn._regs_read
    except AttributeError:
        result = _registers_from_mask(read_mask(insn))
        insn._regs_read = result
        return result


def clobbers_register(insn: Instruction, reg: Register) -> bool:
    """Whether ``insn`` overwrites ``reg`` without depending on its old value."""
    return reg in registers_written(insn) and reg not in registers_read(insn)


def moves_immediate_to(insn: Instruction, reg: Register) -> int | None:
    """If ``insn`` is ``mov reg, imm`` (or ``xor reg, reg``), the value loaded."""
    if insn.mnemonic == "mov" and len(insn.operands) == 2:
        dst, src = insn.operands
        if isinstance(dst, Register) and dst == reg and isinstance(src, Imm):
            return src.value
    if insn.mnemonic == "xor" and len(insn.operands) == 2:
        dst, src = insn.operands
        if dst == reg and src == reg:
            return 0
    return None
