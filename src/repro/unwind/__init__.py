"""Stack unwinding substrate (§III of the paper).

This package demonstrates — and tests — the semantics that make ``.eh_frame``
trustworthy for function detection: a small x86-64 emulator
(:mod:`repro.unwind.emulator`) runs synthetic code until it traps, and the
unwinder (:mod:`repro.unwind.unwinder`) then performs the three tasks the
paper describes (T1: find the function containing the PC, T2: compute the CFA
and return address, T3: restore callee-saved registers) to walk the call
stack using only call-frame information.
"""

from repro.unwind.emulator import Emulator, EmulatorTrap, MachineState
from repro.unwind.unwinder import StackUnwinder, UnwindFrame

__all__ = [
    "Emulator",
    "EmulatorTrap",
    "MachineState",
    "StackUnwinder",
    "UnwindFrame",
]
